"""Continuous runtime telemetry: always-on, sampled, bounded.

PR 1's ``obs.enable()`` is all-or-nothing: every span is built and every
root is retained until reset — perfect for profiling one query,
unusable for a service that runs for days.  This module provides the
continuous counterpart, installed with :func:`repro.obs.enable_runtime`:

* a :class:`RuntimeRegistry` whose counters and histograms are the
  time-series variants from :mod:`repro.obs.timeseries`, so every
  existing ``obs.inc``/``obs.observe`` call site gains windowed
  p50/p95/p99/rate views without being touched;
* a tracer whose finished roots flow through :class:`RuntimeTelemetry`
  retention instead of accumulating: slow traces (tail capture) and a
  probabilistic head sample are kept in fixed-size rings, everything
  else is dropped after its metrics are recorded;
* a :class:`SlowQueryLog` that captures the full forensic record of a
  slow query — plan, profile funnel, span tree — into a bounded ring
  and a rate-limited JSONL sink;
* an :class:`SLOTracker` with error-budget accounting over the latency
  SLO.

Span modes: ``span_mode="all"`` (default) builds every span and samples
*retention* — tail capture works because the tree exists by the time we
learn the trace was slow.  ``span_mode="sampled"`` skips span
construction for unsampled roots entirely (the lowest-overhead knob;
tail capture then only sees head-sampled traces).  ``span_mode="none"``
disables spans, metrics only.

Everything here is bounded by construction: rings are deques with
``maxlen``, the registry's windows are ring buffers, the JSONL sink is
token-bucket rate-limited.  Leaving the runtime enabled cannot grow
memory without limit.
"""

from __future__ import annotations

import dataclasses
import json
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, TextIO

from .exporters import spans_to_dicts
from .metrics import DEFAULT_GROWTH, MetricsRegistry, to_prometheus_text
from .timeseries import (
    DEFAULT_NUM_WINDOWS,
    DEFAULT_WINDOW_SECONDS,
    TimeSeriesCounter,
    TimeSeriesHistogram,
)
from .tracer import NULL_SPAN_CONTEXT, Span, Tracer

SPAN_MODES = ("all", "sampled", "none")


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs for the continuous telemetry layer.

    Times are seconds unless the field name says ``_ms``.  ``clock`` is
    injectable for tests and defaults to ``time.time``; ``seed`` pins
    the head sampler for deterministic tests.
    """

    window_seconds: float = DEFAULT_WINDOW_SECONDS
    num_windows: int = DEFAULT_NUM_WINDOWS
    sample_rate: float = 0.05           # head-sampling probability
    span_mode: str = "all"              # all | sampled | none
    slow_trace_ms: float = 100.0        # tail capture threshold
    trace_ring: int = 32                # retained traces per ring
    slow_query_ms: float = 250.0        # slow-query log threshold
    slow_query_ring: int = 32
    slow_query_log_path: Optional[str] = None
    slow_query_rate_per_min: float = 60.0
    slow_query_burst: int = 10
    slo_latency_ms: float = 250.0       # latency SLO threshold
    slo_target: float = 0.99            # fraction of queries under it
    seed: Optional[int] = None
    clock: Optional[Callable[[], float]] = None

    def __post_init__(self) -> None:
        if self.span_mode not in SPAN_MODES:
            raise ValueError(f"span_mode must be one of {SPAN_MODES}: "
                             f"{self.span_mode!r}")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1]: {self.sample_rate}")
        if not 0.0 < self.slo_target <= 1.0:
            raise ValueError(
                f"slo_target must be in (0, 1]: {self.slo_target}")
        if self.trace_ring < 1 or self.slow_query_ring < 1:
            raise ValueError("ring sizes must be >= 1")

    def resolved_clock(self) -> Callable[[], float]:
        return self.clock if self.clock is not None else time.time


class TraceSampler:
    """Thread-safe Bernoulli head sampler (seedable for tests)."""

    def __init__(self, rate: float, seed: Optional[int] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1]: {rate}")
        self.rate = rate
        self._random = random.Random(seed)
        self._lock = threading.Lock()

    def sample(self) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        with self._lock:
            return self._random.random() < self.rate


class TokenBucket:
    """Classic token bucket: ``rate_per_min`` sustained, ``burst`` peak."""

    def __init__(self, rate_per_min: float, burst: int,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if rate_per_min <= 0 or burst < 1:
            raise ValueError("rate_per_min must be > 0 and burst >= 1")
        self._rate = rate_per_min / 60.0
        self._capacity = float(burst)
        self._tokens = float(burst)
        self._clock = clock if clock is not None else time.time
        self._last = self._clock()
        self._lock = threading.Lock()

    def allow(self) -> bool:
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(self._capacity,
                               self._tokens + elapsed * self._rate)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class SlowQueryLog:
    """Bounded ring plus rate-limited JSONL sink for slow-query records.

    The record is built lazily — :meth:`consider` takes a thunk so that
    fast queries (the overwhelming majority) pay only a float compare.
    The ring always receives the record; the JSONL sink is token-bucket
    limited so a latency storm cannot flood the disk (drops are
    counted, not silent).
    """

    def __init__(self, threshold_ms: float, ring_size: int,
                 path: Optional[str] = None,
                 rate_per_min: float = 60.0, burst: int = 10,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.threshold_ms = threshold_ms
        self.path = path
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=ring_size)  # guarded-by: _lock
        self._bucket = TokenBucket(rate_per_min, burst, clock)
        self._lock = threading.Lock()
        self._captured = 0  # guarded-by: _lock
        self._sink_dropped = 0  # guarded-by: _lock

    def consider(self, elapsed_ms: float,
                 record_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Capture the record if the query was slow; returns whether it
        was captured."""
        if elapsed_ms < self.threshold_ms:
            return False
        record = record_fn()
        with self._lock:
            self._ring.append(record)
            self._captured += 1
        if self.path is not None:
            if self._bucket.allow():
                line = json.dumps(record, sort_keys=True, default=str)
                with self._lock:
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
            else:
                with self._lock:
                    self._sink_dropped += 1
        return True

    def records(self) -> List[Dict[str, Any]]:
        """Retained slow-query records, oldest first."""
        with self._lock:
            return list(self._ring)

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "captured": self._captured,
                "retained": len(self._ring),
                "sink_dropped": self._sink_dropped,
                "path": self.path,
            }


class SLOTracker:
    """Latency-SLO compliance with error-budget accounting.

    The budget is the number of violations the target *allows*:
    ``total * (1 - target)``.  ``budget_remaining`` < 0 means the SLO is
    blown; ``burn_rate`` compares the recent violation ratio against the
    allowed ratio (1.0 = burning exactly the budget, > 1 = burning
    faster)."""

    def __init__(self, latency_ms: float, target: float,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 num_windows: int = DEFAULT_NUM_WINDOWS,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError(f"slo target must be in (0, 1]: {target}")
        self.latency_ms = latency_ms
        self.target = target
        self._total = TimeSeriesCounter(window_seconds=window_seconds,
                                        num_windows=num_windows, clock=clock)
        self._violations = TimeSeriesCounter(window_seconds=window_seconds,
                                             num_windows=num_windows,
                                             clock=clock)

    def record(self, elapsed_seconds: float) -> bool:
        """Record one query; returns True when it violated the SLO."""
        self._total.inc()
        violated = elapsed_seconds * 1000.0 > self.latency_ms
        if violated:
            self._violations.inc()
        return violated

    def status(self, recent_seconds: float = 60.0) -> Dict[str, Any]:
        total = self._total.value
        violations = self._violations.value
        allowed = total * (1.0 - self.target)
        recent_total = self._total.rate(recent_seconds) * recent_seconds
        recent_bad = self._violations.rate(recent_seconds) * recent_seconds
        allowed_ratio = 1.0 - self.target
        if recent_total > 0 and allowed_ratio > 0:
            burn = (recent_bad / recent_total) / allowed_ratio
        else:
            burn = 0.0
        return {
            "latency_ms": self.latency_ms,
            "target": self.target,
            "total": total,
            "violations": violations,
            "compliance": 1.0 - (violations / total) if total else 1.0,
            "budget_allowed": allowed,
            "budget_remaining": allowed - violations,
            "burn_rate": burn,
        }


class RuntimeRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` that mints time-series counters and
    histograms, so instrumentation written against the plain registry
    becomes time-aware the moment the runtime layer is installed."""

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 num_windows: int = DEFAULT_NUM_WINDOWS,
                 clock: Optional[Callable[[], float]] = None) -> None:
        super().__init__()
        self._window_seconds = window_seconds
        self._num_windows = num_windows
        self._clock = clock

    def counter(self, name: str) -> TimeSeriesCounter:
        # repro-lint: disable=RL004,RL100 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._counters.get(name)
        if instrument is not None:
            return instrument  # type: ignore[return-value]
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, self._counters)
                instrument = self._counters[name] = TimeSeriesCounter(
                    window_seconds=self._window_seconds,
                    num_windows=self._num_windows, clock=self._clock)
            return instrument  # type: ignore[return-value]

    def histogram(self, name: str,
                  growth: float = DEFAULT_GROWTH) -> TimeSeriesHistogram:
        # repro-lint: disable=RL004,RL100 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._histograms.get(name)
        if instrument is not None:
            return instrument  # type: ignore[return-value]
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unique(name, self._histograms)
                instrument = self._histograms[name] = TimeSeriesHistogram(
                    growth, window_seconds=self._window_seconds,
                    num_windows=self._num_windows, clock=self._clock)
            return instrument  # type: ignore[return-value]


class _SuppressedSpanContext:
    """Context manager for an unsampled root in ``span_mode="sampled"``:
    builds nothing, but tracks nesting depth on its telemetry so the
    whole subtree stays suppressed (children of an unsampled root must
    not become roots themselves)."""

    __slots__ = ("_telemetry",)

    def __init__(self, telemetry: "RuntimeTelemetry") -> None:
        self._telemetry = telemetry

    def __enter__(self):
        self._telemetry._suppress_depth.value += 1
        return NULL_SPAN_CONTEXT.__enter__()

    def __exit__(self, *exc: object) -> bool:
        self._telemetry._suppress_depth.value -= 1
        return False


class _SuppressDepth(threading.local):
    value = 0


class RuntimeTelemetry:
    """The continuous telemetry runtime: registry + tracer + retention
    + slow-query log + SLO, wired together.

    Install with :func:`repro.obs.enable_runtime`; the query executor
    calls :meth:`record_query` at the engine boundary."""

    def __init__(self, config: Optional[RuntimeConfig] = None) -> None:
        self.config = config if config is not None else RuntimeConfig()
        clock = self.config.resolved_clock()
        self._clock = clock
        self.registry = RuntimeRegistry(self.config.window_seconds,
                                        self.config.num_windows,
                                        self.config.clock)
        self.tracer = Tracer(on_root=self._on_root)
        self.sampler = TraceSampler(self.config.sample_rate, self.config.seed)
        self.slow_queries = SlowQueryLog(
            self.config.slow_query_ms, self.config.slow_query_ring,
            path=self.config.slow_query_log_path,
            rate_per_min=self.config.slow_query_rate_per_min,
            burst=self.config.slow_query_burst, clock=self.config.clock)
        self.slo = SLOTracker(self.config.slo_latency_ms,
                              self.config.slo_target,
                              self.config.window_seconds,
                              self.config.num_windows, self.config.clock)
        self._sampled_ring: Deque[Span] = deque(
            maxlen=self.config.trace_ring)  # guarded-by: _ring_lock
        self._slow_ring: Deque[Span] = deque(
            maxlen=self.config.trace_ring)  # guarded-by: _ring_lock
        self._ring_lock = threading.Lock()
        self._suppress_depth = _SuppressDepth()
        self.started_at = clock()

    # -- tracing ------------------------------------------------------------

    def trace_context(self, name: str, attributes: Dict[str, Any]):
        """The span context :func:`repro.obs.trace` hands out while this
        runtime is installed."""
        mode = self.config.span_mode
        if mode == "none":
            return NULL_SPAN_CONTEXT
        if mode == "sampled":
            if self._suppress_depth.value > 0:
                return _SuppressedSpanContext(self)
            if self.tracer.current() is None and not self.sampler.sample():
                return _SuppressedSpanContext(self)
        return self.tracer.span(name, **attributes)

    def event_enabled(self) -> bool:
        return (self.config.span_mode != "none"
                and self._suppress_depth.value == 0)

    def _on_root(self, span: Span) -> None:
        """Retention decision for a finished root span (the tracer's
        ``on_root`` hook).  Must not raise: this runs inside
        instrumented hot paths."""
        self.registry.counter("obs.traces.finished").inc()
        if span.duration * 1000.0 >= self.config.slow_trace_ms:
            self.registry.counter("obs.traces.slow").inc()
            with self._ring_lock:
                self._slow_ring.append(span)
        elif self.config.span_mode == "sampled" or self.sampler.sample():
            # In sampled mode the head decision was already made at span
            # creation — every surviving root was sampled.  In "all"
            # mode the sampler decides retention here.
            self.registry.counter("obs.traces.sampled").inc()
            with self._ring_lock:
                self._sampled_ring.append(span)

    def sampled_traces(self) -> List[Span]:
        """Head-sampled retained traces, oldest first."""
        with self._ring_lock:
            return list(self._sampled_ring)

    def slow_traces(self) -> List[Span]:
        """Tail-captured slow traces, oldest first."""
        with self._ring_lock:
            return list(self._slow_ring)

    # -- query boundary -----------------------------------------------------

    def record_query(self, plan: Any, profile: Any, elapsed_seconds: float,
                     span: Optional[Span] = None) -> bool:
        """Engine-boundary hook: SLO accounting plus slow-query capture.
        Returns True when the query was captured as slow."""
        violated = self.slo.record(elapsed_seconds)
        if violated:
            self.registry.counter("query.slo_violations").inc()
        elapsed_ms = elapsed_seconds * 1000.0

        def build_record() -> Dict[str, Any]:
            record: Dict[str, Any] = {
                "ts": self._clock(),
                "elapsed_ms": elapsed_ms,
            }
            if plan is not None:
                spec = getattr(plan, "spec", None)
                record["plan"] = {
                    "label": plan.label,
                    "operators": list(plan.operator_names()),
                    "spec": (dataclasses.asdict(spec)
                             if dataclasses.is_dataclass(spec) else None),
                }
            if profile is not None:
                record["profile"] = profile.as_dict()
            if span is not None and getattr(span, "finished", False):
                record["spans"] = spans_to_dicts([span])
            return record

        captured = self.slow_queries.consider(elapsed_ms, build_record)
        if captured:
            self.registry.counter("query.slow_captured").inc()
        return captured

    # -- reporting ----------------------------------------------------------

    def uptime_seconds(self) -> float:
        return max(0.0, self._clock() - self.started_at)

    def status(self, recent_seconds: float = 60.0) -> Dict[str, Any]:
        """One JSON-friendly snapshot of the runtime's own signals (the
        data ``repro top`` renders alongside the registry)."""
        with self._ring_lock:
            sampled = len(self._sampled_ring)
            slow = len(self._slow_ring)
        counters = self.registry.counters()
        return {
            "uptime_seconds": self.uptime_seconds(),
            "span_mode": self.config.span_mode,
            "sample_rate": self.config.sample_rate,
            "traces": {
                "finished": counters.get("obs.traces.finished", 0),
                "sampled_retained": sampled,
                "slow_retained": slow,
                "slow_threshold_ms": self.config.slow_trace_ms,
            },
            "slo": self.slo.status(recent_seconds),
            "slow_queries": self.slow_queries.status(),
        }

    def prometheus_text(self, namespace: Optional[str] = "repro",
                        histogram_mode: str = "summary") -> str:
        """Scrape view: the registry plus derived SLO gauges."""
        slo = self.slo.status()
        self.registry.gauge("slo.compliance").set(slo["compliance"])
        self.registry.gauge("slo.budget_remaining").set(
            slo["budget_remaining"])
        self.registry.gauge("slo.burn_rate").set(slo["burn_rate"])
        return to_prometheus_text(self.registry, namespace, histogram_mode)

    def dump_jsonl(self, handle: TextIO,
                   include_windows: bool = True) -> int:
        """Dump every instrument (plus its live windows) as JSON lines;
        returns the number of lines written."""
        count = 0
        for name, counter in self.registry.counter_items():
            record: Dict[str, Any] = {"type": "counter", "name": name,
                                      "value": counter.value}
            if include_windows and isinstance(counter, TimeSeriesCounter):
                record["windows"] = counter.windows()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        for name, gauge in self.registry.gauge_items():
            handle.write(json.dumps({"type": "gauge", "name": name,
                                     "value": gauge.value},
                                    sort_keys=True) + "\n")
            count += 1
        for name, histogram in self.registry.histogram_items():
            record = {"type": "histogram", "name": name,
                      "summary": histogram.summary()}
            if include_windows and isinstance(histogram, TimeSeriesHistogram):
                record["windows"] = histogram.windows()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        return count
