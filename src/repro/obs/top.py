"""`repro top`: a terminal dashboard over the runtime telemetry.

Pure rendering — :func:`render_top` turns one snapshot of a
:class:`~repro.obs.runtime.RuntimeTelemetry` (plus an optional health
report and ingest-service status) into a fixed-width text frame; the
CLI loop owns the clear-screen/redraw cadence.  Keeping the renderer
side-effect-free makes it testable frame by frame.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .health import HealthReport, HealthStatus
from .runtime import RuntimeTelemetry
from .timeseries import TimeSeriesCounter, TimeSeriesHistogram

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render values as a unicode sparkline, newest right, scaled to the
    series maximum (all-zero/empty series render as flat baseline)."""
    if not values:
        return SPARK_CHARS[0] * min(width, 1)
    tail = list(values)[-width:]
    peak = max(tail)
    if peak <= 0:
        return SPARK_CHARS[0] * len(tail)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((value / peak) * top + 0.5))]
        for value in tail)


def _format_rate(rate: float) -> str:
    if rate >= 1000:
        return f"{rate / 1000:.1f}k/s"
    return f"{rate:.1f}/s"


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"


def _format_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.0f}{unit}" if unit == "B" else f"{count:.1f}{unit}"
        count /= 1024
    return f"{count:.1f}GiB"


def _counter_rate(runtime: RuntimeTelemetry, name: str,
                  seconds: float) -> float:
    counter = runtime.registry.find_counter(name)
    if isinstance(counter, TimeSeriesCounter):
        return counter.rate(seconds)
    return 0.0


def _counter_sparkline(runtime: RuntimeTelemetry, name: str,
                       width: int) -> str:
    counter = runtime.registry.find_counter(name)
    if isinstance(counter, TimeSeriesCounter):
        return sparkline([w["rate"] for w in counter.windows()], width)
    return ""


def render_top(runtime: RuntimeTelemetry,
               health: Optional[HealthReport] = None,
               service_status: Optional[Dict[str, Any]] = None,
               serve_stats: Optional[Dict[str, Any]] = None,
               width: int = 78,
               recent_seconds: float = 30.0) -> str:
    """One dashboard frame: throughput, tail latency, funnel, ingest,
    serving and health, all derived from the runtime's time-series
    registry (plus the optional point-in-time service/serve stats)."""
    lines: List[str] = []
    rule = "─" * width
    status = runtime.status(recent_seconds)
    lines.append(f"repro top — uptime {status['uptime_seconds']:.0f}s — "
                 f"span_mode={status['span_mode']} "
                 f"sample_rate={status['sample_rate']:g}")
    lines.append(rule)

    # throughput
    qps = _counter_rate(runtime, "query.searches", recent_seconds)
    ips = _counter_rate(runtime, "ingest.appends", recent_seconds)
    lines.append(f"queries  {_format_rate(qps):>10}  "
                 f"{_counter_sparkline(runtime, 'query.searches', 24)}")
    lines.append(f"ingest   {_format_rate(ips):>10}  "
                 f"{_counter_sparkline(runtime, 'ingest.appends', 24)}")

    # latency
    latency = runtime.registry.find_histogram("query.latency_seconds")
    if isinstance(latency, TimeSeriesHistogram):
        recent = latency.recent(recent_seconds)
        lines.append(
            f"latency  p50 {_format_ms(recent['p50']):>9}  "
            f"p95 {_format_ms(recent['p95']):>9}  "
            f"p99 {_format_ms(recent['p99']):>9}  "
            f"max {_format_ms(recent['max']):>9}  "
            f"(n={recent['count']:.0f}, last {recent_seconds:.0f}s)")
        lines.append("         p95/window  " + sparkline(
            [w["p95"] for w in latency.windows()], 32))

    # funnel rates
    funnel = []
    for label, name in (("cand", "query.candidates"),
                        ("scored", "query.users_scored"),
                        ("pruned.g", "query.pruned.global"),
                        ("pruned.h", "query.pruned.hot")):
        funnel.append(
            f"{label} {_format_rate(_counter_rate(runtime, name, recent_seconds))}")
    lines.append("funnel   " + "  ".join(funnel))
    lines.append(rule)

    # slo + slow queries
    slo = status["slo"]
    lines.append(
        f"SLO      {slo['target']:.0%} < {slo['latency_ms']:g}ms — "
        f"compliance {slo['compliance']:.2%}, "
        f"budget {slo['budget_remaining']:.1f}, "
        f"burn {slo['burn_rate']:.2f}x")
    slow = status["slow_queries"]
    traces = status["traces"]
    lines.append(
        f"slow     {slow['captured']} queries ≥ {slow['threshold_ms']:g}ms "
        f"captured ({slow['retained']} retained) — traces: "
        f"{traces['finished']} finished, {traces['slow_retained']} slow, "
        f"{traces['sampled_retained']} sampled")

    # ingest service
    if service_status is not None:
        lines.append(rule)
        generations = service_status.get("generations", [])
        lines.append(
            f"ingest   memtable {service_status.get('memtable_posts', 0)} posts"
            f" / {_format_bytes(service_status.get('memtable_bytes', 0))}"
            f" — {len(generations)} generations"
            f" — next_lsn {service_status.get('next_lsn', 0)}")
        compaction = service_status.get("compaction")
        if compaction is not None:
            tiers = service_status.get("tiers", {})
            shape = " ".join(f"T{tier}:{bucket['generations']}"
                             for tier, bucket in tiers.items()) or "empty"
            in_flight = compaction.get("in_flight")
            lines.append(
                f"compact  {shape} — debt {compaction.get('debt', 0)}"
                f" — {compaction.get('compactions_committed', 0)} merges"
                f" ({compaction.get('generations_merged', 0)} gens)"
                + (f" — in flight: {in_flight}" if in_flight else ""))

    # serving
    if serve_stats is not None:
        lines.append(rule)
        served = _counter_rate(runtime, "serve.completed", recent_seconds)
        shed = _counter_rate(runtime, "serve.shed", recent_seconds)
        queue = serve_stats.get("queue", {})
        cache = serve_stats.get("cache") or {}
        total = served + shed
        shed_pct = (shed / total) if total > 0 else 0.0
        lines.append(
            f"serve    {_format_rate(served):>10}  "
            f"{_counter_sparkline(runtime, 'serve.completed', 24)}")
        lines.append(
            f"shed     {_format_rate(shed):>10}  "
            f"{_counter_sparkline(runtime, 'serve.shed', 24)}"
            f"  ({shed_pct:.1%} of offered)")
        lines.append(
            f"queue    depth {queue.get('depth', 0)}"
            f" (fast {queue.get('fast_lane_depth', 0)}"
            f" / normal {queue.get('normal_lane_depth', 0)})"
            f" — est delay "
            f"{queue.get('estimated_delay_ms', 0.0):.1f}ms"
            f" — service "
            f"{queue.get('service_time_ewma_ms', 0.0):.1f}ms ewma")
        lines.append(
            f"cache    hit rate {cache.get('hit_rate', 0.0):.1%}"
            f" — {cache.get('entries', 0)}/{cache.get('capacity', 0)} entries"
            f" — {cache.get('invalidated', 0)} invalidated"
            f" — {cache.get('evicted', 0)} evicted")
        latency = runtime.registry.find_histogram("serve.latency_seconds")
        tail = ""
        if isinstance(latency, TimeSeriesHistogram):
            recent = latency.recent(recent_seconds)
            tail = (f" — p95 {_format_ms(recent['p95'])}"
                    f" (n={recent['count']:.0f})")
        lines.append(
            f"workers  {serve_stats.get('workers_busy', 0)}"
            f"/{serve_stats.get('workers', 0)} busy"
            f" — utilization {serve_stats.get('worker_utilization', 0.0):.1%}"
            + tail)

    # health
    if health is not None:
        lines.append(rule)
        marks = {HealthStatus.OK: "+", HealthStatus.DEGRADED: "!",
                 HealthStatus.CRITICAL: "x"}
        parts = [f"[{marks[comp.status]}]{comp.name}"
                 for comp in health.components]
        lines.append(f"health   {health.verdict.value.upper():<9} "
                     + " ".join(parts))

    return "\n".join(line[:width] for line in lines)
