"""Component health checks rolled up into a system verdict.

A :class:`HealthMonitor` holds named probe callables, each returning a
:class:`ComponentHealth`; :meth:`HealthMonitor.run` executes them all
and rolls the component statuses into a :class:`HealthReport` whose
verdict is the *worst* component status (a single critical component
makes the system critical).  A probe that raises is itself reported as
a critical component rather than aborting the sweep — a health check
must never take the service down.

Probes for the ingest subsystem (WAL fsync lag, unsynced records,
memtable size/age, generation count, block-cache hit rate, recovery
status) are wired up by
:meth:`repro.ingest.service.IngestService.health_monitor`; thresholds
live in :class:`HealthThresholds` so operators can tune warn/critical
boundaries without touching probe code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class HealthStatus(enum.Enum):
    """Component / system health verdicts, ordered by severity."""

    OK = "ok"
    DEGRADED = "degraded"
    CRITICAL = "critical"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]

    @classmethod
    def worst(cls, statuses: List["HealthStatus"]) -> "HealthStatus":
        if not statuses:
            return cls.OK
        return max(statuses, key=lambda status: status.severity)


_SEVERITY = {HealthStatus.OK: 0, HealthStatus.DEGRADED: 1,
             HealthStatus.CRITICAL: 2}


def grade(value: float, warn: float, critical: float,
          higher_is_worse: bool = True) -> HealthStatus:
    """Grade a scalar against warn/critical thresholds.  With
    ``higher_is_worse=False`` the comparison flips (e.g. cache hit rate,
    where *low* is bad)."""
    if higher_is_worse:
        if value >= critical:
            return HealthStatus.CRITICAL
        if value >= warn:
            return HealthStatus.DEGRADED
    else:
        if value <= critical:
            return HealthStatus.CRITICAL
        if value <= warn:
            return HealthStatus.DEGRADED
    return HealthStatus.OK


@dataclass
class ComponentHealth:
    """One component's verdict plus the measurements behind it."""

    name: str
    status: HealthStatus
    message: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status.value,
            "message": self.message,
            "metrics": dict(self.metrics),
        }


@dataclass
class HealthReport:
    """All component verdicts plus the rolled-up system verdict."""

    components: List[ComponentHealth]

    @property
    def verdict(self) -> HealthStatus:
        return HealthStatus.worst([c.status for c in self.components])

    @property
    def healthy(self) -> bool:
        return self.verdict is HealthStatus.OK

    def component(self, name: str) -> Optional[ComponentHealth]:
        for comp in self.components:
            if comp.name == name:
                return comp
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict.value,
            "components": [c.as_dict() for c in self.components],
        }

    def render_text(self) -> str:
        marks = {HealthStatus.OK: "+", HealthStatus.DEGRADED: "!",
                 HealthStatus.CRITICAL: "x"}
        lines = [f"health: {self.verdict.value.upper()}"]
        for comp in self.components:
            line = f"  [{marks[comp.status]}] {comp.name}"
            if comp.message:
                line += f": {comp.message}"
            lines.append(line)
        return "\n".join(lines)


@dataclass(frozen=True)
class HealthThresholds:
    """Warn/critical boundaries for the built-in ingest probes.

    Units: seconds for lags/ages, bytes for sizes, counts otherwise;
    ``cache_hit_rate_*`` are fractions in [0, 1] (low is bad)."""

    wal_sync_lag_warn: float = 5.0
    wal_sync_lag_critical: float = 30.0
    unsynced_records_warn: int = 1024
    unsynced_records_critical: int = 65536
    memtable_bytes_warn: int = 64 * 1024 * 1024
    memtable_bytes_critical: int = 256 * 1024 * 1024
    memtable_age_warn: float = 300.0
    memtable_age_critical: float = 3600.0
    generations_warn: int = 16
    generations_critical: int = 64
    compaction_debt_warn: int = 8       # generations the policy wants merged
    compaction_debt_critical: int = 32
    cache_hit_rate_warn: float = 0.50
    cache_hit_rate_critical: float = 0.10
    cache_min_lookups: int = 100   # below this, hit rate is noise


class HealthMonitor:
    """Named probes -> one report.  Probe exceptions become critical
    components; registration order is report order."""

    def __init__(self) -> None:
        self._probes: List[tuple] = []

    def register(self, name: str,
                 probe: Callable[[], ComponentHealth]) -> None:
        if any(existing == name for existing, _ in self._probes):
            raise ValueError(f"probe already registered: {name!r}")
        self._probes.append((name, probe))

    def names(self) -> List[str]:
        return [name for name, _ in self._probes]

    def run(self) -> HealthReport:
        components: List[ComponentHealth] = []
        for name, probe in self._probes:
            try:
                components.append(probe())
            except Exception as exc:  # noqa: BLE001 - probes must not kill the sweep
                components.append(ComponentHealth(
                    name=name, status=HealthStatus.CRITICAL,
                    message=f"probe failed: {type(exc).__name__}: {exc}"))
        return HealthReport(components=components)
