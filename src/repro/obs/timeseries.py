"""Time-series instruments: windowed metrics in fixed-size ring buffers.

The point-in-time instruments in :mod:`repro.obs.metrics` answer "what
happened since the process started"; a continuously running service
needs "what is happening *now*".  The instruments here keep both views
at once: each is a drop-in subclass of its cumulative counterpart (so
the existing ``obs.inc``/``obs.observe`` call sites and the Prometheus
exporter keep working untouched) that additionally lands every update in
a wall-clock-aligned window inside a fixed-size ring buffer.  Memory is
bounded by construction — ``num_windows`` slots per instrument, old
windows overwritten in place — which is what makes the runtime layer
safe to leave enabled in production paths indefinitely.

* :class:`TimeSeriesHistogram` — one log-bucketed sketch per window;
  per-window p50/p95/p99/max via :meth:`TimeSeriesHistogram.windows`,
  merged multi-window aggregates via :meth:`TimeSeriesHistogram.recent`.
* :class:`TimeSeriesCounter` — cumulative total plus per-window deltas,
  from which :meth:`TimeSeriesCounter.rate` derives events/second over
  any trailing span the ring still covers.

Locking model: both subclasses reuse the parent instrument's single
lock for the cumulative state *and* the ring-slot rotation, so one lock
acquisition per update covers everything (see the locking notes in
:mod:`repro.obs.metrics`).  Clocks are injectable for tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import (
    DEFAULT_GROWTH,
    Counter,
    Histogram,
    merge_histogram_states,
)

DEFAULT_WINDOW_SECONDS = 5.0
DEFAULT_NUM_WINDOWS = 120  # ten minutes of 5s windows

Clock = Callable[[], float]


class TimeSeriesHistogram(Histogram):
    """A :class:`Histogram` that also maintains per-window sketches.

    Each observation updates the cumulative sketch and the sketch of the
    wall-clock window ``floor(now / window_seconds)``; windows older
    than ``num_windows`` are overwritten in place (ring buffer).
    """

    __slots__ = ("window_seconds", "num_windows", "_clock", "_ring")

    def __init__(self, growth: float = DEFAULT_GROWTH, *,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 num_windows: int = DEFAULT_NUM_WINDOWS,
                 clock: Optional[Clock] = None) -> None:
        super().__init__(growth)
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0: {window_seconds}")
        if num_windows < 1:
            raise ValueError(f"num_windows must be >= 1: {num_windows}")
        self.window_seconds = window_seconds
        self.num_windows = num_windows
        self._clock = clock if clock is not None else time.time
        self._ring: List[Optional[Tuple[int, Histogram]]] = [None] * num_windows

    def observe(self, value: float, now: Optional[float] = None) -> None:
        if now is None:
            now = self._clock()
        index = int(now // self.window_seconds)
        slot = index % self.num_windows
        with self._lock:
            self._observe_locked(value)
            entry = self._ring[slot]
            if entry is None or entry[0] != index:
                window = Histogram(self.growth)
                self._ring[slot] = (index, window)
            else:
                window = entry[1]
        # The window sketch has its own lock; updating it outside the
        # ring lock keeps the critical section minimal.  A concurrent
        # rotation can orphan this sketch, losing at most one
        # observation from a window that just expired.
        window.observe(value)

    def _live_entries(self, now: float) -> List[Tuple[int, Histogram]]:
        current = int(now // self.window_seconds)
        horizon = current - self.num_windows
        with self._lock:
            entries = [entry for entry in self._ring
                       if entry is not None and horizon < entry[0] <= current]
        return sorted(entries, key=lambda entry: entry[0])

    def windows(self, now: Optional[float] = None) -> List[Dict[str, float]]:
        """Per-window summaries (count/sum/min/max/mean/p50/p95/p99),
        oldest first, each stamped with its ``window_start`` epoch."""
        if now is None:
            now = self._clock()
        out: List[Dict[str, float]] = []
        for index, window in self._live_entries(now):
            summary = window.summary()
            summary["window_start"] = index * self.window_seconds
            summary["window_seconds"] = self.window_seconds
            out.append(summary)
        return out

    def recent(self, seconds: float,
               now: Optional[float] = None) -> Dict[str, float]:
        """Merged summary over the windows intersecting the trailing
        ``seconds`` (including the current partial window)."""
        if now is None:
            now = self._clock()
        first = int((now - seconds) // self.window_seconds)
        states = [window.export_state()
                  for index, window in self._live_entries(now)
                  if index >= first]
        return merge_histogram_states(states, self.growth)


class TimeSeriesCounter(Counter):
    """A :class:`Counter` that also tracks per-window increments, from
    which event rates are derived."""

    __slots__ = ("window_seconds", "num_windows", "_clock", "_ring")

    def __init__(self, *, window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 num_windows: int = DEFAULT_NUM_WINDOWS,
                 clock: Optional[Clock] = None) -> None:
        super().__init__()
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0: {window_seconds}")
        if num_windows < 1:
            raise ValueError(f"num_windows must be >= 1: {num_windows}")
        self.window_seconds = window_seconds
        self.num_windows = num_windows
        self._clock = clock if clock is not None else time.time
        self._ring: List[Optional[List[int]]] = [None] * num_windows

    def inc(self, amount: int = 1, now: Optional[float] = None) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        if now is None:
            now = self._clock()
        index = int(now // self.window_seconds)
        slot = index % self.num_windows
        with self._lock:
            self._value += amount
            entry = self._ring[slot]
            if entry is None or entry[0] != index:
                self._ring[slot] = [index, amount]
            else:
                entry[1] += amount

    def _live_entries(self, now: float) -> List[Tuple[int, int]]:
        current = int(now // self.window_seconds)
        horizon = current - self.num_windows
        with self._lock:
            entries = [(entry[0], entry[1]) for entry in self._ring
                       if entry is not None and horizon < entry[0] <= current]
        return sorted(entries)

    def windows(self, now: Optional[float] = None) -> List[Dict[str, float]]:
        """Per-window deltas and rates, oldest first."""
        if now is None:
            now = self._clock()
        return [{"window_start": index * self.window_seconds,
                 "window_seconds": self.window_seconds,
                 "delta": delta,
                 "rate": delta / self.window_seconds}
                for index, delta in self._live_entries(now)]

    def rate(self, seconds: Optional[float] = None,
             now: Optional[float] = None) -> float:
        """Events per second over the trailing ``seconds`` (default: the
        whole span the ring covers).  The current partial window counts
        toward the numerator while the denominator stays ``seconds``, so
        a just-started window slightly underestimates rather than spikes."""
        if now is None:
            now = self._clock()
        if seconds is None:
            seconds = self.window_seconds * self.num_windows
        if seconds <= 0:
            raise ValueError(f"rate span must be > 0: {seconds}")
        first = int((now - seconds) // self.window_seconds)
        total = sum(delta for index, delta in self._live_entries(now)
                    if index >= first)
        return total / seconds
