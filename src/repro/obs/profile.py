"""Per-query execution profiles.

A :class:`QueryProfile` is attached to every
:class:`~repro.query.results.QueryResult` and reports, for one query,
the quantities the paper's experimental study plots: wall-clock time and
where it went, pages read and cache behaviour (Fig 8's I/O story), and
the pruning ledger behind Fig 12 — how many in-radius candidates were
retired by the global bound vs the pre-computed hot-keyword bounds
before paying for thread construction.

The accounting invariant (asserted in tests)::

    users_pruned_global + users_pruned_hot + users_scored == candidates_examined

where ``candidates_examined`` counts in-radius candidate *tweets*
examined by the scoring loop: every one is either pruned (by exactly one
bound kind) or scored.  ``candidate_users`` is the distinct-user view of
the same set — how many users had at least one examined candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class QueryProfile:
    """Execution profile of one TkLUS query."""

    method: str = ""
    semantics: str = ""
    keywords: int = 0
    k: int = 0
    radius_km: float = 0.0
    elapsed_seconds: float = 0.0
    kernels: str = "scalar"      # "scalar" | "batched" operator family

    # Candidate funnel (paper Figs 8/10/12).
    cells_covered: int = 0
    postings_lists_fetched: int = 0
    postings_entries_read: int = 0
    candidates: int = 0          # tweets after AND/OR formation
    candidates_examined: int = 0  # in-radius candidate tweets examined
    candidate_users: int = 0     # distinct users among examined candidates
    users_scored: int = 0        # candidates fully scored (thread built/reused)
    users_pruned_global: int = 0  # retired by the global t_m bound
    users_pruned_hot: int = 0     # retired by a hot-keyword specific bound
    bound_source: str = "none"   # "global" | "hot" | "none" (sum ranking)
    threads_built: int = 0

    # I/O (paper Figs 7/8's cost driver).
    pages_read: int = 0
    pages_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    index_bytes_read: int = 0
    io_by_component: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # Block-postings decode work (the lazy-decoding story: how much of
    # the fetched postings data the query actually paid to decode).
    postings_bytes_decoded: int = 0
    blocks_decoded: int = 0
    blocks_skipped: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0

    # Read amplification (the compaction story: how many generations a
    # lookup had to consult, and how many non-empty postings sources it
    # actually merged).
    generations_probed: int = 0
    postings_sources_merged: int = 0

    @property
    def users_pruned(self) -> int:
        return self.users_pruned_global + self.users_pruned_hot

    @property
    def prune_rate(self) -> float:
        """Fraction of examined candidates whose thread construction was
        skipped (the Fig 12 effectiveness measure)."""
        if self.candidates_examined == 0:
            return 0.0
        return self.users_pruned / self.candidates_examined

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    @property
    def block_cache_hit_rate(self) -> float:
        total = self.block_cache_hits + self.block_cache_misses
        if total == 0:
            return 0.0
        return self.block_cache_hits / total

    def check(self) -> None:
        """Raise if the pruning ledger does not balance."""
        total = self.users_pruned_global + self.users_pruned_hot + self.users_scored
        if total != self.candidates_examined:
            raise AssertionError(
                f"profile ledger unbalanced: pruned_global="
                f"{self.users_pruned_global} + pruned_hot="
                f"{self.users_pruned_hot} + scored={self.users_scored} "
                f"!= candidates_examined={self.candidates_examined}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "semantics": self.semantics,
            "keywords": self.keywords,
            "k": self.k,
            "radius_km": self.radius_km,
            "elapsed_seconds": self.elapsed_seconds,
            "kernels": self.kernels,
            "cells_covered": self.cells_covered,
            "postings_lists_fetched": self.postings_lists_fetched,
            "postings_entries_read": self.postings_entries_read,
            "candidates": self.candidates,
            "candidates_examined": self.candidates_examined,
            "candidate_users": self.candidate_users,
            "users_scored": self.users_scored,
            "users_pruned_global": self.users_pruned_global,
            "users_pruned_hot": self.users_pruned_hot,
            "bound_source": self.bound_source,
            "prune_rate": self.prune_rate,
            "threads_built": self.threads_built,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "index_bytes_read": self.index_bytes_read,
            "io_by_component": dict(self.io_by_component),
            "postings_bytes_decoded": self.postings_bytes_decoded,
            "blocks_decoded": self.blocks_decoded,
            "blocks_skipped": self.blocks_skipped,
            "block_cache_hits": self.block_cache_hits,
            "block_cache_misses": self.block_cache_misses,
            "block_cache_hit_rate": self.block_cache_hit_rate,
            "generations_probed": self.generations_probed,
            "postings_sources_merged": self.postings_sources_merged,
        }

    def describe(self) -> str:
        """Multi-line human-readable rendering (used by ``repro profile``)."""
        lines = [
            f"query: method={self.method} semantics={self.semantics} "
            f"keywords={self.keywords} k={self.k} radius={self.radius_km:g}km "
            f"kernels={self.kernels}",
            f"elapsed: {self.elapsed_seconds * 1000:.2f} ms",
            f"funnel: cells={self.cells_covered} "
            f"postings_lists={self.postings_lists_fetched} "
            f"entries={self.postings_entries_read} "
            f"candidates={self.candidates} in_radius={self.candidates_examined} "
            f"users={self.candidate_users}",
            f"pruning: scored={self.users_scored} "
            f"pruned_global={self.users_pruned_global} "
            f"pruned_hot={self.users_pruned_hot} "
            f"(bound={self.bound_source}, rate={self.prune_rate:.1%})",
            f"threads built: {self.threads_built}",
            f"io: pages_read={self.pages_read} "
            f"cache_hit_rate={self.cache_hit_rate:.1%} "
            f"index_bytes_read={self.index_bytes_read}",
            f"decode: bytes={self.postings_bytes_decoded} "
            f"blocks={self.blocks_decoded} skipped={self.blocks_skipped} "
            f"block_cache_hit_rate={self.block_cache_hit_rate:.1%}",
            f"read amp: generations_probed={self.generations_probed} "
            f"sources_merged={self.postings_sources_merged}",
        ]
        return "\n".join(lines)
