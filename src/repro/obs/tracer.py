"""Nested, timed tracing spans.

A :class:`Span` is one timed operation with attributes and children; a
:class:`Tracer` maintains a per-thread stack of open spans so that
``with tracer.span("query.cover"):`` nests automatically under whatever
span is currently open on the same thread.  Finished top-level spans are
collected (thread-safely) on the tracer and can be exported with
:mod:`repro.obs.exporters`.

Durations use ``time.perf_counter`` (monotonic); each span additionally
records a wall-clock ``wall_start`` so exported traces can be aligned
with logs.

The module also defines :data:`NULL_SPAN` / :data:`NULL_SPAN_CONTEXT`,
shared do-nothing singletons that the :mod:`repro.obs` facade hands out
when observability is disabled — the disabled hot path allocates
nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One timed operation: name, attributes, children, timing."""

    __slots__ = ("name", "attributes", "children", "start", "end",
                 "wall_start")

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.start = time.perf_counter()
        self.wall_start = time.time()
        self.end: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (to now when the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def child_time(self) -> float:
        """Sum of direct children's durations (<= own duration when the
        children ran sequentially inside this span)."""
        return sum(child.duration for child in self.children)

    def self_time(self) -> float:
        """Own duration minus time attributed to direct children."""
        return max(0.0, self.duration - self.child_time())

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration * 1000:.3f}ms, "
                f"children={len(self.children)})")


class _NullSpan:
    """Inert stand-in used when observability is disabled."""

    __slots__ = ()
    name = "<disabled>"
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    duration = 0.0

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()
NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on ``__enter__`` and closes it
    (attaching it to its parent, or to the tracer's roots) on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(span)
        return False


class Tracer:
    """Produces nested spans; thread-safe for concurrent use.

    Each thread gets its own open-span stack (spans started on a worker
    thread become top-level roots of that thread, tagged with the thread
    name), so MapReduce tasks running on a pool trace cleanly.

    By default finished roots accumulate on the tracer until
    :meth:`reset` — fine for profiling one query, unbounded for a
    long-running service.  Installing an ``on_root`` callback redirects
    every finished root to it instead of the internal list, letting the
    runtime layer apply sampling and bounded retention.  The callback
    runs on the thread that closed the span, outside the tracer lock; it
    must be thread-safe and must not raise.
    """

    def __init__(self,
                 on_root: Optional[Callable[[Span], None]] = None) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self.on_root = on_root

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, name: str, attributes: Dict[str, Any]) -> Span:
        span = Span(name, attributes)
        self._stack().append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order")
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            self._finish_root(span)

    def _finish_root(self, span: Span) -> None:
        on_root = self.on_root
        if on_root is not None:
            on_root(span)
        else:
            with self._lock:
                self._roots.append(span)

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a nested span::

            with tracer.span("query.cover", radius_km=10) as sp:
                ...
                sp.set(cells=len(cells))
        """
        return _SpanContext(self, name, attributes)

    def event(self, name: str, **attributes: Any) -> Span:
        """Record a zero-duration span (a point event such as one pruning
        decision) under the current span."""
        span = Span(name, attributes)
        span.end = span.start
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            self._finish_root(span)
        return span

    # -- inspection ---------------------------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop collected roots (open spans on other threads are kept)."""
        with self._lock:
            self._roots.clear()
