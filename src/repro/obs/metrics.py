"""Thread-safe metrics: counters, gauges and log-scale histograms.

The :class:`MetricsRegistry` is a named, get-or-create collection of
instruments, mirroring how Prometheus client libraries work.  Histograms
use geometric (log-scale) buckets so quantile estimates carry a bounded
*relative* error of at most ``sqrt(growth) - 1`` (≈ 4.9 % at the default
growth of 1.1) regardless of the value range — the right trade-off for
latencies spanning microseconds to seconds.

Metric names are dotted (``storage.page_reads``); the Prometheus text
exporter sanitises them to underscore form.

Locking model
-------------
Every instrument owns one :class:`threading.Lock` guarding all of its
mutable state; every update *and* every read of that state happens under
the lock, so an observation is atomic and a :meth:`Histogram.summary`
(count, sum, min/max and all quantiles together) is one consistent
snapshot — quantiles are never computed over a different population than
the reported count.  The registry's own lock only guards the name →
instrument maps: lookups take the GIL-atomic ``dict.get`` fast path and
fall back to double-checked locking on first creation, keeping the hot
per-increment path to a single dict lookup plus the instrument lock.
Reporting methods copy the item lists under the registry lock and then
read each instrument under its own lock; concurrent updates during a
snapshot are therefore either entirely visible or entirely invisible
per instrument, never torn within one.  ``reset()`` replaces the maps;
callers holding an instrument reference keep a working (but orphaned)
instrument, which is the documented trade-off for a lock-free hot path.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Tuple

DEFAULT_GROWTH = 1.1


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. cached pages)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-scale histogram with quantile estimation.

    Positive observations land in bucket ``floor(log(v) / log(growth))``;
    non-positive observations are tallied in a dedicated zero bucket.  A
    bucket is reported as the geometric mean of its bounds, bounding the
    relative quantile error by ``sqrt(growth) - 1``.
    """

    __slots__ = ("growth", "_log_growth", "_buckets", "_zero", "_count",
                 "_sum", "_min", "_max", "_lock")

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth factor must be > 1: {growth}")
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}  # guarded-by: _lock
        self._zero = 0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._min = math.inf  # guarded-by: _lock
        self._max = -math.inf  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._observe_locked(value)

    def _observe_locked(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero += 1
        else:
            index = math.floor(math.log(value) / self._log_growth)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def _bucket_value(self, index: int) -> float:
        lower = self.growth ** index
        return lower * math.sqrt(self.growth)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        # Rank of the wanted observation among the sorted values.
        rank = q * (self._count - 1)
        position = self._zero
        if rank < self._zero:
            return min(self._min, 0.0) if self._zero else 0.0
        for index in sorted(self._buckets):
            position += self._buckets[index]
            if rank < position:
                estimate = self._bucket_value(index)
                # Never report outside the observed range.
                return min(max(estimate, self._min), self._max)
        return self._max

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            return self._quantile_locked(q)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> Dict[str, float]:
        """One atomic snapshot: the quantiles are computed under the same
        lock acquisition as the count/sum they accompany, so a summary
        taken during concurrent observes is internally consistent."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }

    def export_state(self) -> Dict[str, object]:
        """The raw sketch (zero tally, bucket counts, moments) as one
        consistent snapshot — the mergeable form windowed aggregation and
        the Prometheus bucket exposition are built from."""
        with self._lock:
            return {
                "growth": self.growth,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "zero": self._zero,
                "buckets": dict(self._buckets),
            }


def merge_histogram_states(states: List[Dict[str, object]],
                           growth: float = DEFAULT_GROWTH) -> Dict[str, float]:
    """Combine :meth:`Histogram.export_state` snapshots (e.g. the last N
    time-series windows) into one :meth:`Histogram.summary`-shaped dict.
    All states must share the same growth factor."""
    merged = Histogram(growth)
    for state in states:
        if state["growth"] != growth:
            raise ValueError(
                f"cannot merge growth {state['growth']} into {growth}")
        count = int(state["count"])  # type: ignore[arg-type]
        if not count:
            continue
        merged._count += count
        merged._sum += float(state["sum"])  # type: ignore[arg-type]
        merged._min = min(merged._min, float(state["min"]))  # type: ignore[arg-type]
        merged._max = max(merged._max, float(state["max"]))  # type: ignore[arg-type]
        merged._zero += int(state["zero"])  # type: ignore[arg-type]
        for index, tally in state["buckets"].items():  # type: ignore[union-attr]
            merged._buckets[index] = merged._buckets.get(index, 0) + tally
    return merged.summary()


class MetricsRegistry:
    """Named, thread-safe, get-or-create instrument collection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock

    # The lock-free reads below are safe under CPython's GIL (dict.get
    # is atomic); the lock only serialises creation, keeping the hot
    # per-increment path to a single dict lookup.

    def counter(self, name: str) -> Counter:
        # repro-lint: disable=RL004,RL100 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._counters.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, self._counters)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        # repro-lint: disable=RL004,RL100 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._gauges.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unique(name, self._gauges)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str,
                  growth: float = DEFAULT_GROWTH) -> Histogram:
        # repro-lint: disable=RL004,RL100 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._histograms.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unique(name, self._histograms)
                instrument = self._histograms[name] = Histogram(growth)
            return instrument

    # holds-lock: _lock
    def _check_unique(self, name: str, own: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another type")

    # -- reporting ----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            items = list(self._counters.items())
        return {name: counter.value for name, counter in items}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            items = list(self._gauges.items())
        return {name: gauge.value for name, gauge in items}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = list(self._histograms.items())
        return {name: histogram.summary() for name, histogram in items}

    def find_counter(self, name: str) -> Optional[Counter]:
        """The named counter, or None — never creates (unlike
        :meth:`counter`), so read-only consumers don't mint zero-valued
        instruments."""
        with self._lock:
            return self._counters.get(name)

    def find_gauge(self, name: str) -> Optional[Gauge]:
        """The named gauge, or None (non-creating)."""
        with self._lock:
            return self._gauges.get(name)

    def find_histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or None (non-creating)."""
        with self._lock:
            return self._histograms.get(name)

    def counter_items(self) -> List[Tuple[str, Counter]]:
        """Live counter instruments (name-sorted copy of the map)."""
        with self._lock:
            return sorted(self._counters.items())

    def gauge_items(self) -> List[Tuple[str, Gauge]]:
        """Live gauge instruments (name-sorted copy of the map)."""
        with self._lock:
            return sorted(self._gauges.items())

    def histogram_items(self) -> List[Tuple[str, Histogram]]:
        """Live histogram instruments (name-sorted copy of the map) —
        the public accessor exporters use instead of the private maps."""
        with self._lock:
            return sorted(self._histograms.items())

    def snapshot(self) -> Dict[str, object]:
        """Everything, as plain data (JSON-serialisable)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def names(self) -> List[str]:
        with self._lock:
            return sorted(set(self._counters) | set(self._gauges)
                          | set(self._histograms))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_counter_dict(registry: MetricsRegistry, prefix: str,
                       values: Dict[str, int]) -> None:
    """Bridge an external counter dict (e.g. MapReduce job counters or an
    IOStats snapshot) into ``registry`` under ``prefix.``-qualified names."""
    for name, value in values.items():
        if value:
            registry.counter(f"{prefix}.{name}").inc(value)


def _quantile_pairs() -> List[Tuple[str, float]]:
    return [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)]


def sanitize_name(name: str) -> str:
    """Dotted metric name -> Prometheus-legal name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote and newline must be escaped, in that order
    (escaping the backslash first so the others are not double-hit)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def format_sample(metric: str, labels: Optional[Mapping[str, object]],
                  value: object) -> str:
    """One exposition-format sample line with properly escaped labels."""
    if not labels:
        return f"{metric} {value}"
    rendered = ",".join(
        f'{sanitize_name(str(key))}="{escape_label_value(labels[key])}"'
        for key in labels)
    return f"{metric}{{{rendered}}} {value}"


def _histogram_bucket_lines(metric: str, histogram: Histogram) -> List[str]:
    """Prometheus ``histogram``-typed exposition: cumulative ``_bucket``
    samples with log-scale ``le`` upper bounds, then ``_sum``/``_count``.
    The zero bucket (observations <= 0) maps to ``le="0"``."""
    state = histogram.export_state()
    lines = [f"# TYPE {metric} histogram"]
    cumulative = int(state["zero"])  # type: ignore[arg-type]
    if cumulative:
        lines.append(format_sample(f"{metric}_bucket", {"le": "0"},
                                   cumulative))
    growth = float(state["growth"])  # type: ignore[arg-type]
    buckets: Dict[int, int] = state["buckets"]  # type: ignore[assignment]
    for index in sorted(buckets):
        cumulative += buckets[index]
        upper = growth ** (index + 1)
        lines.append(format_sample(f"{metric}_bucket",
                                   {"le": repr(upper)}, cumulative))
    lines.append(format_sample(f"{metric}_bucket", {"le": "+Inf"},
                               state["count"]))
    lines.append(f"{metric}_sum {state['sum']}")
    lines.append(f"{metric}_count {state['count']}")
    return lines


def to_prometheus_text(registry: MetricsRegistry,
                       namespace: Optional[str] = "repro",
                       histogram_mode: str = "summary") -> str:
    """Render the registry in the Prometheus text exposition format.

    ``histogram_mode="summary"`` (the default) exports histograms as
    quantile-labelled summaries plus ``_count``/``_sum`` — compact, and
    what log-scale sketches map to most directly.
    ``histogram_mode="histogram"`` exports the underlying log buckets as
    a real Prometheus histogram with cumulative ``_bucket{le=...}``
    samples, which server-side quantile aggregation needs.
    """
    if histogram_mode not in ("summary", "histogram"):
        raise ValueError(f"unknown histogram_mode {histogram_mode!r}")
    prefix = f"{sanitize_name(namespace)}_" if namespace else ""
    lines: List[str] = []
    for name, counter in registry.counter_items():
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value}")
    for name, gauge in registry.gauge_items():
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauge.value}")
    for name, histogram in registry.histogram_items():
        metric = prefix + sanitize_name(name)
        if histogram_mode == "histogram":
            lines.extend(_histogram_bucket_lines(metric, histogram))
            continue
        summary = histogram.summary()
        lines.append(f"# TYPE {metric} summary")
        for label, q in _quantile_pairs():
            lines.append(format_sample(metric, {"quantile": label},
                                       summary[f"p{round(q * 100)}"]))
        lines.append(f"{metric}_sum {summary['sum']}")
        lines.append(f"{metric}_count {summary['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
