"""Thread-safe metrics: counters, gauges and log-scale histograms.

The :class:`MetricsRegistry` is a named, get-or-create collection of
instruments, mirroring how Prometheus client libraries work.  Histograms
use geometric (log-scale) buckets so quantile estimates carry a bounded
*relative* error of at most ``sqrt(growth) - 1`` (≈ 4.9 % at the default
growth of 1.1) regardless of the value range — the right trade-off for
latencies spanning microseconds to seconds.

Metric names are dotted (``storage.page_reads``); the Prometheus text
exporter sanitises them to underscore form.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

DEFAULT_GROWTH = 1.1


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (e.g. cached pages)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-scale histogram with quantile estimation.

    Positive observations land in bucket ``floor(log(v) / log(growth))``;
    non-positive observations are tallied in a dedicated zero bucket.  A
    bucket is reported as the geometric mean of its bounds, bounding the
    relative quantile error by ``sqrt(growth) - 1``.
    """

    __slots__ = ("growth", "_log_growth", "_buckets", "_zero", "_count",
                 "_sum", "_min", "_max", "_lock")

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth factor must be > 1: {growth}")
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= 0.0:
                self._zero += 1
            else:
                index = math.floor(math.log(value) / self._log_growth)
                self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def _bucket_value(self, index: int) -> float:
        lower = self.growth ** index
        return lower * math.sqrt(self.growth)

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            # Rank of the wanted observation among the sorted values.
            rank = q * (self._count - 1)
            position = self._zero
            if rank < self._zero:
                return min(self._min, 0.0) if self._zero else 0.0
            for index in sorted(self._buckets):
                position += self._buckets[index]
                if rank < position:
                    estimate = self._bucket_value(index)
                    # Never report outside the observed range.
                    return min(max(estimate, self._min), self._max)
            return self._max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            count, total = self._count, self._sum
            minimum, maximum = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": total / count,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named, thread-safe, get-or-create instrument collection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # The lock-free reads below are safe under CPython's GIL (dict.get
    # is atomic); the lock only serialises creation, keeping the hot
    # per-increment path to a single dict lookup.

    def counter(self, name: str) -> Counter:
        # repro-lint: disable=RL004 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._counters.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, self._counters)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        # repro-lint: disable=RL004 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._gauges.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unique(name, self._gauges)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str,
                  growth: float = DEFAULT_GROWTH) -> Histogram:
        # repro-lint: disable=RL004 reason=double-checked locking; GIL-atomic dict.get fast path
        instrument = self._histograms.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unique(name, self._histograms)
                instrument = self._histograms[name] = Histogram(growth)
            return instrument

    def _check_unique(self, name: str, own: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another type")

    # -- reporting ----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            items = list(self._counters.items())
        return {name: counter.value for name, counter in items}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            items = list(self._gauges.items())
        return {name: gauge.value for name, gauge in items}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = list(self._histograms.items())
        return {name: histogram.summary() for name, histogram in items}

    def snapshot(self) -> Dict[str, object]:
        """Everything, as plain data (JSON-serialisable)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def names(self) -> List[str]:
        with self._lock:
            return sorted(set(self._counters) | set(self._gauges)
                          | set(self._histograms))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_counter_dict(registry: MetricsRegistry, prefix: str,
                       values: Dict[str, int]) -> None:
    """Bridge an external counter dict (e.g. MapReduce job counters or an
    IOStats snapshot) into ``registry`` under ``prefix.``-qualified names."""
    for name, value in values.items():
        if value:
            registry.counter(f"{prefix}.{name}").inc(value)


def _quantile_pairs() -> List[Tuple[str, float]]:
    return [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)]


def sanitize_name(name: str) -> str:
    """Dotted metric name -> Prometheus-legal name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def to_prometheus_text(registry: MetricsRegistry,
                       namespace: Optional[str] = "repro") -> str:
    """Render the registry in the Prometheus text exposition format.

    Histograms are exported in summary form (quantile-labelled samples
    plus ``_count``/``_sum``), which is what log-scale sketches map to.
    """
    prefix = f"{sanitize_name(namespace)}_" if namespace else ""
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(registry.gauges().items()):
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    with registry._lock:
        histograms = list(registry._histograms.items())
    for name, histogram in sorted(histograms):
        metric = prefix + sanitize_name(name)
        lines.append(f"# TYPE {metric} summary")
        for label, q in _quantile_pairs():
            lines.append(
                f'{metric}{{quantile="{label}"}} {histogram.quantile(q)}')
        lines.append(f"{metric}_sum {histogram.sum}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")
