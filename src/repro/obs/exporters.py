"""Exporters for spans and metrics.

Three output formats:

* :func:`render_span_tree` — human-readable tree with durations,
  self-time, attributes, and aggregation of repeated same-name children
  (a query builds hundreds of ``query.thread_build`` spans; the tree
  shows one line with a count);
* :func:`span_to_dict` / :func:`write_spans_jsonl` — flat JSON-lines
  records with ``span_id``/``parent_id`` links, one span per line, in
  the shape trace viewers ingest (:func:`parse_spans_jsonl` is the
  inverse, rebuilding the span trees from such a stream);
* :func:`to_prometheus_text` (re-exported from
  :mod:`repro.obs.metrics`) — text exposition of a registry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, TextIO

from .metrics import MetricsRegistry, sanitize_name, to_prometheus_text
from .tracer import Span

__all__ = [
    "render_span_tree",
    "span_to_dict",
    "spans_to_dicts",
    "write_spans_jsonl",
    "parse_spans_jsonl",
    "to_prometheus_text",
    "sanitize_name",
    "render_metrics",
]


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attributes(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return " {" + ", ".join(parts) + "}"


def _render(span: Span, lines: List[str], indent: str, aggregate: bool,
            aggregate_min: int) -> None:
    lines.append(f"{indent}{span.name}  [{_format_duration(span.duration)}]"
                 f"{_format_attributes(span.attributes)}")
    child_indent = indent + "  "
    if not aggregate:
        for child in span.children:
            _render(child, lines, child_indent, aggregate, aggregate_min)
        return
    # Group consecutive runs of same-name children; collapse any name
    # that occurs aggregate_min+ times into one summary line.
    by_name: Dict[str, List[Span]] = {}
    order: List[str] = []
    for child in span.children:
        if child.name not in by_name:
            order.append(child.name)
        by_name.setdefault(child.name, []).append(child)
    for name in order:
        group = by_name[name]
        if len(group) < aggregate_min:
            for child in group:
                _render(child, lines, child_indent, aggregate, aggregate_min)
            continue
        total = sum(child.duration for child in group)
        lines.append(f"{child_indent}{name} ×{len(group)}  "
                     f"[total {_format_duration(total)}, "
                     f"mean {_format_duration(total / len(group))}]")


def render_span_tree(spans: Iterable[Span], aggregate: bool = True,
                     aggregate_min: int = 4) -> str:
    """Render finished root spans as an indented tree.

    With ``aggregate`` (the default), sibling spans sharing a name that
    appear ``aggregate_min`` or more times collapse to a single
    ``name ×N [total ..., mean ...]`` line — per-candidate spans stay
    readable at any query size.
    """
    lines: List[str] = []
    for span in spans:
        _render(span, lines, "", aggregate, aggregate_min)
    return "\n".join(lines)


def span_to_dict(span: Span, parent_id: Optional[int] = None,
                 _ids: Optional[List[int]] = None) -> List[Dict[str, Any]]:
    """Flatten one span tree into JSON-ready dicts with id/parent links."""
    if _ids is None:
        _ids = [0]
    _ids[0] += 1
    span_id = _ids[0]
    record: Dict[str, Any] = {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": span.name,
        "wall_start": span.wall_start,
        "duration_seconds": span.duration,
    }
    if span.attributes:
        record["attributes"] = dict(span.attributes)
    records = [record]
    for child in span.children:
        records.extend(span_to_dict(child, span_id, _ids))
    return records


def spans_to_dicts(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Flatten several root spans; ids are unique across the batch."""
    ids = [0]
    records: List[Dict[str, Any]] = []
    for span in spans:
        records.extend(span_to_dict(span, None, ids))
    return records


def write_spans_jsonl(spans: Iterable[Span], handle: TextIO) -> int:
    """Write one JSON object per span (depth-first, parents before
    children); returns the number of lines written."""
    count = 0
    for record in spans_to_dicts(spans):
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def parse_spans_jsonl(handle: TextIO) -> List[Span]:
    """Rebuild root :class:`Span` trees from a :func:`write_spans_jsonl`
    stream.  The reconstructed spans preserve the exported tree shape,
    names, attributes, wall-clock starts and durations exactly; the
    ``perf_counter`` origin does not survive serialisation, so each span
    is re-based at ``start = 0`` with ``end = duration``.  Feeding the
    result back through :func:`spans_to_dicts` therefore yields records
    identical to the input — the round-trip property the exporter tests
    pin."""
    by_id: Dict[int, Span] = {}
    roots: List[Span] = []
    for line in handle:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        span = Span.__new__(Span)
        span.name = record["name"]
        span.attributes = dict(record.get("attributes", {}))
        span.children = []
        span.wall_start = record["wall_start"]
        span.start = 0.0
        span.end = record["duration_seconds"]
        parent = by_id.get(record["parent_id"]) \
            if record.get("parent_id") is not None else None
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
        by_id[record["span_id"]] = span
    return roots


def render_metrics(registry: MetricsRegistry) -> str:
    """Human-readable dump of a registry (counters, gauges, histogram
    summaries), sorted by name."""
    lines: List[str] = []
    counters = registry.counters()
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
    gauges = registry.gauges()
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]:g}")
    histograms = registry.histograms()
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            s = histograms[name]
            lines.append(
                f"  {name}: count={s['count']:.0f} mean={s['mean']:.4g} "
                f"p50={s['p50']:.4g} p95={s['p95']:.4g} p99={s['p99']:.4g} "
                f"max={s['max']:.4g}")
    return "\n".join(lines)
