"""Project-specific lint rules RL001-RL007.

Each rule encodes a discipline this codebase has already been burned by
(or nearly so); the ``rationale`` strings name the historical incident.
All rules are pure AST analyses — no imports of the checked code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .annotations import scan_annotations
from .findings import Finding
from .registry import ModuleInfo, Rule, register

#: Constructor names that produce a fresh *mutable* container.
MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
}
#: Constructor names whose results are immutable (safe as shared defaults).
IMMUTABLE_CONSTRUCTORS = {"tuple", "frozenset", "bool", "int", "float",
                          "str", "bytes", "complex"}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "add", "append", "extend", "update", "clear", "pop", "popitem",
    "remove", "discard", "insert", "setdefault", "sort", "reverse",
}


def _call_name(func: ast.expr) -> str:
    """The called name: ``f(...)`` -> ``f``; ``a.b.f(...)`` -> ``f``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _receiver_tail(func: ast.expr) -> str:
    """For ``a.b.f(...)`` the name the method is called on (``b``)."""
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return ""


def _self_attr(node: ast.AST, owner: str = "self") -> Optional[str]:
    """``self.x`` -> ``"x"`` (else None)."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == owner):
        return node.attr
    return None


def _methods(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [node for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def _function_units(tree: ast.Module):
    """Yield ``(symbol, body)`` scopes: the module plus every function,
    without descending into nested scopes (each is its own unit)."""
    yield "", list(tree.body)

    def visit(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = f"{prefix}{child.name}"
                yield symbol, list(child.body)
                yield from visit(child, f"{symbol}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def _walk_same_scope(stmts: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without entering nested function/class scopes."""
    pending: List[ast.AST] = list(stmts)
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        pending.extend(ast.iter_child_nodes(node))


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    return "ClassVar" in text


@register
class NoMutableDataclassDefault(Rule):
    """RL001: dataclass fields must not share a mutable default."""

    rule_id = "RL001"
    summary = "no mutable or shared-instance dataclass field defaults"
    rationale = ("A shared mutable ScoringConfig default let one query's "
                 "tweak leak into every later engine instance; "
                 "default_factory creates a fresh value per instance.")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef) or not _is_dataclass(cls):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                    continue
                if _annotation_is_classvar(stmt.annotation):
                    continue
                name = (stmt.target.id
                        if isinstance(stmt.target, ast.Name) else "?")
                message = self._diagnose(stmt.value)
                if message:
                    yield self.finding(module, stmt,
                                       f"field {name!r} {message}",
                                       symbol=f"{cls.name}.{name}")

    @staticmethod
    def _diagnose(value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return ("has a mutable literal default shared by every "
                    "instance; use field(default_factory=...)")
        if isinstance(value, ast.Call):
            name = _call_name(value.func)
            if name == "field":
                for keyword in value.keywords:
                    if keyword.arg == "default" and keyword.value is not None:
                        inner = NoMutableDataclassDefault._diagnose(
                            keyword.value)
                        if inner:
                            return inner
                return None
            if name in IMMUTABLE_CONSTRUCTORS:
                return None
            if name in MUTABLE_CONSTRUCTORS:
                return ("has a mutable container default shared by every "
                        "instance; use field(default_factory=...)")
            return (f"defaults to a shared {name}() instance; one "
                    "instance's mutation leaks into all others — use "
                    "field(default_factory=...)")
        return None


@register
class CacheReturnsMustCopy(Rule):
    """RL002: methods must not hand out internal containers by reference."""

    rule_id = "RL002"
    summary = "methods returning dict/list/set attributes must copy"
    rationale = ("HybridIndex.postings once returned its cached postings "
                 "list by reference; temporal clipping then corrupted "
                 "every later cache hit for that (cell, term).  Immutable "
                 "values (tuples, frozensets) are safe to hand out by "
                 "reference: callers cannot corrupt what they cannot "
                 "mutate, so attrs rebound to immutable constructors "
                 "anywhere in the class are exempt.")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            mutable_attrs = self._assigned_attrs(cls, mutable=True)
            if not mutable_attrs:
                continue
            # An attr the class (re)binds to tuple()/frozenset()/a tuple
            # literal is an immutable-snapshot handoff, not an aliasing
            # hazard — the block-postings caches return such values by
            # reference on purpose.
            immutable_attrs = self._assigned_attrs(cls, mutable=False)
            for method in _methods(cls):
                if method.name == "__init__":
                    continue
                for node in _walk_same_scope(method.body):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    attr = _self_attr(node.value)
                    if attr in mutable_attrs and attr not in immutable_attrs:
                        yield self.finding(
                            module, node,
                            f"returns internal container self.{attr} by "
                            f"reference; return a copy (list(...), "
                            f"dict(...), .copy()), an immutable snapshot "
                            f"(tuple(...)), or document ownership",
                            symbol=f"{cls.name}.{method.name}")

    @staticmethod
    def _assigned_attrs(cls: ast.ClassDef, mutable: bool) -> Set[str]:
        """Attrs assigned container values in any method of ``cls``:
        mutable containers (``mutable=True``) or immutable ones
        (``mutable=False`` — tuple/frozenset calls and tuple literals)."""
        attrs: Set[str] = set()
        for method in _methods(cls):
            for node in _walk_same_scope(method.body):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                if mutable:
                    matches = (
                        isinstance(value, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.SetComp,
                                           ast.DictComp))
                        or (isinstance(value, ast.Call)
                            and _call_name(value.func)
                            in MUTABLE_CONSTRUCTORS))
                else:
                    matches = (
                        isinstance(value, ast.Tuple)
                        or (isinstance(value, ast.Call)
                            and _call_name(value.func)
                            in IMMUTABLE_CONSTRUCTORS))
                if not matches:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        attrs.add(attr)
        return attrs


@register
class SpanBalance(Rule):
    """RL003: tracer spans only through ``with`` (or returned/re-exported)."""

    rule_id = "RL003"
    summary = "tracer spans must be entered via with, never left dangling"
    rationale = ("A span entered without with stays open on exceptions, "
                 "corrupting the tracer's per-thread stack for every "
                 "later span on that thread.")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for symbol, body in _function_units(module.tree):
            with_calls: Set[int] = set()
            with_names: Set[str] = set()
            returned: Set[int] = set()
            assigned: Dict[int, List[str]] = {}
            span_calls: List[ast.Call] = []
            forbidden: List[ast.Call] = []

            for node in _walk_same_scope(body):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        expr = item.context_expr
                        if isinstance(expr, ast.Call):
                            with_calls.add(id(expr))
                        elif isinstance(expr, ast.Name):
                            with_names.add(expr.id)
                elif isinstance(node, ast.Return) and node.value is not None:
                    if isinstance(node.value, ast.Call):
                        returned.add(id(node.value))
                elif isinstance(node, ast.Assign):
                    if isinstance(node.value, ast.Call):
                        names = [t.id for t in node.targets
                                 if isinstance(t, ast.Name)]
                        if names:
                            assigned[id(node.value)] = names
                if isinstance(node, ast.Call):
                    kind = self._span_call_kind(node)
                    if kind == "forbidden":
                        forbidden.append(node)
                    elif kind == "span":
                        span_calls.append(node)

            for call in forbidden:
                yield self.finding(
                    module, call,
                    "start_span is forbidden: unbalanced spans corrupt the "
                    "per-thread stack — use 'with tracer.span(...)'",
                    symbol=symbol)
            for call in span_calls:
                if id(call) in with_calls or id(call) in returned:
                    continue
                names = assigned.get(id(call))
                if names and any(name in with_names for name in names):
                    continue
                yield self.finding(
                    module, call,
                    "span created outside a with block; enter it via "
                    "'with ...' (or return it so the caller does)",
                    symbol=symbol)

    @staticmethod
    def _span_call_kind(call: ast.Call) -> Optional[str]:
        name = _call_name(call.func)
        if name == "start_span":
            return "forbidden"
        if name not in ("span", "trace"):
            return None
        receiver = _receiver_tail(call.func)
        if name == "trace" and receiver == "obs":
            return "span"
        if name == "span" and "tracer" in receiver.lower():
            return "span"
        return None


@register
class LockDiscipline(Rule):
    """RL004: lock-guarded attributes never touched lock-free."""

    rule_id = "RL004"
    summary = "attributes written under self._lock are lock-protected everywhere"
    rationale = ("Scatter-gather runs operators on worker threads; state "
                 "mutated under a lock in one method but read bare in "
                 "another is a data race waiting for a free-threaded "
                 "interpreter.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        annotations = scan_annotations(module.source, module.path)
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guarded, lock_attrs = self._guarded_attrs(cls)
            if not guarded:
                continue
            for method in _methods(cls):
                if method.name in ("__init__", "__post_init__"):
                    continue
                # ``# holds-lock:`` (and the ``*_locked`` suffix
                # convention) declare the caller already owns the lock;
                # the body is checked as if inside the with block.
                held = (method.name.endswith("_locked")
                        or method.lineno in annotations.holds_lock)
                yield from self._check_method(module, cls, method, guarded,
                                              lock_attrs, held)

    @staticmethod
    def _is_lock_attr(name: str) -> bool:
        return "lock" in name.lower() or "mutex" in name.lower()

    def _lock_items(self, node: ast.AST) -> bool:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            return False
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and self._is_lock_attr(attr):
                return True
        return False

    def _guarded_attrs(self, cls: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
        guarded: Set[str] = set()
        lock_attrs: Set[str] = set()
        for method in _methods(cls):
            for node in _walk_same_scope(method.body):
                if not self._lock_items(node):
                    continue
                for item in node.items:  # type: ignore[attr-defined]
                    attr = _self_attr(item.context_expr)
                    if attr is not None and self._is_lock_attr(attr):
                        lock_attrs.add(attr)
                for inner in _walk_same_scope(node.body):  # type: ignore[attr-defined]
                    guarded.update(self._written_attrs(inner))
        return guarded - lock_attrs, lock_attrs

    @staticmethod
    def _written_attrs(node: ast.AST) -> Set[str]:
        written: Set[str] = set()
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                written.add(attr)
            elif isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr is not None:
                    written.add(attr)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                attr = _self_attr(node.func.value)
                if attr is not None:
                    written.add(attr)
        return written

    def _check_method(self, module: ModuleInfo, cls: ast.ClassDef,
                      method: ast.FunctionDef, guarded: Set[str],
                      lock_attrs: Set[str],
                      held: bool = False) -> Iterator[Finding]:
        func_nodes = {id(node.func) for node in _walk_same_scope(method.body)
                      if isinstance(node, ast.Call)}
        reported: Set[Tuple[int, str]] = set()

        def scan(nodes: List[ast.stmt], locked: bool) -> Iterator[Finding]:
            for stmt in nodes:
                yield from scan_node(stmt, locked)

        def scan_node(node: ast.AST, locked: bool) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                return
            if self._lock_items(node):
                assert isinstance(node, (ast.With, ast.AsyncWith))
                for item in node.items:
                    yield from scan_node(item, locked)
                yield from scan(node.body, True)
                return
            attr = _self_attr(node)
            if (attr in guarded and not locked and id(node) not in func_nodes
                    and (node.lineno, attr) not in reported):
                reported.add((node.lineno, attr))
                yield Finding(
                    rule=self.rule_id, path=module.path, line=node.lineno,
                    col=node.col_offset,
                    message=f"self.{attr} is written under "
                            f"self.{sorted(lock_attrs)[0]} elsewhere but "
                            f"accessed here without the lock",
                    symbol=f"{cls.name}.{method.name}")
            for child in ast.iter_child_nodes(node):
                yield from scan_node(child, locked)

        yield from scan(method.body, held)


@register
class OperatorPurity(Rule):
    """RL005: operators only mutate the QueryContext fields they declare."""

    rule_id = "RL005"
    summary = "pipeline operators declare every QueryContext field they write"
    rationale = ("The planner memoises plans and shares operator instances "
                 "across queries; an undeclared context write is invisible "
                 "to plan composition and broke funnel accounting once.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if cls.name == "PhysicalOperator" or not self._is_operator(cls):
                continue
            writes = self._declared_writes(cls)
            if writes is None:
                yield self.finding(
                    module, cls,
                    "operator must declare 'writes: Tuple[str, ...]' naming "
                    "the QueryContext fields it mutates",
                    symbol=cls.name)
                continue
            for method in _methods(cls):
                ctx_params = self._context_params(method)
                if not ctx_params:
                    continue
                for node in _walk_same_scope(method.body):
                    for field, site in self._context_writes(node, ctx_params):
                        if field not in writes:
                            yield self.finding(
                                module, site,
                                f"writes undeclared context field "
                                f"ctx.{field}; add it to {cls.name}.writes",
                                symbol=f"{cls.name}.{method.name}")

    @staticmethod
    def _is_operator(cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else "")
            if name == "PhysicalOperator":
                return True
        return False

    @staticmethod
    def _declared_writes(cls: ast.ClassDef) -> Optional[Set[str]]:
        for stmt in cls.body:
            value: Optional[ast.expr] = None
            name = ""
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                if isinstance(stmt.targets[0], ast.Name):
                    name = stmt.targets[0].id
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    name = stmt.target.id
                    value = stmt.value
            if name != "writes" or value is None:
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                fields = set()
                for element in value.elts:
                    if (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        fields.add(element.value)
                return fields
        return None

    @staticmethod
    def _context_params(method: ast.FunctionDef) -> Set[str]:
        params: Set[str] = set()
        for arg in method.args.args + method.args.kwonlyargs:
            annotation = arg.annotation
            annotated = annotation is not None and (
                "QueryContext" in ast.unparse(annotation))
            if annotated or arg.arg == "ctx":
                params.add(arg.arg)
        return params

    @staticmethod
    def _context_writes(node: ast.AST, ctx_params: Set[str]
                        ) -> Iterator[Tuple[str, ast.AST]]:
        def direct_field(expr: ast.expr) -> Optional[str]:
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id in ctx_params):
                return expr.attr
            return None

        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            field = direct_field(target)
            if field is not None:
                yield field, node
            elif isinstance(target, ast.Subscript):
                field = direct_field(target.value)
                if field is not None:
                    yield field, node
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                field = direct_field(node.func.value)
                if field is not None:
                    yield field, node


@register
class HandleRelease(Rule):
    """RL006: pinned pages released via try/finally or context manager."""

    rule_id = "RL006"
    summary = "get_page/allocate_page pins balanced by unpin in a finally"
    rationale = ("A leaked pin makes the page unevictable; under pin "
                 "pressure the buffer pool silently grows past capacity "
                 "and the paper's I/O accounting drifts.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for symbol, body in _function_units(module.tree):
            if symbol.split(".")[-1] == "__enter__":
                continue  # pin handed to the paired __exit__
            unpinned = self._unpinned_names(body)
            allowed: Set[int] = set()
            pin_calls: List[Tuple[ast.Call, Optional[str]]] = []

            for node in _walk_same_scope(body):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if isinstance(item.context_expr, ast.Call):
                            allowed.add(id(item.context_expr))
                elif isinstance(node, ast.Return) and isinstance(
                        node.value, ast.Call):
                    allowed.add(id(node.value))
                if (isinstance(node, ast.Call)
                        and _call_name(node.func) in ("get_page",
                                                      "allocate_page")
                        and isinstance(node.func, ast.Attribute)):
                    pin_calls.append((node, None))
                elif isinstance(node, ast.Assign) and isinstance(
                        node.value, ast.Call):
                    pass  # assignment targets resolved below

            assigns: Dict[int, str] = {}
            for node in _walk_same_scope(body):
                if (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and isinstance(node.value, ast.Call)):
                    assigns[id(node.value)] = node.targets[0].id

            for call, _unused in pin_calls:
                if id(call) in allowed:
                    continue
                name = assigns.get(id(call))
                if name is not None and name in unpinned:
                    continue
                yield self.finding(
                    module, call,
                    "pinned page not released on all paths; unpin it in a "
                    "try/finally or use pool.pinned(...)",
                    symbol=symbol)

    @staticmethod
    def _unpinned_names(body: List[ast.stmt]) -> Set[str]:
        """Names passed to ``.unpin(name)`` inside a ``finally`` block."""
        names: Set[str] = set()
        for node in _walk_same_scope(body):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for inner in ast.walk(stmt):
                    if (isinstance(inner, ast.Call)
                            and _call_name(inner.func) == "unpin"):
                        for arg in inner.args:
                            if isinstance(arg, ast.Name):
                                names.add(arg.id)
        return names


@register
class NoNakedFloatEq(Rule):
    """RL007: no == / != against float literals in scoring/bounds code."""

    rule_id = "RL007"
    summary = "scoring and bounds code never compares floats with == / !="
    rationale = ("Score ties and bound crossings decide pruning "
                 "correctness; exact float equality silently diverges "
                 "between accumulation orders — use math.isclose or an "
                 "explicit tolerance.")
    path_patterns = (
        "core/scoring", "core/influence", "core/temporal",
        "query/bounds", "query/topk", "query/max_ranking",
        "query/sum_ranking", "eval/kendall",
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            has_float = any(isinstance(op, ast.Constant)
                            and isinstance(op.value, float)
                            for op in operands)
            if not has_float:
                continue
            for op in node.ops:
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    yield self.finding(
                        module, node,
                        "float literal compared with == / != in scoring "
                        "code; use math.isclose or an explicit tolerance")
                    break
