"""Concurrency-discipline annotations.

Two comment forms declare the locking contract the RL100 family checks
(token-based scanning, so occurrences inside string literals are
ignored)::

    self._ring = []          # guarded-by: _lock
    def _drain_locked(self): # holds-lock: _lock

``# guarded-by: <lock>`` trails the statement that introduces a field
(an assignment to ``self.<field>`` in ``__init__``, or a class-level
``field: type`` annotation) and declares that every later read or write
of that field must happen inside a ``with self.<lock>:`` block (or in a
method annotated ``holds-lock``).  ``<lock>`` names an attribute of the
same object — write it bare (``_lock``), not ``self._lock``.

``# holds-lock: <lock>`` trails a ``def`` line and declares the method
is only ever called with ``<lock>`` already held — the body is then
checked as if it were inside the ``with`` block.  Helpers following the
``*_locked`` naming convention get the same treatment for every lock
(the suffix is the project's pre-existing signal for "caller holds the
lock").

The scan is per-module and purely lexical; binding annotations to the
class structure happens in :mod:`repro.lint.concurrency`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

from .findings import META_RULE, Finding
from .suppressions import _comment_tokens

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][\w.]*)\s*$")
_HOLDS_LOCK = re.compile(r"#\s*holds-lock:\s*(?P<lock>[A-Za-z_][\w.]*)\s*$")
_GUARDED_BY_LOOSE = re.compile(r"#\s*guarded-by\b")
_HOLDS_LOCK_LOOSE = re.compile(r"#\s*holds-lock\b")


@dataclass
class AnnotationMap:
    """Lock annotations by source line, plus malformed-comment findings."""

    #: line -> lock name for ``# guarded-by: <lock>`` comments.  The
    #: line is the one carrying the comment (trailing form) or the one
    #: after it (standalone form), matching suppression semantics.
    guarded_by: Dict[int, str] = field(default_factory=dict)
    #: line -> lock name for ``# holds-lock: <lock>`` comments.
    holds_lock: Dict[int, str] = field(default_factory=dict)
    malformed: List[Finding] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.guarded_by and not self.holds_lock


def scan_annotations(source: str, path: str) -> AnnotationMap:
    """Parse every lock annotation comment in ``source``."""
    result = AnnotationMap()
    for line, col, text, line_source in _comment_tokens(source):
        for pattern, loose, store, label in (
                (_GUARDED_BY, _GUARDED_BY_LOOSE, result.guarded_by,
                 "guarded-by"),
                (_HOLDS_LOCK, _HOLDS_LOCK_LOOSE, result.holds_lock,
                 "holds-lock")):
            match = pattern.search(text)
            if match is not None:
                lock = match.group("lock")
                if lock.startswith("self."):
                    lock = lock[len("self."):]
                standalone = line_source[:col].strip() == ""
                target = line + 1 if standalone else line
                store[target] = lock
            elif loose.search(text) is not None:
                result.malformed.append(Finding(
                    rule=META_RULE, path=path, line=line, col=col,
                    message=f"malformed {label} annotation (ignored); "
                            f"write '# {label}: <lock_attr>'"))
    return result
