"""Concurrency and resource-protocol rules RL100-RL106.

These rules check the thread-safety contracts the serving layer will
depend on, using the CFG/dataflow engine (:mod:`~repro.lint.cfg`,
:mod:`~repro.lint.flow`) and the annotation language
(:mod:`~repro.lint.annotations`):

========  ==========================================================
RL100     ``# guarded-by`` fields accessed outside ``with <lock>:``
RL101     lock-order graph cycle (potential deadlock), project-wide
RL102     registry pin not released on every path (incl. exceptions)
RL103     generation lifecycle transition outside the legal diagram
RL104     ``os.replace`` commit without fsync of the written source
RL105     registry publish (swap/append) before the durable commit
RL106     bare ``.acquire()`` without ``.release()`` on every path
========  ==========================================================

All of RL1xx skip test files: tests legitimately poke at internals
(and the fixture corpus under ``tests/lint_fixtures/`` would otherwise
flag itself).  Where the static analysis is intentionally incomplete —
RL101 sees only same-class acquisition nesting — the runtime lock
sanitizer (:mod:`~repro.lint.sanitizer`) covers the dynamic remainder.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .annotations import AnnotationMap, scan_annotations
from .cfg import CFG, CFGNode, build_cfg, function_cfgs
from .findings import Finding
from .flow import FlowResult, resource_flow
from .registry import ModuleInfo, ProjectRule, Rule, register
from .rules import _call_name, _methods, _receiver_tail, _self_attr

#: Method-name suffix meaning "caller already holds the object's lock"
#: — the project's pre-existing convention (``_drain_locked`` etc.).
LOCKED_SUFFIX = "_locked"

#: Methods that run before the object is shared across threads (or
#: after it can no longer be) — guarded-by does not apply inside them.
_CONSTRUCTION_METHODS = {"__init__", "__post_init__", "__del__",
                         "__new__", "__getstate__", "__setstate__"}


def _is_lock_name(name: str) -> bool:
    # Condition variables guard state exactly like plain locks (``with
    # self._cond:`` acquires the underlying lock), so they participate
    # in the guarded-by discipline too.
    lowered = name.lower()
    return any(token in lowered for token in ("lock", "mutex", "cond"))


def _with_lock_attrs(stmt: ast.AST) -> List[str]:
    """Lock attribute names acquired by ``with self.<lock>:`` items."""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return []
    out = []
    for item in stmt.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and _is_lock_name(attr):
            out.append(attr)
    return out


def _shallow_exprs(stmt: ast.AST) -> Iterator[ast.expr]:
    """The expressions evaluated *by this statement itself* — headers of
    compound statements, everything of simple ones — without descending
    into nested statement bodies.  CFG nodes are statements, so gen/kill
    inspection must not see a child statement's effects."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child
        elif isinstance(child, ast.withitem):
            yield child.context_expr
            if child.optional_vars is not None:
                yield child.optional_vars


def _shallow_calls(stmt: ast.AST) -> Iterator[ast.Call]:
    for expr in _shallow_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _expr_tail(expr: ast.expr) -> str:
    """A readable dotted tail for receivers: ``self.a.b`` -> ``a.b``."""
    parts: List[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id != "self":
        parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# RL100: guarded-by fields
# ---------------------------------------------------------------------------

@register
class GuardedByDiscipline(Rule):
    """RL100: fields declared ``# guarded-by: <lock>`` are only touched
    inside ``with self.<lock>:`` (or a ``holds-lock`` method)."""

    rule_id = "RL100"
    summary = "guarded-by annotated fields accessed only under their lock"
    rationale = ("RL004 infers guarding from observed usage, so a class "
                 "that is wrong *consistently* passes; guarded-by makes "
                 "the contract explicit per field, ready for the "
                 "concurrent serving layer and checked by the runtime "
                 "sanitizer too.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        annotations = scan_annotations(module.source, module.path)
        if annotations.empty:
            return
        yield from annotations.malformed
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(module, cls, annotations)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef,
                     annotations: AnnotationMap) -> Iterator[Finding]:
        guarded = self._guarded_fields(cls, annotations)
        if not guarded:
            return
        for method in _methods(cls):
            if method.name in _CONSTRUCTION_METHODS:
                continue
            held = self._entry_locks(method, annotations, guarded)
            yield from self._scan(module, cls, method, method.body,
                                  guarded, held)

    @staticmethod
    def _guarded_fields(cls: ast.ClassDef,
                        annotations: AnnotationMap) -> Dict[str, str]:
        """field name -> lock attr, from annotated ``self.x = ...`` in
        construction methods and annotated class-level ``x: T``."""
        guarded: Dict[str, str] = {}
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.lineno in annotations.guarded_by):
                guarded[stmt.target.id] = annotations.guarded_by[stmt.lineno]
        for method in _methods(cls):
            if method.name not in ("__init__", "__post_init__"):
                continue
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign,
                                         ast.AugAssign)):
                    continue
                # The annotation comment may trail any line of a
                # multi-line assignment.
                lock = None
                end = getattr(node, "end_lineno", node.lineno)
                for line in range(node.lineno, (end or node.lineno) + 1):
                    lock = annotations.guarded_by.get(line)
                    if lock is not None:
                        break
                if lock is None:
                    continue
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        guarded[attr] = lock
        return guarded

    @staticmethod
    def _entry_locks(method: ast.FunctionDef, annotations: AnnotationMap,
                     guarded: Dict[str, str]) -> Set[str]:
        """Locks already held when the method body starts."""
        held: Set[str] = set()
        lock = annotations.holds_lock.get(method.lineno)
        if lock is not None:
            held.add(lock)
        if method.name.endswith(LOCKED_SUFFIX):
            held.update(guarded.values())
        return held

    def _scan(self, module: ModuleInfo, cls: ast.ClassDef,
              method: ast.FunctionDef, stmts: Sequence[ast.stmt],
              guarded: Dict[str, str], held: Set[str]) -> Iterator[Finding]:
        reported: Set[Tuple[int, str]] = set()

        def visit(node: ast.AST, held: Set[str]) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                # A nested def may run later on another thread (weakref
                # finalizers, executor callbacks): nothing is provably
                # held inside it.
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    yield from self._scan(module, cls, method, node.body,
                                          guarded, set())
                return
            acquired = _with_lock_attrs(node)
            if acquired:
                assert isinstance(node, (ast.With, ast.AsyncWith))
                for item in node.items:
                    yield from visit(item.context_expr, held)
                inner = held | set(acquired)
                for stmt in node.body:
                    yield from visit(stmt, inner)
                return
            attr = _self_attr(node)
            if attr is not None and attr in guarded:
                lock = guarded[attr]
                if lock not in held and (node.lineno, attr) not in reported:
                    reported.add((node.lineno, attr))
                    yield Finding(
                        rule=self.rule_id, path=module.path,
                        line=node.lineno, col=node.col_offset,
                        message=f"self.{attr} is declared guarded-by "
                                f"self.{lock} but accessed without it; "
                                f"wrap in 'with self.{lock}:' or mark the "
                                f"method '# holds-lock: {lock}'",
                        symbol=f"{cls.name}.{method.name}")
            for child in ast.iter_child_nodes(node):
                yield from visit(child, held)

        for stmt in stmts:
            yield from visit(stmt, held)


# ---------------------------------------------------------------------------
# RL101: lock-order cycles (project-wide)
# ---------------------------------------------------------------------------

@register
class LockOrderCycles(ProjectRule):
    """RL101: the static lock-order graph must be acyclic."""

    rule_id = "RL101"
    summary = "nested lock acquisitions define a consistent global order"
    rationale = ("Two call paths acquiring the same pair of locks in "
                 "opposite orders deadlock under exactly the concurrent "
                 "load the serving layer will add.  Static extraction "
                 "sees same-class nesting (with one level of self-method "
                 "expansion); the runtime sanitizer observes the rest.")
    include_tests = False

    def check_project(self, modules: Sequence[ModuleInfo]
                      ) -> Iterator[Finding]:
        # lock id "Class.attr" -> acquired-while-held edges with sites.
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for module in modules:
            for cls in ast.walk(module.tree):
                if isinstance(cls, ast.ClassDef):
                    self._collect_class(module, cls, edges)
        yield from self._report_cycles(edges)

    def _collect_class(self, module: ModuleInfo, cls: ast.ClassDef,
                       edges: Dict[Tuple[str, str], Tuple[str, int]]) -> None:
        # First pass: locks each method acquires anywhere in its body
        # (for one level of same-class call expansion).
        acquires: Dict[str, Set[str]] = {}
        for method in _methods(cls):
            found: Set[str] = set()
            for node in ast.walk(method):
                found.update(_with_lock_attrs(node))
            acquires[method.name] = found

        def lock_id(attr: str) -> str:
            return f"{cls.name}.{attr}"

        def visit(node: ast.AST, held: List[str], line: int) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)) and held:
                return  # nested defs don't inherit the held stack
            acquired = _with_lock_attrs(node)
            if acquired:
                inner = list(held)
                for attr in acquired:
                    for prior in inner:
                        edge = (lock_id(prior), lock_id(attr))
                        if edge[0] != edge[1]:
                            edges.setdefault(
                                edge, (module.path, node.lineno))
                    inner.append(attr)
                assert isinstance(node, (ast.With, ast.AsyncWith))
                for stmt in node.body:
                    visit(stmt, inner, stmt.lineno)
                return
            if held and isinstance(node, ast.Call):
                # One level of expansion: self.m() acquiring lock B while
                # A is held adds A -> B.
                callee = _call_name(node.func)
                if (_receiver_tail(node.func) == "self"
                        and callee in acquires):
                    for attr in acquires[callee]:
                        for prior in held:
                            edge = (lock_id(prior), lock_id(attr))
                            if edge[0] != edge[1]:
                                edges.setdefault(
                                    edge, (module.path, node.lineno))
            for child in ast.iter_child_nodes(node):
                visit(child, held, getattr(child, "lineno", line))

        for method in _methods(cls):
            for stmt in method.body:
                visit(stmt, [], stmt.lineno)

    def _report_cycles(self, edges: Dict[Tuple[str, str], Tuple[str, int]]
                       ) -> Iterator[Finding]:
        graph: Dict[str, Set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())

        seen_cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            canonical = min(cycle)
            position = cycle.index(canonical)
            rotated = tuple(cycle[position:] + cycle[:position])
            if rotated in seen_cycles:
                continue
            seen_cycles.add(rotated)
            # Anchor the finding at the first recorded edge of the cycle.
            first_edge = (rotated[0], rotated[1 % len(rotated)])
            path, line = edges.get(first_edge, ("<project>", 1))
            order = " -> ".join(rotated + (rotated[0],))
            yield Finding(
                rule=self.rule_id, path=path, line=line, col=0,
                message=f"lock-order cycle (potential deadlock): {order}; "
                        f"acquire these locks in one global order",
                symbol=rotated[0])

    @staticmethod
    def _find_cycle(graph: Dict[str, Set[str]],
                    start: str) -> Optional[List[str]]:
        """A simple cycle reachable from ``start`` (DFS back-edge)."""
        stack: List[str] = []
        on_stack: Set[str] = set()
        visited: Set[str] = set()

        def dfs(node: str) -> Optional[List[str]]:
            visited.add(node)
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ in on_stack:
                    return stack[stack.index(succ):]
                if succ not in visited:
                    found = dfs(succ)
                    if found is not None:
                        return found
            stack.pop()
            on_stack.discard(node)
            return None

        return dfs(start)


# ---------------------------------------------------------------------------
# RL102: pins released on every path
# ---------------------------------------------------------------------------

@register
class PinReleaseAllPaths(Rule):
    """RL102: ``registry.pin()`` results are released on every path."""

    rule_id = "RL102"
    summary = "generation pins released on all paths, including exceptions"
    rationale = ("A leaked pin permanently blocks reclamation of "
                 "superseded generations — disk usage grows until the "
                 "weakref finalizer happens to run.  The dataflow engine "
                 "proves release on the exceptional paths a try-less "
                 "call chain silently skips.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for name, func, cfg in function_cfgs(module.tree):
            if name.split(".")[-1] in ("__enter__",):
                continue  # pin ownership passes to the paired __exit__
            yield from self._check_function(module, name, cfg)

    def _check_function(self, module: ModuleInfo, symbol: str,
                        cfg: CFG) -> Iterator[Finding]:
        # Acquisitions: simple-name assignment from a `.pin()` call.
        acquisitions: Dict[str, CFGNode] = {}
        for node in cfg.statements():
            stmt = node.stmt
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and _call_name(stmt.value.func) == "pin"
                    and isinstance(stmt.value.func, ast.Attribute)):
                acquisitions[stmt.targets[0].id] = node
        if not acquisitions:
            return

        def fact(name: str) -> str:
            return f"pin:{name}"

        def gen(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            for name, acq in acquisitions.items():
                if acq.index == node.index:
                    return (fact(name),)
            return None

        def kill(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            killed: List[str] = []
            for name in acquisitions:
                if (self._releases(stmt, name) or self._escapes(stmt, name)
                        or self._guarded_release(stmt, name)):
                    killed.append(fact(name))
            return tuple(killed) or None

        result = resource_flow(cfg, gen, kill, must=False)
        for name, acq in acquisitions.items():
            leak_normal = result.may_hold_after(cfg.exit, fact(name))
            leak_exc = result.may_hold_after(cfg.exc_exit, fact(name))
            if not leak_normal and not leak_exc:
                continue
            where = ("some path" if leak_normal
                     else "an exception path")
            yield self.finding(
                module, acq.stmt if acq.stmt is not None else ast.Pass(),
                f"pin {name!r} is not released on {where}; call "
                f"{name}.release() in a finally block or use "
                f"'with registry.pinned() as items:'",
                symbol=symbol)

    @staticmethod
    def _releases(stmt: ast.AST, name: str) -> bool:
        for call in _shallow_calls(stmt):
            func = call.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("release", "close")
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name):
                return True
        return False

    @staticmethod
    def _guarded_release(stmt: ast.AST, name: str) -> bool:
        """Path-sensitivity for the one guard shape that matters:
        ``if name is not None: name.release()`` (no ``else``).  On the
        false edge the name is provably ``None`` — no live pin — so the
        whole ``if`` kills the fact.  The test must be a bare ``name``
        or ``name is not None`` (neither can raise), and every path out
        of the body must release."""
        if not isinstance(stmt, ast.If) or stmt.orelse:
            return False
        test = stmt.test
        guards = isinstance(test, ast.Name) and test.id == name
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.left, ast.Name)
                and test.left.id == name
                and isinstance(test.ops[0], ast.IsNot)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            guards = True
        if not guards:
            return False
        return any(PinReleaseAllPaths._releases(child, name)
                   for child in stmt.body)

    @staticmethod
    def _escapes(stmt: ast.AST, name: str) -> bool:
        """Ownership transfer: returning the pin, passing it to a call,
        or storing it into an attribute/container makes someone else
        responsible for the release."""
        if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Name):
            return stmt.value.id == name
        for call in _shallow_calls(stmt):
            for arg in list(call.args) + [k.value for k in call.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if (isinstance(stmt.value, ast.Name)
                            and stmt.value.id == name):
                        return True
        return False


# ---------------------------------------------------------------------------
# RL103: lifecycle transitions
# ---------------------------------------------------------------------------

#: Mirror of repro.compaction.lifecycle._TRANSITIONS, by enum member
#: name.  Kept literal on purpose: lint rules are pure AST analyses and
#: import nothing from the checked code.
LEGAL_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "ACTIVE": ("COMPACTING", "SUPERSEDED"),
    "COMPACTING": ("ACTIVE", "SUPERSEDED"),
    "SUPERSEDED": ("REMOVED",),
    "REMOVED": (),
}


@register
class LifecycleTransitions(Rule):
    """RL103: generation state changes go through ``advance_state``."""

    rule_id = "RL103"
    summary = "generation lifecycle transitions only via advance_state"
    rationale = ("The ACTIVE->COMPACTING->SUPERSEDED->REMOVED machine is "
                 "how the multi-step background merge stays auditable; a "
                 "direct .state write skips the legality check and can "
                 "resurrect a reclaimed generation.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_assign(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_advance_call(module, node)

    def _check_assign(self, module: ModuleInfo, node: ast.AST
                      ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        state_targets = [t for t in targets
                         if isinstance(t, ast.Attribute)
                         and t.attr == "state"]
        if not state_targets or value is None:
            return
        if not self._mentions_generation_state(value):
            return
        if (isinstance(value, ast.Call)
                and _call_name(value.func) == "advance_state"):
            return
        for target in state_targets:
            yield self.finding(
                module, node,
                "direct lifecycle state assignment bypasses the legality "
                "check; use '.state = advance_state(current, target)'",
                symbol=_expr_tail(target))

    def _check_advance_call(self, module: ModuleInfo, call: ast.Call
                            ) -> Iterator[Finding]:
        if _call_name(call.func) != "advance_state" or len(call.args) != 2:
            return
        states = [self._state_literal(arg) for arg in call.args]
        if states[0] is None or states[1] is None:
            return  # dynamic operands: checked at runtime
        if states[0] not in LEGAL_TRANSITIONS:
            return
        if states[1] not in LEGAL_TRANSITIONS[states[0]]:
            yield self.finding(
                module, call,
                f"advance_state({states[0]}, {states[1]}) is outside the "
                f"lifecycle diagram and will raise "
                f"GenerationLifecycleError at runtime",
                symbol=f"{states[0]}->{states[1]}")

    @staticmethod
    def _state_literal(expr: ast.expr) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "GenerationState"):
            return expr.attr
        return None

    @staticmethod
    def _mentions_generation_state(expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id == "GenerationState":
                return True
        return False


# ---------------------------------------------------------------------------
# RL104: write -> fsync -> rename commit ordering
# ---------------------------------------------------------------------------

@register
class FsyncBeforeRename(Rule):
    """RL104: files written then atomically renamed are fsynced first."""

    rule_id = "RL104"
    summary = "commit sections follow write -> flush -> fsync -> os.replace"
    rationale = ("os.replace is atomic in the namespace but says nothing "
                 "about the data: renaming an unfsynced temp file can "
                 "commit a manifest whose bytes are still in the page "
                 "cache, exactly the torn state the WAL exists to "
                 "prevent.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for name, func, cfg in function_cfgs(module.tree):
            yield from self._check_function(module, name, cfg)

    def _check_function(self, module: ModuleInfo, symbol: str,
                        cfg: CFG) -> Iterator[Finding]:
        replace_nodes: List[CFGNode] = []
        writes = False
        fsyncs = False
        for node in cfg.statements():
            stmt = node.stmt
            if stmt is None:
                continue
            for call in _shallow_calls(stmt):
                kind = self._call_kind(call)
                if kind == "replace":
                    replace_nodes.append(node)
                elif kind == "write":
                    writes = True
                elif kind == "fsync":
                    fsyncs = True
        if not replace_nodes or not writes:
            # Renaming something this function did not write is another
            # function's commit problem (or plain file management).
            return

        def gen(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            for call in _shallow_calls(stmt):
                if self._call_kind(call) == "fsync":
                    return ("fsynced",)
            return None

        def kill(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            for call in _shallow_calls(stmt):
                if self._call_kind(call) == "write":
                    return ("fsynced",)
            return None

        result = resource_flow(cfg, gen, kill, must=True)
        for node in replace_nodes:
            if not result.holds_before(node.index, "fsynced"):
                hint = ("add os.fsync(handle.fileno()) after the final "
                        "write" if fsyncs else
                        "flush and os.fsync the handle before renaming")
                yield self.finding(
                    module, node.stmt if node.stmt is not None
                    else ast.Pass(),
                    f"os.replace commits data written in this function "
                    f"without an fsync on every path; {hint}",
                    symbol=symbol)

    @staticmethod
    def _call_kind(call: ast.Call) -> Optional[str]:
        name = _call_name(call.func)
        if name in ("replace", "rename"):
            if _receiver_tail(call.func) == "os":
                return "replace"
            return None
        if name == "fsync":
            return "fsync"
        if name in ("write", "dump", "writelines", "write_text",
                    "write_bytes"):
            return "write"
        return None


# ---------------------------------------------------------------------------
# RL105: publish only after the durable commit
# ---------------------------------------------------------------------------

@register
class PublishAfterCommit(Rule):
    """RL105: registry publishes happen only after the atomic rename."""

    rule_id = "RL105"
    summary = "generation-registry publishes follow the durable commit"
    rationale = ("A crash between an early registry.swap/append and the "
                 "manifest rename leaves readers serving state recovery "
                 "will not rebuild — the failpoint kill-matrix only "
                 "stays byte-identical because publish strictly follows "
                 "commit.")
    include_tests = False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for name, func, cfg in function_cfgs(module.tree):
            yield from self._check_function(module, name, cfg)

    def _check_function(self, module: ModuleInfo, symbol: str,
                        cfg: CFG) -> Iterator[Finding]:
        publishes: List[Tuple[CFGNode, ast.Call]] = []
        commits = False
        for node in cfg.statements():
            stmt = node.stmt
            if stmt is None:
                continue
            for call in _shallow_calls(stmt):
                if self._is_commit(call):
                    commits = True
                elif self._is_publish(call):
                    publishes.append((node, call))
        if not commits or not publishes:
            # Functions that only publish (pure in-memory mutation) or
            # only commit are not commit sections.
            return

        def gen(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            for call in _shallow_calls(stmt):
                if self._is_commit(call):
                    return ("committed",)
            return None

        def kill(node: CFGNode) -> Optional[Tuple[str, ...]]:
            return None

        result = resource_flow(cfg, gen, kill, must=True)
        for node, call in publishes:
            if not result.holds_before(node.index, "committed"):
                yield self.finding(
                    module, call,
                    "registry publish before the durable commit: a crash "
                    "here exposes state recovery will not rebuild; move "
                    "this after the atomic rename",
                    symbol=symbol)

    @staticmethod
    def _is_commit(call: ast.Call) -> bool:
        name = _call_name(call.func)
        if name in ("replace", "rename") and _receiver_tail(call.func) == "os":
            return True
        return "commit" in name and "manifest" in name

    @staticmethod
    def _is_publish(call: ast.Call) -> bool:
        if not isinstance(call.func, ast.Attribute):
            return False
        if call.func.attr not in ("swap", "append"):
            return False
        tail = _expr_tail(call.func.value).lower()
        return "registry" in tail or "generations" in tail


# ---------------------------------------------------------------------------
# RL106: raw acquire/release balance
# ---------------------------------------------------------------------------

@register
class AcquireReleaseBalance(Rule):
    """RL106: a bare ``.acquire()`` is released on every path."""

    rule_id = "RL106"
    summary = "raw lock.acquire() paired with release() on all paths"
    rationale = ("'with lock:' is exception-safe for free; a raw acquire "
                 "needs the dataflow proof that every path — including "
                 "the one where the work raises — reaches release().")
    include_tests = False

    #: Classes that *implement* lock wrappers legitimately call the
    #: primitives; the sanitizer is the obvious resident.
    _EXEMPT_CLASS_MARKERS = ("Lock", "Sanitizer")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        exempt_spans = self._exempt_spans(module.tree)
        for name, func, cfg in function_cfgs(module.tree):
            line = getattr(func, "lineno", 0)
            if any(start <= line <= end for start, end in exempt_spans):
                continue
            yield from self._check_function(module, name, cfg)

    def _exempt_spans(self, tree: ast.Module) -> List[Tuple[int, int]]:
        spans = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                    marker in node.name
                    for marker in self._EXEMPT_CLASS_MARKERS):
                spans.append((node.lineno,
                              getattr(node, "end_lineno", node.lineno)))
        return spans

    def _check_function(self, module: ModuleInfo, symbol: str,
                        cfg: CFG) -> Iterator[Finding]:
        receivers: Dict[str, CFGNode] = {}
        for node in cfg.statements():
            stmt = node.stmt
            if stmt is None:
                continue
            for call in _shallow_calls(stmt):
                receiver = self._lock_receiver(call, "acquire")
                if receiver is not None and receiver not in receivers:
                    receivers[receiver] = node
        if not receivers:
            return

        def fact(receiver: str) -> str:
            return f"lock:{receiver}"

        def gen(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            facts = []
            for call in _shallow_calls(stmt):
                receiver = self._lock_receiver(call, "acquire")
                if receiver is not None:
                    facts.append(fact(receiver))
            return tuple(facts) or None

        def kill(node: CFGNode) -> Optional[Tuple[str, ...]]:
            stmt = node.stmt
            if stmt is None:
                return None
            facts = []
            for call in _shallow_calls(stmt):
                receiver = self._lock_receiver(call, "release")
                if receiver is not None:
                    facts.append(fact(receiver))
            return tuple(facts) or None

        result = resource_flow(cfg, gen, kill, must=False)
        for receiver, node in receivers.items():
            leak_normal = result.may_hold_after(cfg.exit, fact(receiver))
            leak_exc = result.may_hold_after(cfg.exc_exit, fact(receiver))
            if not leak_normal and not leak_exc:
                continue
            where = "some path" if leak_normal else "an exception path"
            yield self.finding(
                module, node.stmt if node.stmt is not None else ast.Pass(),
                f"{receiver}.acquire() is not released on {where}; "
                f"prefer 'with {receiver}:' (exception-safe) or release "
                f"in a finally block",
                symbol=symbol)

    @staticmethod
    def _lock_receiver(call: ast.Call, method: str) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr != method:
            return None
        tail = _expr_tail(func.value)
        leaf = tail.rsplit(".", 1)[-1] if tail else ""
        if not _is_lock_name(leaf):
            return None
        prefix = "self." if (isinstance(func.value, ast.Attribute)
                             and isinstance(func.value.value, ast.Name)
                             and func.value.value.id == "self") else ""
        return f"{prefix}{tail}"
