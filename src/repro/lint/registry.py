"""Rule protocol and registry.

A rule is a class with a stable ``rule_id``, a one-line ``summary``, a
``rationale`` (ideally naming the historical bug it guards against) and a
``check`` generator over a parsed :class:`ModuleInfo`.  Registration is
declarative::

    @register
    class NoMutableDataclassDefault(Rule):
        rule_id = "RL001"
        ...

The driver instantiates every registered rule per run and every rule per
file, so rules may keep per-file state in ``check`` locals only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Type

from .findings import Finding


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file handed to every applicable rule."""

    path: str          # normalised, '/'-separated, relative when possible
    source: str
    tree: ast.Module

    @property
    def is_test(self) -> bool:
        parts = self.path.split("/")
        return ("tests" in parts
                or parts[-1].startswith("test_")
                or parts[-1].startswith("bench_"))


class Rule:
    """Base class for project lint rules."""

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""
    #: Rules about internal discipline (lock usage, pin balancing) skip
    #: test files, which legitimately poke at internals.
    include_tests: bool = True
    #: When non-empty, the rule only runs on files whose normalised path
    #: contains one of these substrings (e.g. scoring-only rules).
    path_patterns: Tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if not self.include_tests and module.is_test:
            return False
        if self.path_patterns:
            return any(pattern in module.path
                       for pattern in self.path_patterns)
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                symbol: str = "") -> Finding:
        return Finding(rule=self.rule_id, path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message, symbol=symbol)


class ProjectRule(Rule):
    """A rule that needs the whole file set at once.

    Per-file rules see one :class:`ModuleInfo`; a project rule's unit of
    analysis is the *collection* — the lock-order graph (RL101) is
    meaningless per file because an inversion usually spans two.  The
    driver gathers every applicable module and calls
    :meth:`check_project` once; findings still carry per-file paths and
    lines, so suppressions and the baseline work unchanged.
    """

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        # Single-file entry point (lint_source / fixtures) delegates to
        # the project pass with a one-module collection.
        return self.check_project([module])

    def check_project(self, modules: Sequence[ModuleInfo]
                      ) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]()


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)
