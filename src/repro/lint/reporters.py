"""Text, JSON and SARIF renderers for lint reports."""

from __future__ import annotations

import json
from typing import Dict, List

from .driver import LintReport
from .registry import _REGISTRY


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-oriented summary, one finding per line."""
    lines: List[str] = []
    for finding in report.findings:
        where = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(f"{finding.location}: {finding.rule}{where} "
                     f"{finding.message}")
    if verbose:
        for finding in report.baselined:
            lines.append(f"{finding.location}: {finding.rule} baselined: "
                         f"{finding.message}")
    for key in report.stale_baseline:
        lines.append(f"stale baseline entry (no longer fires): {key}")
    count = len(report.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"{report.files_checked} files checked, {count} {noun}"
                 + (f", {len(report.baselined)} baselined"
                    if report.baselined else ""))
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 — the format GitHub code scanning ingests, so CI can
    annotate PR diffs with lint findings."""
    rules_seen: Dict[str, dict] = {}
    results: List[dict] = []
    for finding in report.findings:
        rule_class = _REGISTRY.get(finding.rule)
        if finding.rule not in rules_seen:
            descriptor = {
                "id": finding.rule,
                "shortDescription": {
                    "text": rule_class.summary if rule_class
                    else "meta finding"},
            }
            if rule_class is not None and rule_class.rationale:
                descriptor["fullDescription"] = {
                    "text": rule_class.rationale}
            rules_seen[finding.rule] = descriptor
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col + 1, 1),
                    },
                },
            }],
        }
        if finding.symbol:
            result["partialFingerprints"] = {
                "symbol": finding.symbol}
        results.append(result)
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "rules": [rules_seen[rule_id]
                              for rule_id in sorted(rules_seen)],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2)
