"""Text and JSON renderers for lint reports and deep-check reports."""

from __future__ import annotations

import json
from typing import List

from .driver import LintReport


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-oriented summary, one finding per line."""
    lines: List[str] = []
    for finding in report.findings:
        where = f" [{finding.symbol}]" if finding.symbol else ""
        lines.append(f"{finding.location}: {finding.rule}{where} "
                     f"{finding.message}")
    if verbose:
        for finding in report.baselined:
            lines.append(f"{finding.location}: {finding.rule} baselined: "
                         f"{finding.message}")
    for key in report.stale_baseline:
        lines.append(f"stale baseline entry (no longer fires): {key}")
    count = len(report.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"{report.files_checked} files checked, {count} {noun}"
                 + (f", {len(report.baselined)} baselined"
                    if report.baselined else ""))
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2)
