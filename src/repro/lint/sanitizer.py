"""Runtime lock sanitizer: the dynamic half of the RL100 family.

The static rules see lexical structure; they cannot see a
``CompactionScheduler`` step re-entering ``IngestService`` state on one
thread while ``repro top`` reads it on another.  This module wraps real
locks so that actual executions *record* what the static pass can only
approximate:

* :class:`SanitizedLock` — a drop-in wrapper for ``threading.Lock`` /
  ``RLock`` keeping a per-thread held stack and recording every
  "acquired B while holding A" edge.  An inversion is a cycle in that
  observed graph, detectable even when the two orders never ran
  concurrently (which is exactly when testing would miss the deadlock).
* :func:`guard_instance` — retypes one object so reads/writes of
  declared guarded fields verify the guarding lock is held by the
  current thread (the runtime analogue of ``# guarded-by``).
* :func:`run_sanitizer_smoke` — a small threaded workload over the real
  ``MetricsRegistry`` / ``RuntimeRegistry`` / ``GenerationRegistry``
  with sanitized locks, shared by ``repro check --concurrency`` and the
  test suite.

Overhead discipline: the fast path (acquiring with an empty held stack)
is one thread-local fetch and a list append, so sanitizing the hammer
tests stays within the 1.10x budget asserted by
``tests/test_lock_sanitizer.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Set, Tuple, Type)

__all__ = [
    "LockSanitizer",
    "SanitizedLock",
    "SanitizerReport",
    "guard_instance",
    "instrument_lock_attr",
    "run_sanitizer_smoke",
]


@dataclass
class SanitizerReport:
    """What one sanitized run observed."""

    acquisitions: int = 0
    #: Observed (held, acquired) pairs -> occurrence count.
    edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Cycles in the observed order graph (each a tuple of lock names).
    inversions: List[Tuple[str, ...]] = field(default_factory=list)
    #: Guarded-field accesses without the declared lock held.
    unguarded: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.inversions and not self.unguarded

    def describe(self) -> List[str]:
        lines = []
        for cycle in self.inversions:
            order = " -> ".join(cycle + (cycle[0],))
            lines.append(f"lock-order inversion (potential deadlock): "
                         f"{order}")
        lines.extend(self.unguarded)
        return lines

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "acquisitions": self.acquisitions,
            "edges": {f"{a} -> {b}": count
                      for (a, b), count in sorted(self.edges.items())},
            "inversions": [list(cycle) for cycle in self.inversions],
            "unguarded": list(self.unguarded),
        }


class _ThreadState:
    """Per-thread sanitizer state: the held stack plus an acquisition
    counter, aggregated lock-free on the fast path and summed only at
    report time."""

    __slots__ = ("stack", "acquisitions")

    def __init__(self) -> None:
        self.stack: List[str] = []
        self.acquisitions = 0


class LockSanitizer:
    """Collector shared by every sanitized lock and guarded instance."""

    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self._held = threading.local()
        self._thread_states: List[_ThreadState] = []
        self._edges: Dict[Tuple[str, str], int] = {}
        self._unguarded: List[str] = []
        self._unguarded_seen: Set[str] = set()

    # -- per-thread held stack ----------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._held, "state", None)
        if state is None:
            state = _ThreadState()
            self._held.state = state
            with self._state_lock:
                self._thread_states.append(state)
        return state

    def held_locks(self) -> Tuple[str, ...]:
        return tuple(self._state().stack)

    def is_held(self, name: str) -> bool:
        return name in self._state().stack

    # -- recording ----------------------------------------------------------

    def on_acquire(self, name: str) -> None:
        # Fast path (empty held stack): one thread-local fetch, an int
        # bump, and a list append — no shared lock, so sanitizing the
        # hammer tests stays inside the overhead budget.
        state = self._state()
        stack = state.stack
        state.acquisitions += 1
        if stack and name not in stack:
            # Re-entrant acquires (name already on the stack) are RLock
            # recursion, not ordering; everything else held right now
            # precedes `name` in the observed order.
            with self._state_lock:
                for held in stack:
                    key = (held, name)
                    self._edges[key] = self._edges.get(key, 0) + 1
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._state().stack
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]
                return

    def record_unguarded(self, owner: str, field_name: str,
                         lock_name: str, operation: str) -> None:
        message = (f"unguarded access: {owner}.{field_name} {operation} "
                   f"without {lock_name} held")
        with self._state_lock:
            if message not in self._unguarded_seen:
                self._unguarded_seen.add(message)
                self._unguarded.append(message)

    # -- reporting ----------------------------------------------------------

    def report(self) -> SanitizerReport:
        with self._state_lock:
            edges = dict(self._edges)
            acquisitions = sum(state.acquisitions
                               for state in self._thread_states)
            unguarded = list(self._unguarded)
        return SanitizerReport(
            acquisitions=acquisitions,
            edges=edges,
            inversions=_find_cycles(edges),
            unguarded=unguarded,
        )


def _find_cycles(edges: Dict[Tuple[str, str], int]
                 ) -> List[Tuple[str, ...]]:
    graph: Dict[str, Set[str]] = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())

    cycles: List[Tuple[str, ...]] = []
    seen: Set[Tuple[str, ...]] = set()

    def dfs(node: str, stack: List[str], on_stack: Set[str],
            visited: Set[str]) -> None:
        visited.add(node)
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ in on_stack:
                cycle = stack[stack.index(succ):]
                anchor = min(cycle)
                position = cycle.index(anchor)
                rotated = tuple(cycle[position:] + cycle[:position])
                if rotated not in seen:
                    seen.add(rotated)
                    cycles.append(rotated)
            elif succ not in visited:
                dfs(succ, stack, on_stack, visited)
        stack.pop()
        on_stack.discard(node)

    visited: Set[str] = set()
    for start in sorted(graph):
        if start not in visited:
            dfs(start, [], set(), visited)
    return cycles


class SanitizedLock:
    """Drop-in wrapper for ``threading.Lock`` / ``RLock`` that reports
    to a :class:`LockSanitizer`.  Supports the full context-manager and
    acquire/release protocols, so it can replace a lock attribute on a
    live object."""

    __slots__ = ("_inner", "name", "_sanitizer")

    def __init__(self, inner: Any, name: str,
                 sanitizer: LockSanitizer) -> None:
        self._inner = inner
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer.on_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer.on_release(self.name)

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if inner_locked is not None else False

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLock({self.name!r})"


def instrument_lock_attr(obj: Any, attr: str, sanitizer: LockSanitizer,
                         name: Optional[str] = None) -> SanitizedLock:
    """Replace ``obj.<attr>`` with a sanitized wrapper (idempotent)."""
    current = getattr(obj, attr)
    if isinstance(current, SanitizedLock):
        return current
    lock_name = name or f"{type(obj).__name__}.{attr}"
    wrapped = SanitizedLock(current, lock_name, sanitizer)
    object.__setattr__(obj, attr, wrapped)
    return wrapped


_GUARD_CACHE: Dict[Tuple[Type[Any], Tuple[Tuple[str, str], ...]],
                   Type[Any]] = {}


def guard_instance(obj: Any, sanitizer: LockSanitizer,
                   guards: Mapping[str, str]) -> Any:
    """Retype ``obj`` so accesses to the fields in ``guards`` (field ->
    lock attribute) verify the lock is held by the current thread.

    The guarding lock attribute must already be a
    :class:`SanitizedLock` (see :func:`instrument_lock_attr`) — held
    state lives in the sanitizer, keyed by the wrapper's name.  Returns
    ``obj``, now an instance of a dynamic subclass with ``__slots__ =
    ()`` so slotted classes keep a compatible layout.
    """
    cls = type(obj)
    guard_items = tuple(sorted(guards.items()))
    cache_key = (cls, guard_items)
    guarded_cls = _GUARD_CACHE.get(cache_key)
    if guarded_cls is None:
        guard_map = dict(guard_items)
        owner = cls.__name__

        def _verify(instance: Any, field_name: str, operation: str) -> None:
            lock_attr = guard_map[field_name]
            try:
                lock = object.__getattribute__(instance, lock_attr)
            except AttributeError:
                return  # construction order: lock not bound yet
            if isinstance(lock, SanitizedLock) and not sanitizer.is_held(
                    lock.name):
                sanitizer.record_unguarded(owner, field_name, lock.name,
                                           operation)

        def __getattribute__(self: Any, name: str) -> Any:
            if name in guard_map:
                _verify(self, name, "read")
            return object.__getattribute__(self, name)

        def __setattr__(self: Any, name: str, value: Any) -> None:
            if name in guard_map:
                _verify(self, name, "write")
            object.__setattr__(self, name, value)

        guarded_cls = type(
            f"Guarded{owner}", (cls,),
            {"__slots__": (), "__getattribute__": __getattribute__,
             "__setattr__": __setattr__})
        _GUARD_CACHE[cache_key] = guarded_cls
    obj.__class__ = guarded_cls
    return obj


# ---------------------------------------------------------------------------
# Shared smoke workload (CLI + tests)
# ---------------------------------------------------------------------------

def run_sanitizer_smoke(threads: int = 4, iterations: int = 300
                        ) -> SanitizerReport:
    """Exercise the real concurrency-bearing registries under sanitized
    locks: metrics/runtime instrument minting races plus generation
    pin/swap/reclaim churn.  Returns the observed-order report; a clean
    tree yields ``report.ok``."""
    from repro.compaction.lifecycle import GenerationRegistry
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.runtime import RuntimeRegistry

    sanitizer = LockSanitizer()
    metrics = MetricsRegistry()
    runtime = RuntimeRegistry()
    generations = GenerationRegistry(items=("g0",))
    instrument_lock_attr(metrics, "_lock", sanitizer)
    instrument_lock_attr(runtime, "_lock", sanitizer)
    instrument_lock_attr(generations, "_lock", sanitizer)

    barrier = threading.Barrier(threads)
    errors: List[BaseException] = []

    def worker(worker_id: int) -> None:
        try:
            barrier.wait()
            for step in range(iterations):
                metrics.counter(f"smoke.c{step % 7}").inc()
                runtime.counter(f"smoke.r{step % 5}").inc()
                with generations.pinned() as items:
                    _ = len(items)
                if step % 50 == worker_id % 50:
                    generations.append(f"g{worker_id}.{step}")
                if step % 97 == 0:
                    metrics.histogram("smoke.h").observe(float(step))
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]
    generations.drain()
    return sanitizer.report()
