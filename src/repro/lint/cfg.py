"""Intraprocedural control-flow graphs over Python AST.

The concurrency rules (RL100-RL1xx) need more than a tree walk: "this
pin is released on **all** paths, including the one where the merge
raises halfway" is a property of the control-flow graph, not of any
single statement.  This module builds that graph for one function (or
module) body.

Design notes
------------
* **Nodes are statements**, not basic blocks.  The bodies this linter
  sees are a few dozen statements; collapsing straight-line runs into
  blocks would save nothing and cost a mapping layer when findings are
  reported against source lines.
* **Exceptional edges are conservative.**  Any statement that contains
  a call, a subscript, an attribute access or a raise *may* raise, and
  gets an edge to the innermost enclosing handler chain (except blocks,
  then the ``finally``), or to the synthetic :attr:`CFG.exc_exit` when
  nothing encloses it.  This over-approximates real exception flow —
  exactly what an all-paths *must* analysis needs to stay sound.
* **``finally`` is approximated by edge routing**, not by duplicating
  the block per entry reason: flow that leaves a ``try`` abnormally is
  routed through the ``finally`` statements and then on to the handler
  target / exit.  Normal completion is routed through the same
  statements to the successor.  The approximation merges the "why did
  we enter finally" distinction, which is sound for the union/
  intersection facts the rules compute.
* ``break`` / ``continue`` / ``return`` / ``raise`` edges honour loop
  and try nesting (including routing through intervening ``finally``
  blocks, which is where hand-written release logic usually hides).

The solver that runs over these graphs lives in :mod:`repro.lint.flow`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Statement types that can never raise by themselves (their nested
#: expressions are what might).  Used only for documentation; edge
#: construction treats any expression-bearing statement as may-raise.
_LOOP_TYPES = (ast.For, ast.AsyncFor, ast.While)


class CFGNode:
    """One statement (or synthetic entry/exit) in the graph."""

    __slots__ = ("index", "stmt", "kind", "succs", "preds")

    def __init__(self, index: int, stmt: Optional[ast.AST],
                 kind: str = "stmt") -> None:
        self.index = index
        self.stmt = stmt
        self.kind = kind                  # stmt | entry | exit | exc_exit
        self.succs: Set[int] = set()
        self.preds: Set[int] = set()

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:
        label = self.kind if self.stmt is None else (
            type(self.stmt).__name__ + f"@{self.line}")
        return f"CFGNode({self.index}, {label})"


class _Frame:
    """Abnormal-edge routing context while building: where ``break`` /
    ``continue`` / ``return`` / ``raise`` go from the current position,
    and which ``finally`` bodies they must traverse on the way."""

    __slots__ = ("kind", "target", "finally_body", "breaks")

    def __init__(self, kind: str, target: Optional[int] = None,
                 finally_body: Optional[List[ast.stmt]] = None) -> None:
        self.kind = kind              # loop | try | finally
        self.target = target
        self.finally_body = finally_body
        #: For loop frames: node indices that dangle out of ``break``.
        self.breaks: List[int] = []


class CFG:
    """The control-flow graph of one function or module body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new_node(None, "entry").index
        self.exit = self._new_node(None, "exit").index
        #: Unhandled-exception exit: distinct from the normal exit so a
        #: rule can require a fact on *both* or on the normal one only.
        self.exc_exit = self._new_node(None, "exc_exit").index
        self.node_of_stmt: Dict[int, int] = {}
        #: Edges added for exception flow.  An exceptional edge carries
        #: the *pre*-statement facts in the solver (the statement's
        #: effect may not have happened when it raised); normal edges
        #: carry the post-statement facts.
        self.exc_edges: Set[Tuple[int, int]] = set()

    # -- construction --------------------------------------------------------

    def _new_node(self, stmt: Optional[ast.AST], kind: str = "stmt"
                  ) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    def add_edge(self, src: int, dst: int, *, exc: bool = False) -> None:
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)
        if exc:
            self.exc_edges.add((src, dst))

    # -- queries -------------------------------------------------------------

    def statements(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.kind == "stmt":
                yield node

    def node_for(self, stmt: ast.AST) -> Optional[CFGNode]:
        index = self.node_of_stmt.get(id(stmt))
        return self.nodes[index] if index is not None else None

    def reachable_from(self, start: int) -> Set[int]:
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def to_dot(self) -> str:
        """Graphviz rendering — debugging aid, exercised by tests."""
        lines = ["digraph cfg {"]
        for node in self.nodes:
            label = node.kind if node.stmt is None else (
                f"{type(node.stmt).__name__} L{node.line}")
            lines.append(f'  n{node.index} [label="{label}"];')
        for node in self.nodes:
            for succ in sorted(node.succs):
                lines.append(f"  n{node.index} -> n{succ};")
        lines.append("}")
        return "\n".join(lines)


def _may_raise(stmt: ast.stmt) -> bool:
    """Conservative: a statement whose *own* evaluation involves a call,
    attribute access, subscript, binary operation or raise may transfer
    to an exception target.  Only the statement's header expressions are
    examined — nested statements of a compound body have their own CFG
    nodes and edges, so ``if x is None:`` does not inherit the may-raise
    of calls inside its branches."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for child in ast.iter_child_nodes(stmt):
        exprs: List[ast.expr] = []
        if isinstance(child, ast.expr):
            exprs.append(child)
        elif isinstance(child, ast.withitem):
            exprs.append(child.context_expr)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, (ast.Call, ast.Attribute,
                                     ast.Subscript, ast.BinOp)):
                    return True
    return False


class _Builder:
    """Recursive-descent CFG construction with a routing-frame stack."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.frames: List[_Frame] = []

    # The exception target of the current position: the entry of the
    # innermost except/finally routing, else the graph's exc exit.

    def _finally_chain(self, upto: Optional[int] = None) -> List[List[ast.stmt]]:
        """Finally bodies crossed when jumping out to frame index
        ``upto`` (exclusive from the top of the stack)."""
        chain: List[List[ast.stmt]] = []
        stop = 0 if upto is None else upto
        for frame in reversed(self.frames[stop:]):
            if frame.kind == "finally" and frame.finally_body:
                chain.append(frame.finally_body)
        return chain

    def _route_through_finally(self, sources: Sequence[int],
                               chain: List[List[ast.stmt]],
                               target: int) -> None:
        """Wire ``sources -> finally bodies... -> target``.  Each
        distinct (chain, target) routing lays down a fresh copy of the
        finally statements' nodes?  No — finally statements get ONE node
        each (findings must map 1:1 to source lines); routing reuses
        them, which merges paths but preserves soundness for must/may
        facts."""
        current = list(sources)
        for body in chain:
            current = self._lay_body(body, current)
        for src in current:
            self.cfg.add_edge(src, target)

    def _exception_target(self) -> Tuple[Optional[_Frame], int]:
        """The innermost frame that intercepts an exception, plus its
        index in the frame stack (or the graph exc exit)."""
        for position in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[position]
            if frame.kind in ("try", "finally") and frame.target is not None:
                return frame, position
        return None, -1

    def _add_exception_edge(self, node_index: int) -> None:
        frame, _position = self._exception_target()
        if frame is None:
            self.cfg.add_edge(node_index, self.cfg.exc_exit, exc=True)
        else:
            assert frame.target is not None
            self.cfg.add_edge(node_index, frame.target, exc=True)

    # -- statement layout ----------------------------------------------------

    def _lay_stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        """Lay out one statement; returns the dangling exits that fall
        through to the next statement."""
        node = self.cfg._new_node(stmt)
        self.cfg.node_of_stmt[id(stmt)] = node.index
        for pred in preds:
            self.cfg.add_edge(pred, node.index)

        if isinstance(stmt, (ast.If,)):
            then_exits = self._lay_body(stmt.body, [node.index])
            else_exits = (self._lay_body(stmt.orelse, [node.index])
                          if stmt.orelse else [node.index])
            if _may_raise(stmt):
                self._add_exception_edge(node.index)
            return then_exits + else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            after: List[int] = [node.index]  # loop may run zero times
            self.frames.append(_Frame("loop", target=node.index))
            breaks = self.frames[-1].breaks
            body_exits = self._lay_body(stmt.body, [node.index])
            for exit_index in body_exits:
                self.cfg.add_edge(exit_index, node.index)  # back edge
            self.frames.pop()
            if stmt.orelse:
                after = self._lay_body(stmt.orelse, after)
            if _may_raise(stmt):
                self._add_exception_edge(node.index)
            return after + breaks

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if _may_raise(stmt):
                self._add_exception_edge(node.index)
            return self._lay_body(stmt.body, [node.index])

        if isinstance(stmt, ast.Try):
            return self._lay_try(stmt, node.index)

        if isinstance(stmt, (ast.Return,)):
            chain = self._finally_chain()
            self._route_through_finally([node.index], chain, self.cfg.exit)
            if _may_raise(stmt):
                self._add_exception_edge(node.index)
            return []

        if isinstance(stmt, ast.Raise):
            frame, position = self._exception_target()
            if frame is None:
                chain = self._finally_chain()
                self._route_through_finally([node.index], chain,
                                            self.cfg.exc_exit)
            else:
                assert frame.target is not None
                self.cfg.add_edge(node.index, frame.target, exc=True)
            return []

        if isinstance(stmt, (ast.Break, ast.Continue)):
            for position in range(len(self.frames) - 1, -1, -1):
                frame = self.frames[position]
                if frame.kind == "loop":
                    chain = self._finally_chain(upto=position + 1)
                    if isinstance(stmt, ast.Continue):
                        assert frame.target is not None
                        self._route_through_finally([node.index], chain,
                                                    frame.target)
                    else:
                        if chain:
                            # Route through the finallies, then dangle.
                            current = [node.index]
                            for body in chain:
                                current = self._lay_body(body, current)
                            frame.breaks.extend(current)
                        else:
                            frame.breaks.append(node.index)
                    return []
            # break/continue outside a loop: syntactically invalid, but
            # the linter must not crash on broken input.
            return [node.index]

        # Plain statement (assign, expr, import, def, class, pass, ...).
        if _may_raise(stmt):
            self._add_exception_edge(node.index)
        return [node.index]

    def _lay_try(self, stmt: ast.Try, node_index: int) -> List[int]:
        final_body = stmt.finalbody or None

        # Handler entry points are laid AFTER the body, but body
        # statements need the target index first: use a synthetic
        # "dispatch" node exceptions branch to.
        dispatch = self.cfg._new_node(None, "dispatch")

        if final_body is not None:
            self.frames.append(_Frame("finally", target=dispatch.index,
                                      finally_body=final_body))
        self.frames.append(_Frame("try", target=dispatch.index))

        body_exits = self._lay_body(stmt.body, [node_index])

        self.frames.pop()  # the try frame: handlers run outside it

        handler_exits: List[int] = []
        for handler in stmt.handlers:
            handler_node = self.cfg._new_node(handler)
            self.cfg.node_of_stmt[id(handler)] = handler_node.index
            self.cfg.add_edge(dispatch.index, handler_node.index)
            handler_exits.extend(
                self._lay_body(handler.body, [handler_node.index]))

        if stmt.orelse:
            body_exits = self._lay_body(stmt.orelse, body_exits)

        if final_body is not None:
            self.frames.pop()  # the finally frame
            normal_sources = body_exits + handler_exits
            final_exits = self._lay_body(final_body, normal_sources
                                         or [node_index])
            # Abnormal flow: an exception nothing here caught (bare
            # dispatch with no matching handler, or a raise inside a
            # handler body) still traverses the finally statements and
            # then continues to the enclosing exception target.  The
            # finally nodes are shared between normal and abnormal
            # routes — sound for union/intersection facts, and keeps
            # one node per source line.
            first_final = self.cfg.node_for(final_body[0])
            if first_final is not None:
                self.cfg.add_edge(dispatch.index, first_final.index)
            frame, _pos = self._exception_target()
            exc_target = (frame.target if frame is not None
                          and frame.target is not None
                          else self.cfg.exc_exit)
            for src in final_exits:
                self.cfg.add_edge(src, exc_target)
            return final_exits
        # No finally: unmatched exceptions go from dispatch outward —
        # unless a handler is a catch-all (bare ``except:`` or
        # ``except BaseException:``), in which case nothing escapes.
        if not any(h.type is None
                   or (isinstance(h.type, ast.Name)
                       and h.type.id == "BaseException")
                   for h in stmt.handlers):
            frame, _pos = self._exception_target()
            exc_target = (frame.target if frame is not None
                          and frame.target is not None
                          else self.cfg.exc_exit)
            self.cfg.add_edge(dispatch.index, exc_target)
        return body_exits + handler_exits

    def _lay_body(self, body: Sequence[ast.stmt],
                  preds: List[int]) -> List[int]:
        current = list(preds)
        for stmt in body:
            if not current:
                # Unreachable code after return/raise: still lay the
                # nodes (rules may want them) but with no in-edges.
                current = []
            current = self._lay_stmt(stmt, current)
        return current


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """The CFG of one function (or module) body."""
    cfg = CFG()
    builder = _Builder(cfg)
    exits = builder._lay_body(list(body), [cfg.entry])
    for exit_index in exits:
        cfg.add_edge(exit_index, cfg.exit)
    if not list(body):
        cfg.add_edge(cfg.entry, cfg.exit)
    return cfg


def function_cfgs(tree: ast.Module) -> Iterator[Tuple[str, ast.AST, CFG]]:
    """``(qualified_name, func_node, cfg)`` for every function in the
    module, without mixing nested scopes into the parent graph."""

    def visit(node: ast.AST, prefix: str) -> Iterator[
            Tuple[str, ast.AST, CFG]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child, build_cfg(child.body)
                yield from visit(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")
