"""The ``repro check --deep`` runner.

Builds (or accepts) a full TkLUS stack — metadata database, B+-trees,
heap pages, hybrid index over the simulated DFS — and runs every deep
invariant validator against it, timing each one.  This is the CI smoke
proof that a freshly built index satisfies every structural contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import Post
from ..geo.quadtree import QuadTree
from .invariants import (
    InvariantViolation,
    validate_block_headers,
    validate_bptree,
    validate_compaction,
    validate_cover_soundness,
    validate_forward_inverted,
    validate_generation_manifest,
    validate_heap_pages,
    validate_memtable_replay,
    validate_quadtree,
    validate_wal_segments,
)

Coordinate = Tuple[float, float]

#: Radii (km) exercised by the cover-soundness check; spans the paper's
#: experimental range from neighbourhood to metro scale.
DEFAULT_RADII_KM = (5.0, 15.0, 30.0)


@dataclass
class CheckResult:
    """Outcome and wall-clock of one named validator run."""

    name: str
    violations: List[InvariantViolation]
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class DeepCheckReport:
    """All validator outcomes for one built stack."""

    checks: List[CheckResult] = field(default_factory=list)
    posts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> List[InvariantViolation]:
        return [v for check in self.checks for v in check.violations]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "posts": self.posts,
            "seconds": round(self.seconds, 3),
            "checks": [
                {
                    "name": check.name,
                    "ok": check.ok,
                    "seconds": round(check.seconds, 3),
                    "violations": [v.to_dict() for v in check.violations],
                }
                for check in self.checks
            ],
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for check in self.checks:
            status = "ok" if check.ok else f"{len(check.violations)} violations"
            lines.append(f"  {check.name:<24} {status} "
                         f"({check.seconds * 1000:.0f} ms)")
            for violation in check.violations:
                lines.append(f"    {violation}")
        verdict = "all invariants hold" if self.ok else "INVARIANTS VIOLATED"
        lines.append(f"deep check over {self.posts} posts: {verdict} "
                     f"({self.seconds:.2f}s)")
        return "\n".join(lines)


def _sample_queries(posts: Sequence[Post],
                    radii_km: Sequence[float],
                    max_centers: int = 4) -> List[Tuple[Coordinate, float]]:
    """Query circles centred on a deterministic spread of post locations."""
    if not posts:
        return []
    step = max(1, len(posts) // max_centers)
    centers = [posts[i].location for i in range(0, len(posts), step)]
    centers = centers[:max_centers]
    return [(center, radius) for center in centers for radius in radii_km]


def run_deep_checks(posts: Optional[Sequence[Post]] = None, *,
                    users: int = 150, roots: int = 700, seed: int = 42,
                    radii_km: Sequence[float] = DEFAULT_RADII_KM,
                    engine: Optional[object] = None) -> DeepCheckReport:
    """Build a synthetic stack (unless ``posts``/``engine`` are given) and
    run every deep validator against it.

    The defaults build in a couple of seconds and push every B+-tree past
    a single node, so fill-factor and leaf-chain invariants are actually
    exercised rather than vacuously true.
    """
    from ..query.engine import TkLUSEngine  # deferred: heavy import chain

    report = DeepCheckReport()
    started = time.perf_counter()

    if posts is None:
        from ..data.generator import generate_corpus
        corpus = generate_corpus(num_users=users, num_root_tweets=roots,
                                 seed=seed)
        posts = corpus.posts
    posts = list(posts)
    report.posts = len(posts)

    if engine is None:
        engine = TkLUSEngine.from_posts(posts, precompute_bounds=False)
    database = engine.database
    index = engine.index

    def run(name: str, thunk) -> None:
        t0 = time.perf_counter()
        violations = thunk()
        report.checks.append(CheckResult(
            name=name, violations=violations,
            seconds=time.perf_counter() - t0))

    for tree_name, tree in database.indexes().items():
        run(f"bptree[{tree_name}]",
            lambda t=tree, n=tree_name: validate_bptree(
                t, name=f"bptree[{n}]"))
    run("heap-pages", lambda: validate_heap_pages(database.heap))
    run("cover-soundness",
        lambda: validate_cover_soundness(
            posts, index.geohash_length,
            _sample_queries(posts, radii_km), metric=engine.metric))
    run("forward-inverted",
        lambda: validate_forward_inverted(index, database))
    run("block-headers", lambda: validate_block_headers(index))

    quadtree: QuadTree[int] = QuadTree()
    for post in posts:
        quadtree.insert(post.location[0], post.location[1], post.sid)
    run("quadtree", lambda: validate_quadtree(quadtree))

    # Real-time write path: drive a small ingest service through
    # several flushes so the validators see generations, sealed
    # segments gone, and a live memtable — then prove the memtable
    # equals its WAL, the manifest matches the directory, and driving
    # the tiered compactor to quiescence preserves every flushed post.
    import os
    import tempfile

    from ..compaction import CompactionConfig
    from ..ingest import IngestConfig, IngestService

    sample = posts[:min(len(posts), 300)]
    with tempfile.TemporaryDirectory() as scratch:
        service = IngestService(
            os.path.join(scratch, "ingest"),
            ingest_config=IngestConfig(
                flush_posts=max(1, len(sample) // 6)),
            compaction_config=CompactionConfig(enabled=False, min_inputs=2))
        for post in sample:
            service.append(post)
        wal_dir = os.path.join(service.directory, "wal")
        run("wal-segments", lambda: validate_wal_segments(wal_dir))
        run("memtable-replay", lambda: validate_memtable_replay(service))
        run("generation-manifest",
            lambda: validate_generation_manifest(service.directory))
        run("compaction", lambda: validate_compaction(service))
        run("generation-manifest[compacted]",
            lambda: validate_generation_manifest(
                service.directory, name="generation-manifest[compacted]"))
        service.close()

    report.seconds = time.perf_counter() - started
    return report
