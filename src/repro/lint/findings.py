"""Findings: what a lint rule or invariant validator reports.

A :class:`Finding` pinpoints one rule violation in one file.  Its
:meth:`baseline_key` deliberately omits the line number so a committed
baseline (``lint-baseline.json``) survives unrelated edits that shift
code up or down — the key is ``path :: rule :: symbol :: message``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Meta-rule id for problems with the lint machinery itself (malformed
#: suppression comments, unparseable files).  Never suppressible.
META_RULE = "RL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Enclosing ``Class.method`` (or function) name — stabilises the
    #: baseline key across line drift.
    symbol: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def baseline_key(self) -> str:
        return f"{self.path}::{self.rule}::{self.symbol}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }
