"""Deep structural invariant validators (Layer 2 of ``repro check``).

Where the static rules (:mod:`repro.lint.rules`) catch code-shape bugs,
these validators inspect *built* structures — B+-trees, slotted heap
pages, geohash circle covers, and the forward↔inverted index pair — and
report every violation rather than raising on the first, so one run
paints the full corruption picture.

The validators deliberately reach into storage internals (``tree._load``,
``pool.pinned``): they are the auditors of those representations, so
coupling to the byte layout is their job, not a layering violation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.model import Post
from ..geo import geohash
from ..geo.cover import circle_cover, min_distance_to_cell
from ..geo.distance import DEFAULT_METRIC, Metric
from ..geo.quadtree import QuadTree, _Node
from ..index import blocks as blocks_mod
from ..index.hybrid import HybridIndex
from ..index.postings import ENTRY_SIZE
from ..storage.bptree import (
    INTERNAL_MIN,
    LEAF_MIN,
    MAX_KEY,
    MIN_KEY,
    BPlusTree,
    Key,
    _Node as _TreeNode,
)
from ..storage.heapfile import HeapFile
from ..storage.metadata import MetadataDatabase
from ..storage.page import INVALID_PAGE, PAGE_SIZE

Coordinate = Tuple[float, float]

#: Mirror of the slotted-page layout in :mod:`repro.storage.page`
#: (slot_count u16, free_offset u16; per-slot offset u16, length u16).
_PAGE_HEADER = struct.Struct("<HH")
_PAGE_SLOT = struct.Struct("<HH")

#: Tolerance for quadtree boundary containment: points exactly on a split
#: line are snapped to the last quadrant by ``QuadTree._child_for``.
_GEO_EPS = 1e-9

#: Injectable cover function signature, for corruption tests.
CoverFn = Callable[[Coordinate, float, int, Metric], List[str]]


@dataclass(frozen=True)
class InvariantViolation:
    """One broken structural invariant at one location."""

    validator: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.validator}] {self.location}: {self.message}"

    def to_dict(self) -> Dict[str, str]:
        return {"validator": self.validator, "location": self.location,
                "message": self.message}


# -- B+-tree ---------------------------------------------------------------

def validate_bptree(tree: BPlusTree, name: str = "bptree"
                    ) -> List[InvariantViolation]:
    """Check node typing, key order/bounds, fill factors, uniform leaf
    depth, recorded size, and the left-to-right leaf chain."""
    violations: List[InvariantViolation] = []
    leaves: List[_TreeNode] = []
    seen: Set[int] = set()

    def bad(page_no: int, message: str) -> None:
        violations.append(InvariantViolation(
            validator=name, location=f"page {page_no}", message=message))

    def walk(page_no: int, lo: Key, hi: Key, depth: int) -> int:
        if page_no in seen:
            bad(page_no, "node reachable twice (cycle or shared child)")
            return 0
        seen.add(page_no)
        try:
            node = tree._load(page_no)
        except Exception as exc:  # corrupt bytes raise many shapes
            bad(page_no, f"node failed to load: {exc}")
            return 0
        is_root = page_no == tree._root_page
        if node.keys != sorted(node.keys):
            bad(page_no, "keys out of order within node")
        for key in node.keys:
            if not lo <= key <= hi:
                bad(page_no, f"key {key} outside separator bounds "
                             f"({lo}, {hi})")
        if node.is_leaf:
            if depth != tree._height:
                bad(page_no, f"leaf at depth {depth}, tree height is "
                             f"{tree._height}")
            if not is_root and len(node.keys) < LEAF_MIN:
                bad(page_no, f"leaf underfull: {len(node.keys)} < {LEAF_MIN}")
            if len(node.values) != len(node.keys):
                bad(page_no, f"leaf has {len(node.keys)} keys but "
                             f"{len(node.values)} values")
            leaves.append(node)
            return len(node.keys)
        if not is_root and len(node.keys) < INTERNAL_MIN:
            bad(page_no, f"internal underfull: {len(node.keys)} "
                         f"< {INTERNAL_MIN}")
        if is_root and not node.keys:
            bad(page_no, "internal root has no keys")
        if len(node.children) != len(node.keys) + 1:
            bad(page_no, f"internal has {len(node.keys)} keys but "
                         f"{len(node.children)} children")
            return 0
        total = 0
        bounds = [lo] + node.keys + [hi]
        for i, child in enumerate(node.children):
            total += walk(child, bounds[i], bounds[i + 1], depth + 1)
        return total

    counted = walk(tree._root_page, MIN_KEY, MAX_KEY, 1)
    if not violations and counted != len(tree):
        violations.append(InvariantViolation(
            validator=name, location="meta page",
            message=f"recorded size {len(tree)} but counted {counted} "
                    f"entries"))

    # Leaf chain must thread the leaves in exactly tree order.
    previous_key: Optional[Key] = None
    for i, leaf in enumerate(leaves):
        expected = (leaves[i + 1].page_no if i + 1 < len(leaves)
                    else INVALID_PAGE)
        if leaf.next_leaf != expected:
            bad(leaf.page_no,
                f"next_leaf is {leaf.next_leaf}, expected {expected}")
        for key in leaf.keys:
            if previous_key is not None and key <= previous_key:
                bad(leaf.page_no,
                    f"leaf chain out of order: {previous_key} !< {key}")
            previous_key = key
    return violations


# -- slotted heap pages ----------------------------------------------------

def _validate_slotted_bytes(name: str, page_no: int, data: bytes
                            ) -> List[InvariantViolation]:
    violations: List[InvariantViolation] = []

    def bad(message: str, slot: Optional[int] = None) -> None:
        where = (f"page {page_no}" if slot is None
                 else f"page {page_no} slot {slot}")
        violations.append(InvariantViolation(
            validator=name, location=where, message=message))

    slot_count, free_offset = _PAGE_HEADER.unpack_from(data, 0)
    if free_offset == 0:  # freshly zeroed page means "empty"
        free_offset = PAGE_SIZE
    directory_end = _PAGE_HEADER.size + slot_count * _PAGE_SLOT.size
    if directory_end > PAGE_SIZE:
        bad(f"slot directory ({slot_count} slots) exceeds the page")
        return violations
    if free_offset < directory_end:
        bad(f"free offset {free_offset} overlaps the slot directory "
            f"(ends at {directory_end})")
    if free_offset > PAGE_SIZE:
        bad(f"free offset {free_offset} beyond page size {PAGE_SIZE}")

    intervals: List[Tuple[int, int, int]] = []  # (offset, end, slot)
    for slot in range(slot_count):
        offset, length = _PAGE_SLOT.unpack_from(
            data, _PAGE_HEADER.size + slot * _PAGE_SLOT.size)
        if offset == 0:  # tombstone
            continue
        if length == 0:
            bad("live slot with zero length", slot)
            continue
        if offset < free_offset:
            bad(f"record offset {offset} below free offset {free_offset} "
                f"(record sits in free space)", slot)
        if offset + length > PAGE_SIZE:
            bad(f"record [{offset}, {offset + length}) runs past the "
                f"page end", slot)
            continue
        intervals.append((offset, offset + length, slot))

    intervals.sort()
    for (_s1, end1, slot1), (start2, _e2, slot2) in zip(intervals,
                                                        intervals[1:]):
        if start2 < end1:
            bad(f"record overlaps slot {slot1}'s record", slot2)
    return violations


def validate_heap_pages(heap: HeapFile, name: str = "heap"
                        ) -> List[InvariantViolation]:
    """Check the slot-directory consistency of every page in a heap file."""
    violations: List[InvariantViolation] = []
    pool = heap._pool
    for page_no in range(heap.page_count):
        try:
            with pool.pinned(page_no) as page:
                data = bytes(page.data)
        except Exception as exc:
            violations.append(InvariantViolation(
                validator=name, location=f"page {page_no}",
                message=f"page failed to load: {exc}"))
            continue
        violations.extend(_validate_slotted_bytes(name, page_no, data))
    return violations


# -- geohash circle covers -------------------------------------------------

def validate_cover_soundness(
        posts: Sequence[Post], geohash_length: int,
        queries: Sequence[Tuple[Coordinate, float]],
        metric: Metric = DEFAULT_METRIC,
        cover_fn: CoverFn = circle_cover,
        name: str = "cover") -> List[InvariantViolation]:
    """Check completeness and minimality of circle covers against real data.

    * **Completeness** — every post within ``radius_km`` of a query centre
      encodes to a cell in that query's cover (miss one and the query
      engine silently drops in-radius candidates).
    * **Minimality** — every cover cell actually intersects the circle
      (a spurious cell costs postings fetches for unreachable data).

    ``cover_fn`` is injectable so tests can validate a deliberately
    broken cover implementation.
    """
    violations: List[InvariantViolation] = []
    for qi, (center, radius_km) in enumerate(queries):
        cells = cover_fn(center, radius_km, geohash_length, metric)
        cell_set = set(cells)
        where = (f"query {qi} ({center[0]:.4f}, {center[1]:.4f}) "
                 f"r={radius_km}km")
        for post in posts:
            if metric(center, post.location) > radius_km:
                continue
            cell = geohash.encode(post.location[0], post.location[1],
                                  geohash_length)
            if cell not in cell_set:
                violations.append(InvariantViolation(
                    validator=name, location=where,
                    message=f"post {post.sid} at {post.location} is "
                            f"in-radius but its cell {cell!r} is not in "
                            f"the cover"))
        for cell in cells:
            bounds = geohash.decode_cell(cell)
            if min_distance_to_cell(center, bounds, metric) > radius_km:
                violations.append(InvariantViolation(
                    validator=name, location=where,
                    message=f"cover cell {cell!r} does not intersect "
                            f"the query circle"))
    return violations


# -- forward index ↔ inverted postings ------------------------------------

def validate_forward_inverted(
        index: HybridIndex, database: Optional[MetadataDatabase] = None,
        name: str = "forward-inverted") -> List[InvariantViolation]:
    """Cross-check every forward-index entry against the DFS-resident
    postings bytes it points at.

    Checks: the byte extent matches the entry count (flat payloads) or
    the payload parses in the block format; the bytes decode as postings;
    and (when a metadata ``database`` is supplied) every posting's tweet
    exists and actually lies in the cell it is indexed under.
    """
    violations: List[InvariantViolation] = []

    def bad(where: str, message: str) -> None:
        violations.append(InvariantViolation(
            validator=name, location=where, message=message))

    for (cell, term), ref in index.forward.items():
        where = f"({cell!r}, {term!r}) -> {ref.path}@{ref.offset}"
        try:
            reader = index.cluster.open(ref.path)
            data = reader.pread(ref.offset, ref.length)
        except Exception as exc:
            bad(where, f"postings bytes unreadable: {exc}")
            continue
        if len(data) != ref.length:
            bad(where, f"short read: got {len(data)} of {ref.length} bytes")
            continue
        if not _is_block_payload(data):
            if ref.length != ref.count * ENTRY_SIZE:
                bad(where, f"length {ref.length} != count {ref.count} * "
                           f"{ENTRY_SIZE} bytes")
                continue
        try:
            postings = blocks_mod.decode_any(data)
        except ValueError as exc:
            bad(where, f"postings bytes do not decode: {exc}")
            continue
        if len(postings) != ref.count:
            bad(where, f"decoded {len(postings)} postings, forward entry "
                       f"says {ref.count}")
        if database is None:
            continue
        for tid, tf in postings:
            record = database.get(tid)
            if record is None:
                bad(where, f"posting references unknown tweet {tid}")
                continue
            if tf <= 0:
                bad(where, f"tweet {tid} has non-positive tf {tf}")
            actual = geohash.encode(record.lat, record.lon, len(cell))
            if actual != cell:
                bad(where, f"tweet {tid} lies in cell {actual!r}, not "
                           f"{cell!r}")
    return violations


# -- block-format postings headers -----------------------------------------

def _is_block_payload(data: bytes) -> bool:
    return (len(data) >= 2 and data[0] == blocks_mod.MAGIC
            and data[1] == blocks_mod.FORMAT_VERSION)


def validate_block_headers(index: HybridIndex, name: str = "block-headers"
                           ) -> List[InvariantViolation]:
    """Check skip-table/body consistency of every block-format payload.

    The skip metadata is what lets readers *not* decode blocks, so a
    header that lies (wrong ``min_tid``/``max_tid``/``max_tf``/``count``)
    silently drops or mis-bounds candidates.  For each block this decodes
    the body and cross-checks it against its header: entry count, first
    and last tids, tid ordering within and across blocks, and the exact
    ``max_tf``.  Flat-format payloads are skipped (they carry no headers).
    """
    violations: List[InvariantViolation] = []

    def bad(where: str, message: str) -> None:
        violations.append(InvariantViolation(
            validator=name, location=where, message=message))

    for (cell, term), ref in index.forward.items():
        where = f"({cell!r}, {term!r}) -> {ref.path}@{ref.offset}"
        try:
            reader = index.cluster.open(ref.path)
            data = reader.pread(ref.offset, ref.length)
        except Exception as exc:
            bad(where, f"postings bytes unreadable: {exc}")
            continue
        if not _is_block_payload(data):
            continue
        try:
            parsed = blocks_mod._parse_blocks(data)
        except blocks_mod.PostingsFormatError as exc:
            bad(where, f"block payload does not parse: {exc}")
            continue
        if parsed.total != ref.count:
            bad(where, f"payload holds {parsed.total} entries, forward "
                       f"entry says {ref.count}")
        previous_tid: Optional[int] = None
        for block_no, header in enumerate(parsed.headers):
            at = f"{where} block {block_no}"
            if header.min_tid > header.max_tid:
                bad(at, f"min_tid {header.min_tid} > max_tid "
                        f"{header.max_tid}")
            if (previous_tid is not None
                    and header.min_tid < previous_tid):
                bad(at, f"min_tid {header.min_tid} below previous "
                        f"block's last tid {previous_tid}")
            try:
                entries = blocks_mod._decode_block(data, header)
            except blocks_mod.PostingsFormatError as exc:
                bad(at, f"body does not decode: {exc}")
                previous_tid = header.max_tid
                continue
            if len(entries) != header.count:
                bad(at, f"decoded {len(entries)} entries, header says "
                        f"{header.count}")
            if entries:
                if entries[0][0] != header.min_tid:
                    bad(at, f"first tid {entries[0][0]} != header min_tid "
                            f"{header.min_tid}")
                if entries[-1][0] != header.max_tid:
                    bad(at, f"last tid {entries[-1][0]} != header max_tid "
                            f"{header.max_tid}")
                actual_max_tf = max(tf for _tid, tf in entries)
                if actual_max_tf != header.max_tf:
                    bad(at, f"actual max tf {actual_max_tf} != header "
                            f"max_tf {header.max_tf}")
                for tid, _tf in entries:
                    if previous_tid is not None and tid < previous_tid:
                        bad(at, f"tid {tid} out of order after "
                                f"{previous_tid}")
                    previous_tid = tid
    return violations


# -- quadtree --------------------------------------------------------------

def validate_quadtree(tree: QuadTree, name: str = "quadtree"
                      ) -> List[InvariantViolation]:
    """Check point containment, leaf/internal shape, depth bounds, and the
    size counter of a :class:`~repro.geo.quadtree.QuadTree`."""
    violations: List[InvariantViolation] = []

    def bad(node: "_Node", message: str) -> None:
        b = node.bounds
        violations.append(InvariantViolation(
            validator=name,
            location=f"node depth={node.depth} "
                     f"[{b.min_lat:.4f},{b.min_lon:.4f},"
                     f"{b.max_lat:.4f},{b.max_lon:.4f}]",
            message=message))

    counted = 0
    stack: List["_Node"] = [tree._root]
    while stack:
        node = stack.pop()
        if node.depth > tree._max_depth:
            bad(node, f"depth {node.depth} exceeds max_depth "
                      f"{tree._max_depth}")
        if node.is_leaf:
            counted += len(node.points)
            for lat, lon, _value in node.points:
                b = node.bounds
                if not (b.min_lat - _GEO_EPS <= lat <= b.max_lat + _GEO_EPS
                        and b.min_lon - _GEO_EPS <= lon
                        <= b.max_lon + _GEO_EPS):
                    bad(node, f"point ({lat}, {lon}) outside leaf bounds")
        else:
            if node.points:
                bad(node, f"internal node retains {len(node.points)} "
                          f"points after split")
            assert node.children is not None
            if len(node.children) != 4:
                bad(node, f"internal node has {len(node.children)} "
                          f"children, expected 4")
            stack.extend(node.children)
    if counted != len(tree):
        violations.append(InvariantViolation(
            validator=name, location="root",
            message=f"size counter says {len(tree)} points, leaves hold "
                    f"{counted}"))
    return violations


def validate_database(database: MetadataDatabase
                      ) -> List[InvariantViolation]:
    """All storage-layer validators over one metadata database."""
    violations: List[InvariantViolation] = []
    for tree_name, tree in database.indexes().items():
        violations.extend(validate_bptree(tree, name=f"bptree[{tree_name}]"))
    violations.extend(validate_heap_pages(database.heap))
    return violations


# -- WAL and memtable (the real-time write path) -----------------------------

def validate_wal_segments(wal_dir: str, name: str = "wal"
                          ) -> List[InvariantViolation]:
    """Structural invariants of a WAL directory.

    Every complete record's CRC must verify, LSNs must be strictly
    increasing within and across segments (segments scanned in numeric
    order), and a torn tail — legal fallout of a crash — may exist only
    in the final segment, because rotation fsyncs before sealing.
    """
    import os

    from ..ingest.wal import WALCorruptionError, replay_segment, segment_number

    violations: List[InvariantViolation] = []
    if not os.path.isdir(wal_dir):
        return [InvariantViolation(
            validator=name, location=wal_dir,
            message="WAL directory does not exist")]
    names = sorted((entry for entry in os.listdir(wal_dir)
                    if entry.startswith("wal-") and entry.endswith(".log")),
                   key=segment_number)
    last_lsn: Optional[int] = None
    for position, segment in enumerate(names):
        path = os.path.join(wal_dir, segment)
        try:
            records, result = replay_segment(path, repair_torn_tail=False)
        except WALCorruptionError as error:
            violations.append(InvariantViolation(
                validator=name, location=segment, message=str(error)))
            continue
        if result.torn_tail and position != len(names) - 1:
            violations.append(InvariantViolation(
                validator=name, location=segment,
                message=f"torn tail at offset {result.torn_offset} in a "
                        f"non-final segment"))
        for lsn, _post in records:
            if last_lsn is not None and lsn <= last_lsn:
                violations.append(InvariantViolation(
                    validator=name, location=segment,
                    message=f"LSN {lsn} not above predecessor {last_lsn}"))
            last_lsn = lsn
    return violations


def validate_memtable_replay(service: object, name: str = "memtable-replay"
                             ) -> List[InvariantViolation]:
    """The recovery contract: the live memtables must equal a replay of
    the surviving WAL segments.

    Replays the service's WAL directory into a fresh
    :class:`~repro.ingest.memindex.MemIndex` and checks (a) the
    ``(lsn, sid)`` sequences match and (b) every indexed
    ``(cell, term)`` postings list is identical — so a crash at this
    instant would recover to exactly the current query view.
    """
    import os

    from ..ingest.memindex import MemIndex
    from ..ingest.wal import WALCorruptionError, replay_segment, segment_number

    violations: List[InvariantViolation] = []

    def note(location: str, message: str) -> None:
        violations.append(InvariantViolation(
            validator=name, location=location, message=message))

    wal_dir = os.path.join(service.directory, "wal")  # type: ignore[attr-defined]
    names = sorted((entry for entry in os.listdir(wal_dir)
                    if entry.startswith("wal-") and entry.endswith(".log")),
                   key=segment_number)
    replayed = MemIndex(service.index_config,       # type: ignore[attr-defined]
                        service.analyzer)           # type: ignore[attr-defined]
    replayed_pairs: List[Tuple[int, int]] = []
    for segment in names:
        try:
            records, _result = replay_segment(
                os.path.join(wal_dir, segment), repair_torn_tail=False)
        except WALCorruptionError as error:
            note(segment, str(error))
            return violations
        for lsn, post in records:
            replayed.add(post, lsn)
            replayed_pairs.append((lsn, post.sid))

    live_pairs = sorted(
        (lsn, post.sid)
        for memtable in service.memtables    # type: ignore[attr-defined]
        for lsn, post in memtable.lsn_posts())
    if live_pairs != replayed_pairs:
        note(wal_dir,
             f"memtables hold {len(live_pairs)} records, WAL replay "
             f"yields {len(replayed_pairs)} (or ordering differs)")
        return violations

    live_keys = sorted({key for memtable in service.memtables  # type: ignore[attr-defined]
                        for key in memtable.keys()})
    if live_keys != replayed.keys():
        note(wal_dir, "indexed (cell, term) key sets differ between "
                      "memtables and WAL replay")
        return violations
    for cell, term in live_keys:
        merged: List[Tuple[int, int]] = []
        for memtable in service.memtables:   # type: ignore[attr-defined]
            merged.extend(memtable.postings(cell, term))
        merged.sort()
        if tuple(merged) != tuple(replayed.postings(cell, term)):
            note(f"{cell}/{term}",
                 "postings differ between memtables and WAL replay")
    return violations


# -- generation manifest / compaction ---------------------------------------

def validate_generation_manifest(directory: str,
                                 name: str = "generation-manifest"
                                 ) -> List[InvariantViolation]:
    """Manifest <-> directory agreement for an ingest directory.

    Every generation the manifest commits must have its directory and
    core files on disk with a ``posts.jsonl`` whose record count equals
    the committed ``post_count``; every ``gen-*`` directory on disk must
    be committed (recovery removes orphans, so a survivor is a bug);
    and the tier/seq metadata must be coherent — unique seqs, below the
    manifest's ``next_seq`` allocator, non-negative tiers.
    """
    import json
    import os

    violations: List[InvariantViolation] = []

    def note(location: str, message: str) -> None:
        violations.append(InvariantViolation(
            validator=name, location=location, message=message))

    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        note(directory, "MANIFEST.json does not exist")
        return violations
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)

    entries = manifest.get("generations", [])
    generations_root = os.path.join(directory, "generations")
    committed: Set[str] = set()
    seqs: Dict[int, int] = {}
    next_seq = manifest.get("next_seq")
    for entry in entries:
        number = int(entry["number"])
        dir_name = f"gen-{number:05d}"
        committed.add(dir_name)
        gen_dir = os.path.join(generations_root, dir_name)
        if not os.path.isdir(gen_dir):
            note(dir_name, "committed in the manifest but the directory "
                           "is missing")
            continue
        posts_path = os.path.join(gen_dir, "posts.jsonl")
        if not os.path.exists(posts_path):
            note(dir_name, "posts.jsonl is missing")
        else:
            with open(posts_path, "r", encoding="utf-8") as handle:
                records = sum(1 for line in handle if line.strip())
            if records != int(entry["post_count"]):
                note(dir_name,
                     f"posts.jsonl holds {records} records, manifest "
                     f"commits post_count={entry['post_count']}")
        if int(entry.get("tier", 0)) < 0:
            note(dir_name, f"negative tier {entry.get('tier')}")
        seq = int(entry.get("seq", number))
        if seq in seqs:
            note(dir_name,
                 f"seq {seq} already used by gen-{seqs[seq]:05d}")
        seqs[seq] = number
        if isinstance(next_seq, int) and seq >= next_seq:
            note(dir_name,
                 f"seq {seq} is not below the manifest next_seq "
                 f"{next_seq} allocator")

    if os.path.isdir(generations_root):
        for dir_name in sorted(os.listdir(generations_root)):
            if dir_name.startswith("gen-") and dir_name not in committed:
                note(dir_name, "on disk but not committed in the manifest "
                               "(orphan that recovery should have removed)")
    return violations


def validate_compaction(service: object, name: str = "compaction"
                        ) -> List[InvariantViolation]:
    """Drive the service's compaction scheduler to quiescence and check
    the lifecycle contract held: no post is lost or duplicated across
    the merge (flushed post count is preserved), every surviving
    generation is ACTIVE, and the deferred-reclaim queue drains once no
    reader pins an old epoch.
    """
    from ..compaction import GenerationState

    violations: List[InvariantViolation] = []

    def note(location: str, message: str) -> None:
        violations.append(InvariantViolation(
            validator=name, location=location, message=message))

    directory = service.directory                # type: ignore[attr-defined]
    posts_before = sum(
        bucket["posts"]
        for bucket in service.tier_breakdown().values())  # type: ignore[attr-defined]
    try:
        service.compact()                        # type: ignore[attr-defined]
    except RuntimeError as error:
        note(directory, f"compaction did not quiesce: {error}")
        return violations
    posts_after = sum(
        bucket["posts"]
        for bucket in service.tier_breakdown().values())  # type: ignore[attr-defined]
    if posts_after != posts_before:
        note(directory,
             f"flushed post count changed across compaction: "
             f"{posts_before} -> {posts_after}")
    for generation in service.generations.items:  # type: ignore[attr-defined]
        if generation.state is not GenerationState.ACTIVE:
            note(f"gen-{generation.number:05d}",
                 f"current set holds a {generation.state.value} generation")
    service.generations.drain()                  # type: ignore[attr-defined]
    pending = service.generations.pending_reclaim()  # type: ignore[attr-defined]
    if pending:
        note(directory,
             f"{pending} superseded generation(s) still awaiting reclaim "
             f"with no pins outstanding")
    return violations
