"""Worklist dataflow over :mod:`repro.lint.cfg` graphs.

Two analyses back the RL100-family rules:

* **Reaching definitions** (forward, may, union-join) — which
  assignments of a name can reach a use.  RL104 uses it to trace an
  ``os.replace`` source file handle back to the ``open()`` that made
  it.
* **Resource facts** (forward, may or must) — RL102 phrases "pin leaks"
  as the may-fact ``held(pin)`` reaching the exit or exceptional-exit
  node; RL105 phrases "commit happened before publish" as ``committed``
  being a must-fact on entry to each publish site.

Both are instances of one generic :func:`solve` over finite fact sets.

Exceptional edges carry the *pre*-statement facts: when a statement
raises, its effect may not have happened.  Callers can refine that with
``exc_transfer`` — RL102 passes one that applies *kills* only, encoding
"acquisition is atomic (a failed acquire acquires nothing) but a
release is assumed to take effect even if the releasing statement
raises".  The graphs are statement-granular and tiny (one function
body), so the quadratic worst case of the naive worklist is irrelevant.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .cfg import CFG, CFGNode

Facts = FrozenSet[str]
Transfer = Callable[[CFGNode, Facts], Facts]

#: Sentinel lattice top for must-analysis: "no path reached here yet".
#: Distinct from frozenset() ("a path reached here carrying nothing").
TOP: Facts = frozenset({"\x00<top>"})


class FlowResult:
    """IN/OUT fact sets per node index after the fixed point."""

    __slots__ = ("ins", "outs", "cfg")

    def __init__(self, cfg: CFG, ins: Dict[int, Facts],
                 outs: Dict[int, Facts]) -> None:
        self.cfg = cfg
        self.ins = ins
        self.outs = outs

    def holds_before(self, index: int, fact: str) -> bool:
        """Fact holds on entry to node on all paths (must) / some path
        (may).  TOP means the node is unreachable — vacuously true for
        must, and treated as "fact absent" for may (may never uses
        TOP)."""
        facts = self.ins[index]
        return facts == TOP or fact in facts

    def holds_after(self, index: int, fact: str) -> bool:
        facts = self.outs[index]
        return facts == TOP or fact in facts

    def may_hold_after(self, index: int, fact: str) -> bool:
        facts = self.outs[index]
        return facts != TOP and fact in facts


def solve(cfg: CFG, transfer: Transfer, *, must: bool,
          entry_facts: Facts = frozenset(),
          exc_transfer: Optional[Transfer] = None) -> FlowResult:
    """Forward fixed point.

    ``must=True`` joins with intersection (a fact survives only on all
    incoming paths); ``must=False`` joins with union.  Edges recorded in
    ``cfg.exc_edges`` contribute ``exc_transfer(node, IN[node])``
    instead of ``OUT[node]`` — by default the identity, i.e. the
    pre-statement facts.
    """
    if exc_transfer is None:
        exc_transfer = lambda node, facts: facts  # noqa: E731

    bottom: Facts = TOP if must else frozenset()
    ins: Dict[int, Facts] = {n.index: bottom for n in cfg.nodes}
    outs: Dict[int, Facts] = {n.index: bottom for n in cfg.nodes}
    ins[cfg.entry] = entry_facts
    outs[cfg.entry] = transfer(cfg.nodes[cfg.entry], entry_facts)

    worklist: List[int] = [n.index for n in cfg.nodes if n.index != cfg.entry]
    pending: Set[int] = set(worklist)
    while worklist:
        index = worklist.pop()
        pending.discard(index)
        node = cfg.nodes[index]

        in_facts: Facts = bottom
        seen_pred = False
        for pred in node.preds:
            if (pred, index) in cfg.exc_edges:
                pred_in = ins[pred]
                contribution = (pred_in if pred_in == TOP
                                else exc_transfer(cfg.nodes[pred], pred_in))
            else:
                contribution = outs[pred]
            if must:
                if contribution == TOP:
                    continue        # path never reaches this pred
                in_facts = (contribution if not seen_pred
                            else in_facts & contribution)
            else:
                in_facts = in_facts | contribution
            seen_pred = True
        if must and not seen_pred:
            in_facts = TOP

        out_facts = (in_facts if in_facts == TOP
                     else transfer(node, in_facts))
        if in_facts != ins[index] or out_facts != outs[index]:
            ins[index] = in_facts
            outs[index] = out_facts
            for succ in node.succs:
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return FlowResult(cfg, ins, outs)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

def assigned_names(stmt: ast.AST) -> List[str]:
    """Names (re)bound by this statement, shallow (no nested defs)."""
    names: List[str] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets.append(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.append(stmt.name)
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
    return names


def reaching_definitions(cfg: CFG) -> FlowResult:
    """Fact sets ``name@line`` — the definitions of each local name
    that may reach each point.  A new definition kills the prior ones
    of the same name."""

    def transfer(node: CFGNode, facts: Facts) -> Facts:
        if node.stmt is None:
            return facts
        killed_names = set(assigned_names(node.stmt))
        if not killed_names:
            return facts
        survivors = {fact for fact in facts
                     if fact.rsplit("@", 1)[0] not in killed_names}
        survivors.update(f"{name}@{node.line}" for name in killed_names)
        return frozenset(survivors)

    return solve(cfg, transfer, must=False)


def definitions_reaching(result: FlowResult, node: CFGNode,
                         name: str) -> List[int]:
    """Line numbers of the definitions of ``name`` that may reach the
    entry of ``node``."""
    lines = []
    for fact in result.ins[node.index]:
        fact_name, _, line = fact.rpartition("@")
        if fact_name == name:
            lines.append(int(line))
    return sorted(lines)


# ---------------------------------------------------------------------------
# Resource (gen/kill) analyses
# ---------------------------------------------------------------------------

GenKill = Callable[[CFGNode], Optional[Tuple[str, ...]]]


def resource_flow(cfg: CFG, gen: GenKill, kill: GenKill, *,
                  must: bool) -> FlowResult:
    """Gen/kill facts with resource semantics on exceptional edges:
    kills apply (a release takes effect even if its statement raises)
    but gens do not (an acquire that raises acquired nothing)."""

    def transfer(node: CFGNode, facts: Facts) -> Facts:
        killed = kill(node) or ()
        generated = gen(node) or ()
        if not killed and not generated:
            return facts
        return frozenset((set(facts) - set(killed)) | set(generated))

    def exc_transfer(node: CFGNode, facts: Facts) -> Facts:
        killed = kill(node) or ()
        if not killed:
            return facts
        return frozenset(set(facts) - set(killed))

    return solve(cfg, transfer, must=must, exc_transfer=exc_transfer)
