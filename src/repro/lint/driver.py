"""Lint driver: file discovery, rule execution, baseline handling.

The driver turns paths into :class:`~.registry.ModuleInfo` objects, runs
every applicable rule, applies in-source suppressions, and finally
subtracts a committed baseline (``lint-baseline.json``).  Baseline
entries use :meth:`Finding.baseline_key`, which omits line numbers so
the file survives unrelated drift.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .findings import META_RULE, Finding
from .registry import ModuleInfo, ProjectRule, Rule, all_rules
from .suppressions import SuppressionMap, scan_suppressions

DEFAULT_BASELINE = "lint-baseline.json"

#: Directories never descended into during discovery.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache",
              ".pytest_cache", "build", "dist", ".venv", "venv"}


def normalize_path(path: "os.PathLike[str] | str") -> str:
    """Posix-style path, relative to the CWD when possible.

    Keeping lint paths CWD-relative makes findings stable between runs
    and lets absolute inputs match committed baseline entries.
    """
    resolved = Path(path).resolve()
    try:
        rel = resolved.relative_to(Path.cwd())
    except ValueError:
        return resolved.as_posix()
    return rel.as_posix()


def iter_python_files(paths: Sequence["os.PathLike[str] | str"]
                      ) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through as-is)."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        elif root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts)))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(path)
    return out


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings present in the run but forgiven by the baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that no longer match anything — stale debt.
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one in-memory module.  The workhorse for fixture tests."""
    norm = path if path.startswith("<") else normalize_path(path)
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError as exc:
        return [Finding(rule=META_RULE, path=norm,
                        line=exc.lineno or 1, col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}")]
    module = ModuleInfo(path=norm, source=source, tree=tree)
    suppressions = scan_suppressions(source, norm)

    findings: List[Finding] = list(suppressions.malformed)
    for rule in (all_rules() if rules is None else rules):
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not suppressions.suppresses(finding.line, finding.rule):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: "os.PathLike[str] | str",
              rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=os.fspath(path), rules=rules)


def load_baseline(path: "os.PathLike[str] | str") -> Set[str]:
    """Read the set of forgiven :meth:`Finding.baseline_key` strings."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data["suppressions"] if isinstance(data, dict) else data
    return {str(entry) for entry in entries}


def write_baseline(path: "os.PathLike[str] | str",
                   findings: Sequence[Finding]) -> None:
    keys = sorted({f.baseline_key() for f in findings})
    payload = {
        "comment": "Findings forgiven by review; keys are "
                   "path::rule::symbol::message (line-number free). "
                   "Regenerate with 'repro check --rules --write-baseline'.",
        "suppressions": keys,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def lint_paths(paths: Sequence["os.PathLike[str] | str"],
               rules: Optional[Sequence[Rule]] = None,
               baseline: Optional[Set[str]] = None) -> LintReport:
    """Lint every python file under ``paths`` and apply the baseline.

    Per-file rules run file by file; :class:`~.registry.ProjectRule`
    instances run once over the whole parsed collection (the lock-order
    graph needs every module to see cross-file inversions).  In-source
    suppressions apply to both through the owning file's map.
    """
    report = LintReport()
    raw: List[Finding] = []
    active = list(all_rules() if rules is None else rules)
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]

    modules: List[ModuleInfo] = []
    suppression_maps: Dict[str, SuppressionMap] = {}
    for file_path in iter_python_files(paths):
        raw.extend(lint_file(file_path, rules=file_rules))
        report.files_checked += 1
        if project_rules:
            source = Path(file_path).read_text(encoding="utf-8")
            norm = normalize_path(file_path)
            try:
                tree = ast.parse(source, filename=norm)
            except SyntaxError:
                continue  # already reported by the per-file pass
            modules.append(ModuleInfo(path=norm, source=source, tree=tree))
            suppression_maps[norm] = scan_suppressions(source, norm)

    for rule in project_rules:
        applicable = [m for m in modules if rule.applies_to(m)]
        for finding in rule.check_project(applicable):
            suppressions = suppression_maps.get(finding.path)
            if suppressions is None or not suppressions.suppresses(
                    finding.line, finding.rule):
                raw.append(finding)

    baseline = baseline or set()
    matched: Set[str] = set()
    for finding in raw:
        key = finding.baseline_key()
        if key in baseline:
            matched.add(key)
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = sorted(baseline - matched)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
