"""Project-aware correctness tooling.

Three layers (see ``docs/STATIC_ANALYSIS.md``):

* **Static rules** (``repro check --rules``) — AST analyses RL001–RL007
  encoding disciplines this codebase has been burned by: mutable
  dataclass defaults, cache aliasing, unbalanced tracer spans, lock-free
  access to guarded state, undeclared operator writes, leaked page pins,
  and naked float equality in scoring code.  The RL100 concurrency
  family (``repro check --concurrency``) adds CFG/dataflow analyses:
  guarded-by field discipline, lock-order cycles, pin/lock release on
  all paths, lifecycle typestate, and commit-section ordering.
* **Runtime lock sanitizer** (``repro.lint.sanitizer``) — instrumented
  locks that record acquisition order and guarded-field accesses during
  the concurrency hammer tests and fail on inversions the static pass
  cannot see.
* **Deep invariant validators** (``repro check --deep``) — runtime
  structural audits of built B+-trees, slotted heap pages, geohash
  circle covers, the forward↔inverted index pair, and quadtrees.
"""

from .deep import DeepCheckReport, run_deep_checks
from .driver import (
    DEFAULT_BASELINE,
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from .findings import META_RULE, Finding
from .invariants import (
    InvariantViolation,
    validate_block_headers,
    validate_bptree,
    validate_cover_soundness,
    validate_forward_inverted,
    validate_heap_pages,
    validate_quadtree,
)
from .annotations import AnnotationMap, scan_annotations
from .registry import ModuleInfo, ProjectRule, Rule, all_rules, get_rule, rule_ids
from .reporters import render_json, render_sarif, render_text
from .suppressions import SuppressionMap, scan_suppressions

# Importing the rules modules registers RL001-RL007 and RL100-RL106.
from . import rules as _rules  # noqa: F401
from . import concurrency as _concurrency  # noqa: F401

__all__ = [
    "AnnotationMap",
    "DEFAULT_BASELINE",
    "DeepCheckReport",
    "Finding",
    "InvariantViolation",
    "LintReport",
    "META_RULE",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "SuppressionMap",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "scan_annotations",
    "run_deep_checks",
    "scan_suppressions",
    "validate_block_headers",
    "validate_bptree",
    "validate_cover_soundness",
    "validate_forward_inverted",
    "validate_heap_pages",
    "validate_quadtree",
    "write_baseline",
]
