"""In-source suppression comments.

Syntax (a real comment — occurrences inside string literals are ignored
because scanning is token-based)::

    # repro-lint: disable=RL004 reason=double-checked locking; GIL-atomic read
    # repro-lint: disable=RL001,RL002 reason=fixture reproducing the old bug
    # repro-lint: disable=all reason=generated file

A trailing comment suppresses findings on its own line; a comment that
stands alone on a line suppresses the next source line.  The ``reason=``
justification is **mandatory**: a suppression without one does not
suppress anything and is itself reported as an :data:`~.findings.META_RULE`
finding, so unjustified silencing can never slip through review.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .findings import META_RULE, Finding

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,]+)"
    r"(?:\s+reason=(?P<reason>.*))?")

#: Wildcard marker meaning "all rules" in a suppression's rule set.
ALL_RULES = "*"


@dataclass
class SuppressionMap:
    """Per-line suppressed rule ids plus malformed-suppression findings."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    malformed: List[Finding] = field(default_factory=list)

    def suppresses(self, line: int, rule: str) -> bool:
        if rule == META_RULE:
            return False
        rules = self.by_line.get(line)
        if not rules:
            return False
        return rule in rules or ALL_RULES in rules


def _comment_tokens(source: str) -> List[Tuple[int, int, str, str]]:
    """``(line, col, text, line_source)`` for every COMMENT token.

    Tokenisation errors (the linter may be pointed at broken files) yield
    whatever comments were seen before the error.
    """
    out: List[Tuple[int, int, str, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                out.append((token.start[0], token.start[1], token.string,
                            token.line))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out


def scan_suppressions(source: str, path: str) -> SuppressionMap:
    """Parse every ``repro-lint`` comment in ``source``."""
    result = SuppressionMap()
    for line, col, text, line_source in _comment_tokens(source):
        match = _PATTERN.search(text)
        if match is None:
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            result.malformed.append(Finding(
                rule=META_RULE, path=path, line=line, col=col,
                message="suppression without a reason= justification "
                        "(ignored); write '# repro-lint: disable=RULE "
                        "reason=<why>'"))
            continue
        rules = {ALL_RULES if r.strip().lower() == "all" else r.strip()
                 for r in match.group("rules").split(",") if r.strip()}
        if not rules:
            continue
        # A standalone comment governs the next line; a trailing comment
        # governs its own line.
        standalone = line_source[:col].strip() == ""
        target = line + 1 if standalone else line
        result.by_line.setdefault(target, set()).update(rules)
    return result
