"""Generation lifecycle: states, immutable set snapshots, pinning.

A generation moves through exactly one forward path::

    ACTIVE ──> COMPACTING ──> SUPERSEDED ──> REMOVED
                   │
                   └──> ACTIVE          (compaction aborted)

``ACTIVE`` generations serve reads and are eligible compaction inputs;
``COMPACTING`` marks the inputs of an in-flight merge (still serving
reads, no longer eligible for another plan); ``SUPERSEDED`` means the
merged replacement is committed and this generation left the current
set; ``REMOVED`` means its files are reclaimed.  Transitions outside
the diagram raise :class:`GenerationLifecycleError` — the state machine
is how the multi-step background merge stays auditable.

Reads never walk a mutable generation list.  A
:class:`GenerationRegistry` owns the **current** immutable
:class:`GenerationSet` (a tuple plus an epoch number); readers
:meth:`~GenerationRegistry.pin` the set for the duration of a query
(extending the watermark idea of :mod:`repro.ingest.live` from "which
LSNs are visible" to "which generations exist"), and a compaction
commit :meth:`~GenerationRegistry.swap`\\ s in a new tuple atomically —
an in-flight reader keeps its pinned tuple, so it can never observe a
half-swapped set.  Superseded generations carry a reclaim callback
(delete the generation directory, drop the DFS files) that the registry
runs only once no pinned epoch can still reach them.
"""

from __future__ import annotations

import enum
import threading
import weakref
from contextlib import contextmanager
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)


class GenerationLifecycleError(RuntimeError):
    """An illegal state transition or registry misuse."""


class GenerationState(enum.Enum):
    """Where one generation sits in its compaction lifecycle."""

    ACTIVE = "active"
    COMPACTING = "compacting"
    SUPERSEDED = "superseded"
    REMOVED = "removed"


#: Legal transitions (see the module docstring's diagram).
_TRANSITIONS: Dict[GenerationState, Tuple[GenerationState, ...]] = {
    GenerationState.ACTIVE: (GenerationState.COMPACTING,
                             GenerationState.SUPERSEDED),
    GenerationState.COMPACTING: (GenerationState.ACTIVE,
                                 GenerationState.SUPERSEDED),
    GenerationState.SUPERSEDED: (GenerationState.REMOVED,),
    GenerationState.REMOVED: (),
}


def advance_state(current: GenerationState,
                  target: GenerationState) -> GenerationState:
    """Validate ``current -> target`` and return ``target``."""
    if target not in _TRANSITIONS[current]:
        raise GenerationLifecycleError(
            f"illegal generation transition {current.value} -> {target.value}")
    return target


class GenerationSet:
    """One immutable snapshot of the live generations: a tuple of items
    plus the epoch at which it became current."""

    __slots__ = ("epoch", "items")

    def __init__(self, epoch: int, items: Tuple[Any, ...]) -> None:
        self.epoch = epoch
        self.items = items

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def __repr__(self) -> str:
        return f"GenerationSet(epoch={self.epoch}, items={len(self.items)})"


class PinnedGenerations:
    """A pin on one :class:`GenerationSet`.

    Constructed by :meth:`GenerationRegistry.pin`; call :meth:`release`
    (or let it be garbage collected — a finalizer releases leaked pins)
    once the reader is done, so reclamation of superseded generations
    can proceed.
    """

    def __init__(self, registry: "GenerationRegistry",
                 snapshot: GenerationSet) -> None:
        self._registry = registry
        self.snapshot = snapshot
        self._released = False
        self._finalizer = weakref.finalize(
            self, registry._unpin_epoch, snapshot.epoch)

    @property
    def items(self) -> Tuple[Any, ...]:
        return self.snapshot.items

    @property
    def epoch(self) -> int:
        return self.snapshot.epoch

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._finalizer()  # runs registry._unpin_epoch exactly once

    def __enter__(self) -> "PinnedGenerations":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


class _Retired:
    """One superseded item awaiting reclamation."""

    __slots__ = ("item", "reclaim", "retire_epoch")

    def __init__(self, item: Any, reclaim: Optional[Callable[[], None]],
                 retire_epoch: int) -> None:
        self.item = item
        self.reclaim = reclaim
        self.retire_epoch = retire_epoch


class GenerationRegistry:
    """Owner of the current :class:`GenerationSet` plus the deferred
    reclaim queue.  Thread-safe: ``repro top`` drives appends (and thus
    compaction steps) from a worker thread while the dashboard thread
    reads status.
    """

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._lock = threading.RLock()
        self._current = GenerationSet(0, tuple(items))  # guarded-by: _lock
        # epoch -> live pin count
        self._pins: Dict[int, int] = {}  # guarded-by: _lock
        self._retired: List[_Retired] = []  # guarded-by: _lock
        self.reclaimed_total = 0  # guarded-by: _lock

    # -- reading ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._current.epoch

    @property
    def items(self) -> Tuple[Any, ...]:
        """The current item tuple (itself immutable, so safe to hand out
        without a pin — but files it references may be reclaimed unless
        the caller pins)."""
        with self._lock:
            return self._current.items

    def __len__(self) -> int:
        with self._lock:
            return len(self._current.items)

    def __iter__(self) -> Iterator[Any]:
        with self._lock:
            return iter(self._current.items)

    def pin(self) -> PinnedGenerations:
        """Pin the current set; reclamation of anything it references is
        deferred until the pin is released."""
        with self._lock:
            snapshot = self._current
            self._pins[snapshot.epoch] = self._pins.get(snapshot.epoch, 0) + 1
            return PinnedGenerations(self, snapshot)

    @contextmanager
    def pinned(self) -> Iterator[Tuple[Any, ...]]:
        """``with registry.pinned() as items:`` — the query-path idiom."""
        pin = self.pin()
        try:
            yield pin.items
        finally:
            pin.release()

    def pin_count(self) -> int:
        with self._lock:
            return sum(self._pins.values())

    # -- mutation -----------------------------------------------------------

    def swap(self, items: Sequence[Any],
             retired: Iterable[Tuple[Any, Optional[Callable[[], None]]]] = ()
             ) -> GenerationSet:
        """Install ``items`` as the new current set (atomically — one
        reference assignment under the lock) and queue ``retired``
        ``(item, reclaim_callback)`` pairs for deferred reclamation.
        Returns the new set."""
        with self._lock:
            epoch = self._current.epoch + 1
            self._current = GenerationSet(epoch, tuple(items))
            for item, reclaim in retired:
                self._retired.append(_Retired(item, reclaim, epoch))
            self._drain_locked()
            return self._current

    def append(self, item: Any) -> GenerationSet:
        """Swap in ``current + (item,)`` — the flush/ingest fast path."""
        with self._lock:
            return self.swap(self._current.items + (item,))

    # -- reclamation --------------------------------------------------------

    def pending_reclaim(self) -> int:
        with self._lock:
            return len(self._retired)

    def drain(self) -> int:
        """Reclaim every retired item no pinned epoch can still reach;
        returns how many were reclaimed."""
        with self._lock:
            return self._drain_locked()

    def _unpin_epoch(self, epoch: int) -> None:
        with self._lock:
            count = self._pins.get(epoch, 0) - 1
            if count > 0:
                self._pins[epoch] = count
            else:
                self._pins.pop(epoch, None)
            self._drain_locked()

    def _drain_locked(self) -> int:
        # An item retired at swap-to-epoch E is visible only to sets
        # with epoch < E; it is reclaimable once no pinned epoch is
        # below E.  (Callers already hold the lock; re-entering the
        # RLock here keeps the discipline checkable.)
        with self._lock:
            min_pinned = min(self._pins) if self._pins else None
            reclaimed = 0
            remaining: List[_Retired] = []
            for record in self._retired:
                if (min_pinned is not None
                        and min_pinned < record.retire_epoch):
                    remaining.append(record)
                    continue
                if record.reclaim is not None:
                    record.reclaim()
                reclaimed += 1
            self._retired = remaining
            self.reclaimed_total += reclaimed
            return reclaimed
