"""Compaction policies: which generations to merge, and into what tier.

Policies are pure functions over :class:`GenerationInfo` metadata — no
I/O, no index handles — so they are unit-testable in isolation and the
same policy drives both the batch
(:class:`~repro.index.generations.GenerationalIndex`) and real-time
(:class:`~repro.ingest.service.IngestService`) layers.

Two shapes are provided:

* :class:`SizeTieredPolicy` (default) — generations of similar age
  accumulate in a tier; once a tier holds ``min_inputs`` of them, the
  oldest ``max_inputs`` merge into one generation of the next tier.
  Write amplification stays low (each post is rewritten roughly once
  per tier) at the cost of transiently holding several generations per
  tier — the classic size-tiered trade.
* :class:`LeveledPolicy` — every level above 0 holds at most one
  generation; level 0 accumulates ``level0_trigger`` flushes and then
  the whole level (plus the next level's resident generation, if any)
  merges upward.  Read amplification is tightest (≤ one generation per
  level) at the cost of rewriting the resident generation on every
  promotion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class GenerationInfo:
    """The policy-visible metadata of one live generation."""

    number: int
    tier: int
    seq: int            # global creation order (monotone across tiers)
    size_bytes: int
    post_count: int


@dataclass(frozen=True)
class CompactionPlan:
    """One unit of compaction the policy wants executed: merge
    ``inputs`` (generation numbers, oldest first) into a single new
    generation at ``output_tier``."""

    inputs: Tuple[int, ...]
    output_tier: int
    reason: str
    input_posts: int
    input_bytes: int

    def describe(self) -> str:
        gens = ", ".join(f"gen-{number:05d}" for number in self.inputs)
        return (f"merge {len(self.inputs)} generations [{gens}] "
                f"-> tier {self.output_tier} "
                f"({self.input_posts} posts, {self.input_bytes} bytes): "
                f"{self.reason}")


class CompactionPolicy:
    """Interface: inspect the live generation metadata, return the next
    plan (or ``None`` when the shape is already acceptable)."""

    name = "abstract"

    def plan(self, infos: Sequence[GenerationInfo]
             ) -> Optional[CompactionPlan]:
        raise NotImplementedError


def _by_tier(infos: Sequence[GenerationInfo]
             ) -> Dict[int, List[GenerationInfo]]:
    tiers: Dict[int, List[GenerationInfo]] = {}
    for info in infos:
        tiers.setdefault(info.tier, []).append(info)
    for members in tiers.values():
        members.sort(key=lambda info: info.seq)
    return tiers


def _make_plan(inputs: Sequence[GenerationInfo], output_tier: int,
               reason: str) -> CompactionPlan:
    return CompactionPlan(
        inputs=tuple(info.number for info in inputs),
        output_tier=output_tier,
        reason=reason,
        input_posts=sum(info.post_count for info in inputs),
        input_bytes=sum(info.size_bytes for info in inputs),
    )


class SizeTieredPolicy(CompactionPolicy):
    """Merge a tier once it holds ``min_inputs`` generations, taking at
    most ``max_inputs`` of its oldest members.  Lower tiers are checked
    first: they hold the freshest, smallest generations, so merging
    them retires the most lookup overhead per byte rewritten."""

    name = "tiered"

    def __init__(self, min_inputs: int = 4, max_inputs: int = 8) -> None:
        if min_inputs < 2:
            raise ValueError(f"min_inputs must be >= 2: {min_inputs}")
        if max_inputs < min_inputs:
            raise ValueError(f"max_inputs {max_inputs} below "
                             f"min_inputs {min_inputs}")
        self.min_inputs = min_inputs
        self.max_inputs = max_inputs

    def plan(self, infos: Sequence[GenerationInfo]
             ) -> Optional[CompactionPlan]:
        for tier, members in sorted(_by_tier(infos).items()):
            if len(members) >= self.min_inputs:
                chosen = members[:self.max_inputs]
                return _make_plan(
                    chosen, tier + 1,
                    f"tier {tier} holds {len(members)} generations "
                    f"(trigger {self.min_inputs})")
        return None


class LeveledPolicy(CompactionPolicy):
    """Level 0 accumulates flushes; every level above it holds at most
    one resident generation.  Overflow at any level merges the whole
    level plus the next level's resident into one generation there."""

    name = "leveled"

    def __init__(self, level0_trigger: int = 4) -> None:
        if level0_trigger < 2:
            raise ValueError(
                f"level0_trigger must be >= 2: {level0_trigger}")
        self.level0_trigger = level0_trigger

    def plan(self, infos: Sequence[GenerationInfo]
             ) -> Optional[CompactionPlan]:
        tiers = _by_tier(infos)
        for level, members in sorted(tiers.items()):
            limit = self.level0_trigger if level == 0 else 1
            if len(members) <= limit:
                continue
            inputs = list(members)
            inputs.extend(tiers.get(level + 1, []))
            inputs.sort(key=lambda info: info.seq)
            return _make_plan(
                inputs, level + 1,
                f"level {level} holds {len(members)} generations "
                f"(limit {limit}); promoting into level {level + 1}")
        return None


def make_policy(mode: str, *, min_inputs: int = 4, max_inputs: int = 8,
                level0_trigger: int = 4) -> CompactionPolicy:
    """Policy factory used by :class:`~.scheduler.CompactionConfig`."""
    if mode == "tiered":
        return SizeTieredPolicy(min_inputs=min_inputs, max_inputs=max_inputs)
    if mode == "leveled":
        return LeveledPolicy(level0_trigger=level0_trigger)
    raise ValueError(f"unknown compaction mode {mode!r} "
                     "(expected 'tiered' or 'leveled')")
