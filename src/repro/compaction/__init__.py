"""Tiered background compaction over generational indexes.

PR 5's ingest path flushes the memtable into ever-more block-format
generations; every query then pays a merge cost linear in the
generation count.  This package is the LSM answer: a *policy* decides
which generations to merge (:mod:`.policy` — size-tiered by default,
leveled as an option), a *lifecycle* layer makes the merge safe to run
concurrently with reads (:mod:`.lifecycle` — immutable generation-set
snapshots with epoch/refcount pinning, so a query never observes a
half-swapped set and superseded files are reclaimed only once
unpinned), and a *scheduler* interleaves bounded units of merge work
with appends and queries, rate-limited against ingest pressure
(:mod:`.scheduler`).

The batch layer (:class:`~repro.index.generations.GenerationalIndex`)
and the real-time layer (:class:`~repro.ingest.service.IngestService`)
both resolve reads through this package's
:class:`~.lifecycle.GenerationRegistry`; the crash-safe on-disk commit
protocol (manifest schema v2 with tier/seq/lineage metadata, atomic
tmp+rename, orphan-output discard on recovery) lives in the ingest
service and is proven by the compaction kill-point matrix in
``tests/test_compaction_recovery.py``.
"""

from .lifecycle import (GenerationLifecycleError, GenerationRegistry,
                        GenerationSet, GenerationState, PinnedGenerations)
from .policy import (CompactionPlan, CompactionPolicy, GenerationInfo,
                     LeveledPolicy, SizeTieredPolicy, make_policy)
from .scheduler import CompactionConfig, CompactionScheduler, CompactionStats

__all__ = [
    "CompactionConfig",
    "CompactionPlan",
    "CompactionPolicy",
    "CompactionScheduler",
    "CompactionStats",
    "GenerationInfo",
    "GenerationLifecycleError",
    "GenerationRegistry",
    "GenerationSet",
    "GenerationState",
    "LeveledPolicy",
    "PinnedGenerations",
    "SizeTieredPolicy",
    "make_policy",
]
