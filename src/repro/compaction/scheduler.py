"""The incremental background compaction scheduler.

There is no compaction thread: the scheduler owns a small state
machine and performs **one bounded unit of work per step**, and the
ingest service calls :meth:`CompactionScheduler.maybe_step` after each
append — so merge work interleaves with the foreground workload
instead of stalling it.  The units:

1. **plan** — consult the policy over the live generation metadata;
   if it returns a plan, mark the inputs ``COMPACTING``;
2. **load** — read one input generation's retained posts (one
   generation per step, so a wide merge spreads across many appends);
3. **commit** — rebuild the merged posts into the output generation,
   commit it, and retire the inputs (the one heavyweight unit — the
   same cost as a flush, which already runs inline on the write path);
4. **reclaim** — drop retired generations' files once no pinned reader
   can reach them.

Rate limiting: new compactions do not *start* while the active
memtable is above ``backpressure_fraction`` of its flush threshold
(ingest is already struggling; adding merge work would make it worse),
but an in-flight merge keeps progressing — its units are bounded, and
abandoning it would waste the work.

The scheduler is deliberately ignorant of manifests, directories and
DFS files: it drives an *executor* (the ingest service, or the
in-memory adapter of :class:`~repro.index.generations.GenerationalIndex`)
through the protocol documented on :class:`CompactionExecutor`.
Crash-safety therefore lives entirely in the executor's commit step.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .policy import CompactionPlan, CompactionPolicy, GenerationInfo, \
    make_policy


@dataclass
class CompactionConfig:
    """Policy and pacing knobs (see docs/INGESTION.md § Compaction)."""

    enabled: bool = True
    mode: str = "tiered"             # "tiered" | "leveled"
    min_inputs: int = 4              # size-tiered: tier occupancy trigger
    max_inputs: int = 8              # size-tiered: widest single merge
    level0_trigger: int = 4          # leveled: level-0 occupancy trigger
    backpressure_fraction: float = 0.75  # memtable fullness that defers plans
    steps_per_append: int = 1        # work units attempted per append

    def __post_init__(self) -> None:
        self.build_policy()  # validates mode and the per-mode knobs
        if not 0.0 < self.backpressure_fraction <= 1.0:
            raise ValueError("backpressure_fraction must be in (0, 1]: "
                             f"{self.backpressure_fraction}")
        if self.steps_per_append < 1:
            raise ValueError(
                f"steps_per_append must be >= 1: {self.steps_per_append}")

    def build_policy(self) -> CompactionPolicy:
        return make_policy(self.mode, min_inputs=self.min_inputs,
                           max_inputs=self.max_inputs,
                           level0_trigger=self.level0_trigger)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "mode": self.mode,
            "min_inputs": self.min_inputs,
            "max_inputs": self.max_inputs,
            "level0_trigger": self.level0_trigger,
            "backpressure_fraction": self.backpressure_fraction,
            "steps_per_append": self.steps_per_append,
        }


class CompactionExecutor:
    """What the scheduler needs from the layer that owns generations.

    Implementations: :class:`repro.ingest.service.IngestService` (the
    durable, crash-safe one) and
    :class:`repro.index.generations.GenerationalIndex` (in-memory batch
    layer).  All methods run on the caller's thread.
    """

    def generation_infos(self) -> Sequence[GenerationInfo]:
        """Metadata of every generation eligible for planning (i.e. in
        the ``ACTIVE`` state)."""
        raise NotImplementedError

    def begin_compaction(self, plan: CompactionPlan) -> None:
        """Mark the plan's inputs ``COMPACTING``."""
        raise NotImplementedError

    def abort_compaction(self, plan: CompactionPlan) -> None:
        """Return the plan's inputs to ``ACTIVE`` (merge abandoned)."""
        raise NotImplementedError

    def load_generation_posts(self, number: int) -> Sequence[Any]:
        """The retained posts of one input generation."""
        raise NotImplementedError

    def commit_compaction(self, plan: CompactionPlan,
                          posts: Sequence[Any]) -> int:
        """Materialise + commit the merged generation, retire the
        inputs; returns the output generation number."""
        raise NotImplementedError

    def reclaim(self) -> int:
        """Reclaim retired generations that are no longer pinned;
        returns how many were reclaimed."""
        raise NotImplementedError

    def ingest_pressure(self) -> float:
        """Foreground write pressure in ``[0, 1]`` (memtable fullness
        relative to its flush threshold)."""
        raise NotImplementedError


@dataclass
class CompactionStats:
    """Lifetime counters of one scheduler."""

    plans_started: int = 0
    compactions_committed: int = 0
    generations_merged: int = 0
    posts_merged: int = 0
    steps: int = 0
    deferred_backpressure: int = 0
    last_output: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "plans_started": self.plans_started,
            "compactions_committed": self.compactions_committed,
            "generations_merged": self.generations_merged,
            "posts_merged": self.posts_merged,
            "steps": self.steps,
            "deferred_backpressure": self.deferred_backpressure,
            "last_output": self.last_output,
        }


class _Task:
    """One in-flight merge: the plan plus incremental load progress."""

    __slots__ = ("plan", "pending", "posts")

    def __init__(self, plan: CompactionPlan) -> None:
        self.plan = plan
        self.pending: List[int] = list(plan.inputs)
        self.posts: List[Any] = []


class CompactionScheduler:
    """Drives one executor through incremental merge work units."""

    def __init__(self, executor: CompactionExecutor,
                 config: Optional[CompactionConfig] = None) -> None:
        self.executor = executor
        self.config = config or CompactionConfig()
        self.policy = self.config.build_policy()
        # Steps run on the append path while ``repro top`` polls status
        # from its dashboard thread.  Re-entrant because a step's
        # executor callback can legitimately read scheduler state (the
        # service's gauge update asks for debt() mid-commit).
        self._lock = threading.RLock()
        self.stats = CompactionStats()   # guarded-by: _lock
        self._task: Optional[_Task] = None  # guarded-by: _lock

    # -- introspection ------------------------------------------------------

    @property
    def in_flight(self) -> Optional[CompactionPlan]:
        with self._lock:
            return self._task.plan if self._task is not None else None

    def plan_preview(self) -> Optional[CompactionPlan]:
        """What the policy would do next (the ``--dry-run`` output);
        the in-flight plan when a merge is mid-way."""
        with self._lock:
            if self._task is not None:
                return self._task.plan
            return self.policy.plan(self.executor.generation_infos())

    def debt(self) -> int:
        """How many generations the policy wants merged right now if it
        could run to completion — the health-probe backlog measure."""
        infos = {info.number: info for info in
                 self.executor.generation_infos()}
        with self._lock:
            if self._task is not None:
                for number in self._task.plan.inputs:
                    infos.pop(number, None)
        merged = 0
        # Simulate planning over shrinking metadata: each round replaces
        # the plan's inputs with a synthetic merged generation.
        synthetic = -1
        for _round in range(64):  # defensive bound; real depth is tiny
            plan = self.policy.plan(list(infos.values()))
            if plan is None:
                break
            merged += len(plan.inputs)
            chosen = [infos.pop(number) for number in plan.inputs]
            infos[synthetic] = GenerationInfo(
                number=synthetic, tier=plan.output_tier,
                seq=max(info.seq for info in chosen),
                size_bytes=sum(info.size_bytes for info in chosen),
                post_count=sum(info.post_count for info in chosen))
            synthetic -= 1
        return merged

    # -- stepping -----------------------------------------------------------

    def maybe_step(self) -> int:
        """The per-append hook: up to ``steps_per_append`` work units,
        deferring *new* plans under ingest pressure.  Returns the number
        of units actually performed."""
        if not self.config.enabled:
            return 0
        performed = 0
        with self._lock:
            for _ in range(self.config.steps_per_append):
                if (self._task is None and self.executor.ingest_pressure()
                        >= self.config.backpressure_fraction):
                    self.stats.deferred_backpressure += 1
                    break
                if not self.step():
                    break
                performed += 1
        return performed

    def step(self) -> bool:
        """One bounded unit of work; returns False when idle with
        nothing to plan (reclaim still drained)."""
        with self._lock:
            self.stats.steps += 1
            if self._task is None:
                plan = self.policy.plan(self.executor.generation_infos())
                if plan is None:
                    self.executor.reclaim()
                    return False
                self.executor.begin_compaction(plan)
                self._task = _Task(plan)
                self.stats.plans_started += 1
                return True
            task = self._task
            if task.pending:
                number = task.pending.pop(0)
                try:
                    task.posts.extend(
                        self.executor.load_generation_posts(number))
                except Exception:
                    self._task = None
                    self.executor.abort_compaction(task.plan)
                    raise
                return True
            try:
                output = self.executor.commit_compaction(task.plan,
                                                         task.posts)
            finally:
                # A crash inside commit abandons the in-memory service;
                # a non-crash failure must not leave a phantom in-flight
                # task.
                self._task = None
            self.stats.compactions_committed += 1
            self.stats.generations_merged += len(task.plan.inputs)
            self.stats.posts_merged += len(task.posts)
            self.stats.last_output = output
            self.executor.reclaim()
            return True

    def run_until_idle(self, max_steps: int = 10_000) -> int:
        """Drive to quiescence (the manual ``repro compact`` path);
        returns the number of compactions committed."""
        with self._lock:
            before = self.stats.compactions_committed
        for _ in range(max_steps):
            if not self.step():
                break
        else:
            raise RuntimeError(
                f"compaction did not quiesce within {max_steps} steps")
        with self._lock:
            return self.stats.compactions_committed - before

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.config.enabled,
                "mode": self.config.mode,
                "in_flight": (self._task.plan.describe()
                              if self._task is not None else None),
                "debt": self.debt(),
                **self.stats.as_dict(),
            }
