"""Kill-point injection for crash-recovery testing.

The recovery guarantees of :mod:`repro.ingest` are only worth anything
if they are demonstrated under crashes at the *worst* moments: halfway
through a WAL append, after a record is written but before its fsync,
mid-way through materialising a flushed generation, and after the flush
commit but before the WAL segment is truncated.  :class:`Failpoints`
lets tests arm named crash points inside the write path; the code under
test asks ``hit(name)`` at each point and raises
:class:`SimulatedCrash` when the armed point fires.

A simulated crash abandons every in-memory object (memtable, live
index, cluster); only the ingest directory on disk survives, exactly
like a process kill.  The kill-point matrix in
``tests/test_ingest_recovery.py`` drives one ingest script through every
point and asserts the recovered system answers queries byte-identically
to an uncrashed run.
"""

from __future__ import annotations

from typing import Dict, List


#: The crash points the ingest write path exposes, in pipeline order.
KILL_POINTS = (
    "wal.append.mid",        # torn tail: half the record frame reaches disk
    "wal.append.pre_sync",   # record written but the fsync never happens
    "ingest.flush.mid",      # generation partially materialised, no commit
    "ingest.flush.pre_truncate",  # committed, WAL segment not yet deleted
    "compaction.merge.mid",  # merged generation partially materialised
    "compaction.pre_commit",  # merge output complete, manifest not committed
    "compaction.pre_reclaim",  # committed, superseded dirs not yet removed
)


class SimulatedCrash(RuntimeError):
    """Raised when an armed failpoint fires; stands in for a process
    kill, so nothing downstream of the raise may run."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at failpoint {point!r}")
        self.point = point


class Failpoints:
    """Named one-shot crash points.

    ``arm(name, skip=n)`` schedules the point to fire on its ``n+1``-th
    hit; ``hit(name)`` consumes one hit and returns whether the caller
    should crash now.  Unarmed points cost one dict lookup.
    """

    def __init__(self) -> None:
        self._armed: Dict[str, int] = {}
        self.fired: List[str] = []

    def arm(self, point: str, skip: int = 0) -> None:
        if skip < 0:
            raise ValueError(f"skip must be >= 0: {skip}")
        self._armed[point] = skip

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def hit(self, point: str) -> bool:
        """Consume one hit of ``point``; True when the armed countdown
        reaches zero (the caller must then raise
        :class:`SimulatedCrash`)."""
        remaining = self._armed.get(point)
        if remaining is None:
            return False
        if remaining > 0:
            self._armed[point] = remaining - 1
            return False
        del self._armed[point]
        self.fired.append(point)
        return True

    def trip(self, point: str) -> None:
        """``hit`` + raise in one call, for points with no special
        on-crash byte handling."""
        if self.hit(point):
            raise SimulatedCrash(point)


#: Shared no-op instance for production paths (nothing ever armed).
NO_FAILPOINTS = Failpoints()
