"""The mutable in-memory delta index (the LSM memtable).

Holds the posts that have been WAL-logged but not yet flushed into an
immutable generation.  :meth:`MemIndex.add` mirrors
:class:`~repro.index.builder.IndexMapper` exactly — same analyzer
dispatch (pre-analysed ``word_bag`` vs raw-text term frequencies), same
geohash cell, same ``(timestamp, tf)`` posting shape — so a flush that
rebuilds the same posts through the MapReduce builder produces
answer-identical postings, which is what the LiveIndex parity test
asserts.

Every posting is tagged with the LSN of the append that produced it;
reads filter on ``lsn <= max_lsn`` so :class:`~.live.LiveIndex` can pin
a watermark at query entry and see a stable view while appends land
mid-plan.  The memtable exposes the same
``cover``/``postings``/``postings_for_query`` surface as
:class:`~repro.index.hybrid.HybridIndex`, making it a
``PostingsSource`` the pipeline operators run against unchanged.
"""

from __future__ import annotations

import bisect
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model import Post
from ..geo import geohash as geohash_mod
from ..geo.cover import circle_cover
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.builder import IndexConfig
from ..index.hybrid import IndexStats
from ..index.postings import Posting
from ..text.analyzer import Analyzer


class MemIndex:
    """Geohash-cell × term postings plus an arrival-ordered post log.

    Not thread-safe; the ingest service serialises writes.  Once
    :meth:`seal` is called the memtable refuses further appends and only
    serves reads until its flush completes.
    """

    def __init__(self, config: IndexConfig, analyzer: Analyzer) -> None:
        self.config = config
        self.analyzer = analyzer
        self.stats = IndexStats()
        # (cell, term) -> tid-sorted entries of (tid, tf, lsn).
        self._postings: Dict[Tuple[str, str], List[Tuple[int, int, int]]] = {}
        self._posts: List[Tuple[int, Post]] = []  # arrival (= LSN) order
        self._sealed = False
        self._max_lsn = 0
        self._size_bytes = 0
        self.created_at = time.time()

    # -- writes -------------------------------------------------------------

    def add(self, post: Post, lsn: int) -> None:
        """Index one WAL-logged post under its LSN."""
        if self._sealed:
            raise RuntimeError("memtable is sealed")
        if lsn <= self._max_lsn:
            raise ValueError(
                f"LSN {lsn} not above memtable high-water mark {self._max_lsn}")
        self._max_lsn = lsn
        self._posts.append((lsn, post))
        self._size_bytes += sys.getsizeof(post.text) + 64
        if post.words:
            frequencies = post.word_bag()
        else:
            frequencies = self.analyzer.term_frequencies(post.text)
        if not frequencies:
            return  # still replayable/flushable, just not indexed
        lat, lon = post.location
        cell = geohash_mod.encode(lat, lon, self.config.geohash_length)
        for term, tf in frequencies.items():
            entries = self._postings.setdefault((cell, term), [])
            # tids are timestamps (== sids) and globally unique, but
            # out-of-order arrival is legal — keep the list tid-sorted.
            bisect.insort(entries, (post.timestamp, tf, lsn))
            self._size_bytes += 48

    def seal(self) -> None:
        """Freeze the memtable for flushing; reads keep working."""
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- reads --------------------------------------------------------------

    @property
    def geohash_length(self) -> int:
        return self.config.geohash_length

    @property
    def max_lsn(self) -> int:
        """Highest LSN indexed so far (0 when empty)."""
        return self._max_lsn

    @property
    def post_count(self) -> int:
        return len(self._posts)

    def size_bytes(self) -> int:
        """Rough in-memory footprint, the flush-threshold input."""
        return self._size_bytes

    def age_seconds(self) -> float:
        """Wall-clock time since this memtable was created — a stuck or
        starved flush shows up here (the memtable health probe)."""
        return max(0.0, time.time() - self.created_at)

    def posts(self, max_lsn: Optional[int] = None) -> List[Post]:
        """The buffered posts in LSN order, optionally watermarked."""
        if max_lsn is None:
            return [post for _lsn, post in self._posts]
        return [post for lsn, post in self._posts if lsn <= max_lsn]

    def lsn_posts(self) -> List[Tuple[int, Post]]:
        """``(lsn, post)`` pairs in LSN order, for invariant validation."""
        return list(self._posts)

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km, self.config.geohash_length,
                            metric)

    def postings(self, cell: str, term: str,
                 max_lsn: Optional[int] = None) -> Sequence[Posting]:
        """tid-sorted ``(tid, tf)`` entries visible at ``max_lsn``."""
        entries = self._postings.get((cell, term))
        if not entries:
            return ()
        if max_lsn is None:
            visible = tuple((tid, tf) for tid, tf, _lsn in entries)
        else:
            visible = tuple((tid, tf) for tid, tf, lsn in entries
                            if lsn <= max_lsn)
        if not visible:
            return ()
        self.stats.postings_fetches += 1
        self.stats.postings_entries_read += len(visible)
        return visible

    def postings_fetch_count(self) -> int:
        return self.stats.postings_fetches

    def postings_for_query(self, cells: List[str], terms: List[str],
                           max_lsn: Optional[int] = None
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        result: Dict[str, Dict[str, Sequence[Posting]]] = {}
        for cell in cells:
            per_term: Dict[str, Sequence[Posting]] = {}
            for term in terms:
                postings = self.postings(cell, term, max_lsn)
                if postings:
                    per_term[term] = postings
            if per_term:
                result[cell] = per_term
        return result

    def keys(self) -> List[Tuple[str, str]]:
        """All indexed ``(cell, term)`` pairs, for validators."""
        return sorted(self._postings)
