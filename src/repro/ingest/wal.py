"""Append-only, checksummed write-ahead log for real-time ingestion.

The paper's system is batch-built (Section IV-A); the real-time systems
it contrasts itself with in Section VII-B make single-tweet writes
durable *before* acknowledging them.  This module supplies that
durability primitive: every ingested post is appended to the active WAL
segment as one varint-framed record

    ``varint(lsn) · varint(len(payload)) · payload · crc32``

where the payload is the binary post codec below and the little-endian
CRC-32 covers everything before it.  Records carry an explicit
log-sequence number so replay can verify ordering; the CRC catches bit
rot; and a record cut short by a crash (a *torn tail*) is detected by
running out of bytes mid-frame — replay stops there, reports the torn
offset, and recovery truncates the segment back to its last complete
record.

Segments live in one directory as ``wal-00000001.log``, ``wal-…02.log``
…; :meth:`WriteAheadLog.rotate` seals the active segment (fsync + close)
and opens the next, which is how a flush carves off exactly the records
the sealed memtable holds.  Appends, fsyncs, rotations and replayed
records are counted in :class:`WALStats`, mirrored into an optional
:class:`~repro.storage.iostats.IOStats` (the storage layer's I/O ledger)
and the ``ingest.*`` metrics of :mod:`repro.obs`.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..core.model import EdgeKind, Post
from ..storage.iostats import IOStats
from .failpoints import NO_FAILPOINTS, Failpoints, SimulatedCrash

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

_CRC = struct.Struct("<I")
_LATLON = struct.Struct("<dd")

#: ``Post.kind`` wire codes (0 is "no interaction").
_KIND_CODES = {None: 0, EdgeKind.REPLY: 1, EdgeKind.FORWARD: 2}
_KIND_FROM_CODE = {code: kind for kind, code in _KIND_CODES.items()}


class WALError(RuntimeError):
    """Base class for WAL failures."""


class WALCorruptionError(WALError):
    """A complete record failed its CRC or ordering check — unlike a
    torn tail this is never produced by a clean crash, so replay refuses
    to guess and surfaces it."""


# -- varints ----------------------------------------------------------------

def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError(f"varints are unsigned: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


class _Truncated(Exception):
    """Internal: ran out of bytes mid-field (the torn-tail signal)."""


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode one varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise _Truncated
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise WALCorruptionError("varint longer than 64 bits")


# -- post payload codec -----------------------------------------------------

def encode_post(post: Post) -> bytes:
    """Binary payload for one post: ids and linkage as varints,
    coordinates as raw doubles, words and text length-prefixed."""
    out = bytearray()
    out.extend(encode_varint(post.sid))
    out.extend(encode_varint(post.uid))
    out.extend(_LATLON.pack(post.location[0], post.location[1]))
    out.extend(encode_varint(0 if post.ruid is None else post.ruid + 1))
    out.extend(encode_varint(0 if post.rsid is None else post.rsid + 1))
    out.append(_KIND_CODES[post.kind])
    out.extend(encode_varint(len(post.words)))
    for word in post.words:
        encoded = word.encode("utf-8")
        out.extend(encode_varint(len(encoded)))
        out.extend(encoded)
    text = post.text.encode("utf-8")
    out.extend(encode_varint(len(text)))
    out.extend(text)
    return bytes(out)


def decode_post(payload: bytes) -> Post:
    """Inverse of :func:`encode_post`."""
    try:
        offset = 0
        sid, offset = decode_varint(payload, offset)
        uid, offset = decode_varint(payload, offset)
        if offset + _LATLON.size > len(payload):
            raise _Truncated
        lat, lon = _LATLON.unpack_from(payload, offset)
        offset += _LATLON.size
        ruid_plus, offset = decode_varint(payload, offset)
        rsid_plus, offset = decode_varint(payload, offset)
        if offset >= len(payload):
            raise _Truncated
        kind_code = payload[offset]
        offset += 1
        kind = _KIND_FROM_CODE.get(kind_code)
        if kind_code and kind is None:
            raise WALCorruptionError(f"unknown interaction code {kind_code}")
        word_count, offset = decode_varint(payload, offset)
        words: List[str] = []
        for _ in range(word_count):
            length, offset = decode_varint(payload, offset)
            if offset + length > len(payload):
                raise _Truncated
            words.append(payload[offset:offset + length].decode("utf-8"))
            offset += length
        text_length, offset = decode_varint(payload, offset)
        if offset + text_length > len(payload):
            raise _Truncated
        text = payload[offset:offset + text_length].decode("utf-8")
        offset += text_length
    except _Truncated:
        raise WALCorruptionError(
            "post payload shorter than its own fields") from None
    if offset != len(payload):
        raise WALCorruptionError(
            f"{len(payload) - offset} trailing bytes after post payload")
    return Post(sid=sid, uid=uid, location=(lat, lon), words=tuple(words),
                text=text,
                ruid=None if ruid_plus == 0 else ruid_plus - 1,
                rsid=None if rsid_plus == 0 else rsid_plus - 1,
                kind=kind)


# -- record framing ---------------------------------------------------------

def encode_record(lsn: int, payload: bytes) -> bytes:
    """One WAL frame: varint lsn, varint length, payload, CRC-32."""
    head = encode_varint(lsn) + encode_varint(len(payload))
    body = head + payload
    return body + _CRC.pack(zlib.crc32(body))


def decode_record(data: bytes, offset: int) -> Tuple[int, bytes, int]:
    """Decode the frame starting at ``offset``.

    Returns ``(lsn, payload, next_offset)``; raises :class:`_Truncated`
    when the buffer ends mid-frame (torn tail) and
    :class:`WALCorruptionError` on a CRC mismatch.
    """
    start = offset
    lsn, offset = decode_varint(data, offset)
    length, offset = decode_varint(data, offset)
    if offset + length + _CRC.size > len(data):
        raise _Truncated
    payload = data[offset:offset + length]
    offset += length
    (stored_crc,) = _CRC.unpack_from(data, offset)
    offset += _CRC.size
    actual_crc = zlib.crc32(data[start:offset - _CRC.size])
    if stored_crc != actual_crc:
        raise WALCorruptionError(
            f"CRC mismatch at offset {start}: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}")
    return lsn, payload, offset


# -- accounting -------------------------------------------------------------

@dataclass
class WALStats:
    """Counters for one log instance's lifetime."""

    appends: int = 0
    fsyncs: int = 0
    rotations: int = 0
    bytes_written: int = 0
    replayed_records: int = 0
    torn_tails_repaired: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "appends": self.appends,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "bytes_written": self.bytes_written,
            "replayed_records": self.replayed_records,
            "torn_tails_repaired": self.torn_tails_repaired,
        }


@dataclass
class ReplayResult:
    """Outcome of scanning one segment."""

    path: str
    records: int = 0
    bytes_scanned: int = 0
    torn_tail: bool = False
    torn_offset: Optional[int] = None
    first_lsn: Optional[int] = None
    last_lsn: Optional[int] = None


def segment_name(number: int) -> str:
    return f"{SEGMENT_PREFIX}{number:08d}{SEGMENT_SUFFIX}"


def segment_number(name: str) -> int:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        raise WALError(f"not a WAL segment name: {name!r}")
    return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])


def replay_segment(path: str, *, repair_torn_tail: bool = False,
                   io: Optional[IOStats] = None
                   ) -> Tuple[List[Tuple[int, Post]], ReplayResult]:
    """Scan one segment into ``(lsn, post)`` pairs.

    A torn tail (crash mid-append) stops the scan at the last complete
    record; with ``repair_torn_tail`` the file is truncated back to that
    point so the segment can be appended to again.  CRC mismatches and
    non-monotone LSNs raise :class:`WALCorruptionError` — they indicate
    corruption, not a clean crash.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    result = ReplayResult(path=path)
    records: List[Tuple[int, Post]] = []
    offset = 0
    last_lsn: Optional[int] = None
    while offset < len(data):
        start = offset
        try:
            lsn, payload, offset = decode_record(data, offset)
        except _Truncated:
            result.torn_tail = True
            result.torn_offset = start
            break
        if last_lsn is not None and lsn <= last_lsn:
            raise WALCorruptionError(
                f"{path}: LSN {lsn} at offset {start} not above "
                f"predecessor {last_lsn}")
        last_lsn = lsn
        if result.first_lsn is None:
            result.first_lsn = lsn
        records.append((lsn, decode_post(payload)))
        if io is not None:
            io.record_read()
    result.records = len(records)
    result.bytes_scanned = offset if not result.torn_tail else result.torn_offset or 0
    result.last_lsn = last_lsn
    if result.torn_tail and repair_torn_tail:
        with open(path, "r+b") as handle:
            handle.truncate(result.torn_offset or 0)
            handle.flush()
            os.fsync(handle.fileno())
    return records, result


class WriteAheadLog:
    """The active write path: one directory of numbered segments.

    ``sync_every=1`` (the default) fsyncs after every append, so an
    acknowledged append is durable — the setting the kill-point matrix
    assumes.  Larger values batch fsyncs (group commit): acknowledged
    but unsynced records are lost by a crash, which is the documented
    trade-off, not a bug.
    """

    def __init__(self, directory: str, *, next_lsn: int = 1,
                 sync_every: int = 1, io: Optional[IOStats] = None,
                 failpoints: Optional[Failpoints] = None) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1: {sync_every}")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.stats = WALStats()
        self._io = io
        self._failpoints = failpoints if failpoints is not None else NO_FAILPOINTS
        self._sync_every = sync_every
        self._next_lsn = next_lsn
        self._pending = 0  # appends since the last fsync
        self._last_sync_wall = time.time()
        self._oldest_pending_wall: Optional[float] = None
        existing = self.segment_names()
        self._active_number = (segment_number(existing[-1]) if existing
                               else 1)
        self._open_active()

    # -- segment bookkeeping ------------------------------------------------

    def segment_names(self) -> List[str]:
        """Sorted segment file names currently on disk."""
        names = [name for name in os.listdir(self.directory)
                 if name.startswith(SEGMENT_PREFIX)
                 and name.endswith(SEGMENT_SUFFIX)]
        return sorted(names, key=segment_number)

    def segment_path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    @property
    def active_name(self) -> str:
        return segment_name(self._active_number)

    @property
    def active_path(self) -> str:
        return self.segment_path(self.active_name)

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def pending_appends(self) -> int:
        """Acknowledged appends not yet covered by an fsync — the
        records a crash would lose under ``sync_every > 1``."""
        return self._pending

    def sync_lag_seconds(self) -> float:
        """How long the oldest unsynced record has been waiting (0.0
        when everything is synced) — the WAL health probe's signal."""
        if self._pending == 0 or self._oldest_pending_wall is None:
            return 0.0
        return max(0.0, time.time() - self._oldest_pending_wall)

    def _open_active(self) -> None:
        self._file = open(self.active_path, "ab")
        self._synced_size = self._file.tell()

    # -- writes -------------------------------------------------------------

    def append(self, post: Post) -> int:
        """Durably append one post; returns its LSN.

        Raises :class:`~.failpoints.SimulatedCrash` at armed kill
        points, in which case the record is *not* acknowledged and the
        caller must re-append it after recovery.
        """
        lsn = self._next_lsn
        start = time.perf_counter()
        with obs.trace("wal.append", lsn=lsn):
            frame = encode_record(lsn, encode_post(post))
            if self._failpoints.hit("wal.append.mid"):
                # A torn write: the first half of the frame reaches disk
                # (fsynced, as if the partial page made it out), the rest
                # never does.
                self._file.write(frame[:max(1, len(frame) // 2)])
                self._file.flush()
                os.fsync(self._file.fileno())
                self._file.close()
                raise SimulatedCrash("wal.append.mid")
            self._file.write(frame)
            self._file.flush()
            if self._failpoints.hit("wal.append.pre_sync"):
                # Crash before the fsync: every byte since the last sync
                # is lost with the page cache.
                self._file.truncate(self._synced_size)
                self._file.close()
                raise SimulatedCrash("wal.append.pre_sync")
            self.stats.appends += 1
            self.stats.bytes_written += len(frame)
            if self._io is not None:
                self._io.record_write()
            obs.inc("ingest.wal_appends")
            self._next_lsn = lsn + 1
            self._pending += 1
            if self._oldest_pending_wall is None:
                self._oldest_pending_wall = time.time()
            if self._pending >= self._sync_every:
                self.sync()
        obs.observe("ingest.wal_append_seconds",
                    time.perf_counter() - start)
        return lsn

    def sync(self) -> None:
        """Flush and fsync the active segment."""
        start = time.perf_counter()
        with obs.trace("wal.fsync", pending=self._pending):
            self._file.flush()
            os.fsync(self._file.fileno())
            self._synced_size = self._file.tell()
            self._pending = 0
            self._last_sync_wall = time.time()
            self._oldest_pending_wall = None
            self.stats.fsyncs += 1
            obs.inc("ingest.wal_fsyncs")
        obs.observe("ingest.wal_fsync_seconds",
                    time.perf_counter() - start)

    def rotate(self) -> str:
        """Seal the active segment and open the next; returns the sealed
        segment's name."""
        sealed = self.active_name
        self.sync()
        self._file.close()
        self._active_number += 1
        self._open_active()
        self.stats.rotations += 1
        obs.inc("ingest.wal_rotations")
        return sealed

    def delete_segment(self, name: str) -> None:
        """Remove a sealed (flushed) segment file."""
        if name == self.active_name:
            raise WALError(f"refusing to delete the active segment {name}")
        path = self.segment_path(name)
        if os.path.exists(path):
            os.remove(path)

    def close(self) -> None:
        if not self._file.closed:
            if self._pending:
                self.sync()
            self._file.close()
