"""Real-time ingestion: WAL, memtable, flush-to-generation, recovery.

The batch half of the system (Section IV-A's periodic MapReduce
rebuild) lives in :mod:`repro.index`; this package adds the real-time
half the paper contrasts itself with in Section VII-B — an LSM-style
write path where posts become durable (WAL), immediately queryable
(MemIndex behind a LiveIndex facade), and eventually immutable
(flush through the existing index builder into a block-format
generation), with crash recovery by WAL replay.

See ``docs/INGESTION.md`` for the on-disk format and lifecycle.
"""

from .failpoints import KILL_POINTS, Failpoints, SimulatedCrash
from .live import LiveIndex, LiveSnapshot
from .memindex import MemIndex
from .service import (IngestConfig, IngestDirReport, IngestError,
                      IngestService, LiveBoundsManager, RecoveryReport,
                      inspect_ingest_dir, load_posts_file)
from .wal import (ReplayResult, WALCorruptionError, WALError, WALStats,
                  WriteAheadLog, decode_post, decode_record, encode_post,
                  encode_record, replay_segment)

__all__ = [
    "KILL_POINTS", "Failpoints", "SimulatedCrash",
    "LiveIndex", "LiveSnapshot", "MemIndex",
    "IngestConfig", "IngestDirReport", "IngestError", "IngestService",
    "LiveBoundsManager", "RecoveryReport",
    "inspect_ingest_dir", "load_posts_file",
    "ReplayResult", "WALCorruptionError", "WALError", "WALStats",
    "WriteAheadLog", "decode_post", "decode_record", "encode_post",
    "encode_record", "replay_segment",
]
