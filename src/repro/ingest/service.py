"""The ingest service: WAL + memtable + flush + crash recovery.

One :class:`IngestService` owns a durable directory::

    <dir>/
      MANIFEST.json                 committed-state pointer (atomic replace)
      wal/wal-XXXXXXXX.log          numbered WAL segments
      generations/gen-NNNNN/        one flushed generation each:
        posts.jsonl                 the generation's posts (ETL format)
        forward.bin                 serialised forward index
        part-XXXXX                  inverted-index part files (block format)

The write path is the classic LSM discipline: a post is first appended
(durably) to the WAL, then indexed into the active
:class:`~.memindex.MemIndex`, then inserted into the metadata database —
so anything acknowledged survives a crash, and anything not
acknowledged is simply retried.  At a size threshold :meth:`flush`
seals the memtable, rotates the WAL, rebuilds the sealed posts into an
immutable block-format generation through the *same* MapReduce builder
the batch path uses, commits the manifest atomically, and only then
truncates the covered WAL segments.

Flushed generations do not pile up forever: a
:class:`~repro.compaction.CompactionScheduler` interleaves bounded
units of background merge work with appends (deferred under ingest
pressure), rewriting several small generations into one of the next
tier.  A merge commit follows the same discipline as a flush —
materialise the output directory, commit the manifest atomically (the
inputs replaced by the output, with ``source_generations`` lineage),
then reclaim the superseded directories once no pinned reader can
still reach them.

Recovery (:class:`IngestService` construction over an existing
directory) mirrors that order: load committed generations from the
manifest, discard orphan generation directories (crash mid-flush, a
compaction output that never committed, or superseded inputs that
outlived a committed merge), delete WAL segments the manifest says
were flushed (crash pre-truncate), then replay the remaining segments
— repairing a torn tail on the last one — into a fresh memtable and
metadata database.  The kill-point matrices in
``tests/test_ingest_recovery.py`` and
``tests/test_compaction_recovery.py`` assert the result: query answers
after recovery are byte-identical to a run that never crashed.

Everything in memory is considered lost by a crash, including the
simulated DFS cluster; only ``<dir>`` survives.  That is why flushed
part files are copied out of the cluster into the generation directory
and re-uploaded on open.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..compaction import (CompactionConfig, CompactionPlan,
                          CompactionScheduler, GenerationInfo,
                          GenerationRegistry, GenerationState)
from ..compaction.scheduler import CompactionExecutor
from ..obs.health import (ComponentHealth, HealthMonitor, HealthReport,
                          HealthStatus, HealthThresholds, grade)
from ..core.model import Post
from ..core.scoring import upper_bound_popularity
from ..core.thread import DEFAULT_DEPTH, ThreadBuilder
from ..data.etl import dump_posts, load_posts
from ..dfs.cluster import DFSCluster, paper_cluster
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.builder import IndexConfig, build_hybrid_index
from ..index.forward import ForwardIndex
from ..index.generations import Generation
from ..index.hybrid import HybridIndex
from ..query.bounds import BoundsManager
from ..query.engine import EngineConfig, TkLUSEngine
from ..storage.iostats import IOStats
from ..storage.metadata import MetadataDatabase
from ..storage.records import TweetRecord
from ..text.analyzer import Analyzer
from .failpoints import NO_FAILPOINTS, Failpoints
from .live import LiveIndex
from .memindex import MemIndex
from .wal import (WALCorruptionError, WriteAheadLog, replay_segment,
                  segment_number)

MANIFEST_NAME = "MANIFEST.json"
WAL_DIR = "wal"
GENERATIONS_DIR = "generations"
#: v2 added compaction metadata: per-generation tier / seq / size_bytes /
#: source_generations lineage plus a manifest-level next_seq.  v1
#: manifests are migrated in memory on load (tier 0, seq = number).
MANIFEST_FORMAT_VERSION = 2
MANIFEST_SUPPORTED_VERSIONS = (1, 2)


class IngestError(RuntimeError):
    """Raised for ingest-service misuse or an unrecoverable directory."""


@dataclass
class IngestConfig:
    """Write-path knobs (the index shape itself comes from
    :class:`~repro.index.builder.IndexConfig`)."""

    flush_posts: int = 1024          # seal the memtable at this many posts
    flush_bytes: int = 4 * 1024 * 1024  # ... or at this rough footprint
    sync_every: int = 1              # fsync cadence (1 = every append)
    auto_flush: bool = True

    def __post_init__(self) -> None:
        if self.flush_posts < 1:
            raise ValueError(f"flush_posts must be >= 1: {self.flush_posts}")
        if self.flush_bytes < 1:
            raise ValueError(f"flush_bytes must be >= 1: {self.flush_bytes}")


@dataclass
class RecoveryReport:
    """What opening the directory had to reconstruct."""

    generations_loaded: int = 0
    orphan_generations_removed: int = 0
    flushed_segments_removed: int = 0
    segments_replayed: int = 0
    records_replayed: int = 0
    torn_tail_repaired: bool = False
    last_flushed_lsn: int = 0
    next_lsn: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "generations_loaded": self.generations_loaded,
            "orphan_generations_removed": self.orphan_generations_removed,
            "flushed_segments_removed": self.flushed_segments_removed,
            "segments_replayed": self.segments_replayed,
            "records_replayed": self.records_replayed,
            "torn_tail_repaired": self.torn_tail_repaired,
            "last_flushed_lsn": self.last_flushed_lsn,
            "next_lsn": self.next_lsn,
        }


class LiveBoundsManager(BoundsManager):
    """A bounds manager that stays sound while appends land.

    The static :class:`BoundsManager` snapshots ``t_m`` at construction;
    under ingestion a new reply can raise the true maximum fanout above
    the snapshot and make pruning *unsound* (a max-score query could
    drop the real winner).  This subclass reads ``t_m`` from the live
    database on every access instead, and carries no hot-keyword bounds
    (those are offline artefacts that go stale the same way).
    """

    def __init__(self, database: MetadataDatabase,
                 depth: int = DEFAULT_DEPTH) -> None:
        # Deliberately no super().__init__: global_bound is a property.
        self._database = database
        self._depth = depth
        self.keyword_bounds: Dict[str, float] = {}

    @property
    def global_bound(self) -> float:  # type: ignore[override]
        return upper_bound_popularity(self._database.max_reply_fanout,
                                      self._depth)


def _post_record(post: Post) -> TweetRecord:
    return TweetRecord(sid=post.sid, uid=post.uid,
                       lat=post.location[0], lon=post.location[1],
                       ruid=post.ruid if post.ruid is not None else -1,
                       rsid=post.rsid if post.rsid is not None else -1)


class _ServiceExecutor(CompactionExecutor):
    """Bridges the compaction scheduler to one :class:`IngestService`.

    The durable protocol lives in the service's ``_compaction_*``
    methods; this adapter only routes the scheduler's calls."""

    def __init__(self, service: "IngestService") -> None:
        self.service = service

    def generation_infos(self) -> List[GenerationInfo]:
        return self.service._compaction_infos()

    def begin_compaction(self, plan: CompactionPlan) -> None:
        for generation in self.service._generations_by_number(plan.inputs):
            generation.advance(GenerationState.COMPACTING)

    def abort_compaction(self, plan: CompactionPlan) -> None:
        for generation in self.service._generations_by_number(plan.inputs):
            generation.advance(GenerationState.ACTIVE)

    def load_generation_posts(self, number: int) -> List[Post]:
        return self.service._load_generation_posts(number)

    def commit_compaction(self, plan: CompactionPlan,
                          posts: Sequence[Post]) -> int:
        return self.service._commit_compaction(plan, list(posts))

    def reclaim(self) -> int:
        return self.service.generations.drain()

    def ingest_pressure(self) -> float:
        return self.service._ingest_pressure()


class IngestService:
    """Open (or create) an ingest directory and serve the write path."""

    def __init__(self, directory: str,
                 index_config: Optional[IndexConfig] = None,
                 ingest_config: Optional[IngestConfig] = None,
                 analyzer: Optional[Analyzer] = None,
                 cluster: Optional[DFSCluster] = None,
                 failpoints: Optional[Failpoints] = None,
                 compaction_config: Optional[CompactionConfig] = None) -> None:
        self.directory = directory
        self.ingest_config = ingest_config or IngestConfig()
        self.analyzer = analyzer or Analyzer()
        self.cluster = cluster or paper_cluster()
        self.failpoints = failpoints if failpoints is not None else NO_FAILPOINTS
        self.io = IOStats()
        self._thread_builders: List[ThreadBuilder] = []
        # Committed-manifest state: mutated by flush/compaction commits,
        # read by status/health/top (the dashboard thread).  Lock order:
        # the compaction scheduler's lock, when involved, is acquired
        # FIRST (scheduler.step holds it across _commit_compaction);
        # nothing may call into the scheduler while holding this lock.
        self._manifest_lock = threading.RLock()

        os.makedirs(directory, exist_ok=True)
        os.makedirs(self._generations_root, exist_ok=True)

        manifest = self._load_manifest()
        stored_config = manifest.get("index_config")
        if index_config is not None:
            self.index_config = index_config
        elif stored_config is not None:
            self.index_config = IndexConfig(**stored_config)
        else:
            self.index_config = IndexConfig()
        self._next_generation = int(
            manifest.get("next_generation", 1))  # guarded-by: _manifest_lock
        self._next_seq = int(
            manifest.get("next_seq", 0))  # guarded-by: _manifest_lock
        self._last_flushed_lsn = int(
            manifest.get("last_flushed_lsn", 0))  # guarded-by: _manifest_lock
        self._generation_entries: List[Dict[str, Any]] = list(
            manifest.get("generations", []))  # guarded-by: _manifest_lock

        self.database = MetadataDatabase.in_memory()
        self.generations = GenerationRegistry()
        self.memtables: List[MemIndex] = []
        self.compaction = CompactionScheduler(_ServiceExecutor(self),
                                              compaction_config)
        self.recovery = RecoveryReport(last_flushed_lsn=self._last_flushed_lsn)

        recover_start = time.perf_counter()
        with obs.trace("ingest.recover", directory=directory), \
                self._manifest_lock:
            self._load_generations()
            self._remove_orphan_generations()
            flushed = self._remove_flushed_segments()
            self.recovery.flushed_segments_removed = flushed
            next_lsn = self._replay_wal()
        obs.observe("ingest.recover_seconds",
                    time.perf_counter() - recover_start)

        self.wal = WriteAheadLog(self._wal_dir, next_lsn=next_lsn,
                                 sync_every=self.ingest_config.sync_every,
                                 io=self.io, failpoints=self.failpoints)
        if not self.memtables:
            self.memtables.append(MemIndex(self.index_config, self.analyzer))
        self.live = LiveIndex(self.index_config, self.analyzer,
                              self.memtables, self.generations)
        self.recovery.next_lsn = next_lsn
        obs.inc("ingest.replayed_records", self.recovery.records_replayed)
        self._update_gauges()

    # -- paths --------------------------------------------------------------

    @property
    def _wal_dir(self) -> str:
        return os.path.join(self.directory, WAL_DIR)

    @property
    def _generations_root(self) -> str:
        return os.path.join(self.directory, GENERATIONS_DIR)

    def _generation_dir(self, number: int) -> str:
        return os.path.join(self._generations_root, f"gen-{number:05d}")

    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def _active(self) -> MemIndex:
        return self.memtables[-1]

    # -- manifest -----------------------------------------------------------

    def _load_manifest(self) -> Dict[str, Any]:
        if not os.path.exists(self._manifest_path):
            return {}
        with open(self._manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = manifest.get("format_version")
        if version not in MANIFEST_SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in MANIFEST_SUPPORTED_VERSIONS)
            raise IngestError(
                f"unsupported manifest format_version {version!r} "
                f"(supported: {supported})")
        if version == 1:
            manifest = self._migrate_manifest_v1(manifest)
        return manifest

    def _migrate_manifest_v1(self, manifest: Dict[str, Any]) -> Dict[str, Any]:
        """In-memory upgrade of a v1 manifest: every generation was a
        direct flush, so tier 0 and seq = generation number reproduce the
        creation order; sizes come from the on-disk files.  The upgraded
        shape is persisted on the next commit."""
        entries = list(manifest.get("generations", []))
        for entry in entries:
            entry.setdefault("tier", 0)
            entry.setdefault("seq", int(entry["number"]))
            entry.setdefault("source_generations", [])
            if "size_bytes" not in entry:
                gen_dir = self._generation_dir(int(entry["number"]))
                size = 0
                names = list(entry.get("parts", []))
                names.extend(("forward.bin", "posts.jsonl"))
                for name in names:
                    path = os.path.join(gen_dir, name)
                    if os.path.exists(path):
                        size += os.path.getsize(path)
                entry["size_bytes"] = size
        manifest["generations"] = entries
        manifest.setdefault(
            "next_seq",
            max((int(entry["seq"]) for entry in entries), default=-1) + 1)
        manifest["format_version"] = MANIFEST_FORMAT_VERSION
        return manifest

    # holds-lock: _manifest_lock
    def _manifest_payload(self) -> Dict[str, Any]:
        config = self.index_config
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "next_generation": self._next_generation,
            "next_seq": self._next_seq,
            "last_flushed_lsn": self._last_flushed_lsn,
            "index_config": {
                "geohash_length": config.geohash_length,
                "num_map_tasks": config.num_map_tasks,
                "num_reduce_tasks": config.num_reduce_tasks,
                "workers": config.workers,
                "output_prefix": config.output_prefix,
                "partitioning": config.partitioning,
                "postings_format": config.postings_format,
                "block_size": config.block_size,
            },
            "generations": self._generation_entries,
        }

    # holds-lock: _manifest_lock
    def _commit_manifest(self) -> None:
        """Atomic write: the manifest either names the new generation or
        it does not — there is no in-between state on disk."""
        tmp_path = self._manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self._manifest_payload(), handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._manifest_path)

    # -- recovery -----------------------------------------------------------

    def _generation_config(self, number: int) -> IndexConfig:
        base = self.index_config.output_prefix.rstrip("/")
        return replace(self.index_config,
                       output_prefix=f"{base}/gen-{number:05d}")

    # holds-lock: _manifest_lock
    def _load_generations(self) -> None:
        """Rebuild every committed generation: re-upload its part files
        into the (volatile) DFS cluster, deserialise its forward index,
        and reinsert its posts into the metadata database."""
        for entry in self._generation_entries:
            number = int(entry["number"])
            gen_dir = self._generation_dir(number)
            if not os.path.isdir(gen_dir):
                raise IngestError(
                    f"manifest names generation {number} but its "
                    f"directory {gen_dir} is missing")
            config = self._generation_config(number)
            for part_name in entry["parts"]:
                local = os.path.join(gen_dir, part_name)
                with open(local, "rb") as handle:
                    data = handle.read()
                with self.cluster.create(
                        f"{config.output_prefix}/{part_name}") as writer:
                    writer.write(data)
            with open(os.path.join(gen_dir, "forward.bin"), "rb") as handle:
                forward = ForwardIndex.deserialize(handle.read())
            self.generations.append(Generation(
                number=number,
                index=HybridIndex(forward, self.cluster, config,
                                  self.analyzer),
                post_count=int(entry["post_count"]),
                tier=int(entry.get("tier", 0)),
                seq=int(entry.get("seq", number)),
                size_bytes=int(entry.get("size_bytes", 0)),
                source_generations=tuple(
                    entry.get("source_generations", ()))))
            with open(os.path.join(gen_dir, "posts.jsonl"), "r",
                      encoding="utf-8") as handle:
                posts = load_posts(handle, self.analyzer)
            for post in posts:
                self.database.insert(_post_record(post))
            self.recovery.generations_loaded += 1

    # holds-lock: _manifest_lock
    def _remove_orphan_generations(self) -> None:
        """Drop generation directories the manifest does not name.

        Covers three crash shapes with one rule: a flush that died
        between materialisation and commit, a compaction output whose
        merge never committed (``compaction.merge.mid`` /
        ``compaction.pre_commit``), and superseded compaction inputs
        whose directories outlived the commit that replaced them
        (``compaction.pre_reclaim``)."""
        committed = {f"gen-{int(entry['number']):05d}"
                     for entry in self._generation_entries}
        for name in sorted(os.listdir(self._generations_root)):
            if name not in committed:
                shutil.rmtree(os.path.join(self._generations_root, name))
                self.recovery.orphan_generations_removed += 1

    # holds-lock: _manifest_lock
    def _remove_flushed_segments(self) -> int:
        """Delete WAL segments whose records are already inside a
        committed generation (a crash after commit, before truncate).
        Replaying them would double-insert every post."""
        flushed = set()
        for entry in self._generation_entries:
            flushed.update(entry.get("segments", []))
        removed = 0
        for name in sorted(flushed):
            path = os.path.join(self._wal_dir, name)
            if os.path.exists(path):
                os.remove(path)
                removed += 1
        return removed

    # holds-lock: _manifest_lock
    def _replay_wal(self) -> int:
        """Replay surviving segments into a fresh memtable; returns the
        next LSN to assign."""
        os.makedirs(self._wal_dir, exist_ok=True)
        names = sorted((name for name in os.listdir(self._wal_dir)
                        if name.startswith("wal-") and name.endswith(".log")),
                       key=segment_number)
        memtable = MemIndex(self.index_config, self.analyzer)
        last_lsn = self._last_flushed_lsn
        for position, name in enumerate(names):
            is_last = position == len(names) - 1
            path = os.path.join(self._wal_dir, name)
            records, result = replay_segment(
                path, repair_torn_tail=is_last, io=self.io)
            if result.torn_tail and not is_last:
                raise WALCorruptionError(
                    f"{path}: torn tail in a non-final segment")
            if result.torn_tail:
                self.recovery.torn_tail_repaired = True
            for lsn, post in records:
                if lsn <= last_lsn:
                    raise WALCorruptionError(
                        f"{path}: LSN {lsn} not above high-water mark "
                        f"{last_lsn}")
                last_lsn = lsn
                memtable.add(post, lsn)
                self.database.insert(_post_record(post))
                self.recovery.records_replayed += 1
            self.recovery.segments_replayed += 1
        if memtable.post_count:
            self.memtables.append(memtable)
        return last_lsn + 1

    # -- the write path -----------------------------------------------------

    def append(self, post: Post) -> int:
        """Durably ingest one post; returns its LSN.

        WAL first, memtable second, metadata third: a crash inside
        :meth:`~.wal.WriteAheadLog.append` loses nothing acknowledged,
        and once the WAL call returns the post is durable even if the
        process dies before the in-memory structures update (replay
        redoes them).
        """
        with obs.trace("ingest.append", sid=post.sid):
            lsn = self.wal.append(post)
            self._active.add(post, lsn)
            self.database.insert(_post_record(post))
        for builder in self._thread_builders:
            builder.clear_cache()  # reply fanouts may have changed
        obs.inc("ingest.appends")
        self._update_gauges()
        if self.ingest_config.auto_flush and (
                self._active.post_count >= self.ingest_config.flush_posts
                or self._active.size_bytes() >= self.ingest_config.flush_bytes):
            self.flush()
        # Interleave one bounded unit of background merge work with the
        # foreground append (deferred while ingest pressure is high).
        self.compaction.maybe_step()
        return lsn

    def flush(self) -> Optional[int]:
        """Seal the memtable and materialise a generation; returns the
        new generation number, or ``None`` when there is nothing to
        flush.

        Ordering is what makes every crash point recoverable: (1) rotate
        the WAL so the sealed records live in sealed segments; (2) write
        the generation directory (posts, parts, forward index) — a crash
        here leaves an orphan directory recovery deletes; (3) commit the
        manifest atomically — the generation now exists; (4) delete the
        covered WAL segments — a crash between (3) and (4) leaves
        flushed segments recovery removes without replaying.
        """
        if self._active.post_count == 0 and len(self.memtables) == 1:
            return None
        flush_start = time.perf_counter()
        with obs.trace("ingest.flush") as span:
            if self._active.post_count:
                self._active.seal()
                self.memtables.append(
                    MemIndex(self.index_config, self.analyzer))
            self.wal.rotate()
            sealed = [mem for mem in self.memtables if mem.sealed]
            sealed_segments = [name for name in self.wal.segment_names()
                               if name != self.wal.active_name]
            pairs = sorted((pair for mem in sealed
                            for pair in mem.lsn_posts()))
            posts = [post for _lsn, post in pairs]
            with self._manifest_lock:
                last_lsn = (pairs[-1][0] if pairs
                            else self._last_flushed_lsn)
                number = self._next_generation
                seq = self._next_seq
            config = self._generation_config(number)
            gen_dir = self._generation_dir(number)
            os.makedirs(gen_dir, exist_ok=True)
            with open(os.path.join(gen_dir, "posts.jsonl"), "w",
                      encoding="utf-8") as handle:
                dump_posts(posts, handle)
            self.failpoints.trip("ingest.flush.mid")

            forward, _result = build_hybrid_index(
                posts, self.cluster, self.analyzer, config)
            part_names = []
            for path in self.cluster.list_files(config.output_prefix):
                part_name = path.rsplit("/", 1)[-1]
                data = self.cluster.open(path).pread(
                    0, self.cluster.file_size(path))
                with open(os.path.join(gen_dir, part_name), "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                part_names.append(part_name)
            with open(os.path.join(gen_dir, "forward.bin"), "wb") as handle:
                handle.write(forward.serialize())
                handle.flush()
                os.fsync(handle.fileno())

            size_bytes = sum(
                os.path.getsize(os.path.join(gen_dir, name))
                for name in os.listdir(gen_dir))
            with self._manifest_lock:
                self._generation_entries.append({
                    "number": number,
                    "post_count": len(posts),
                    "last_lsn": last_lsn,
                    "parts": sorted(part_names),
                    "segments": sealed_segments,
                    "tier": 0,
                    "seq": seq,
                    "size_bytes": size_bytes,
                    "source_generations": [],
                })
                self._next_generation = number + 1
                self._next_seq = seq + 1
                self._last_flushed_lsn = max(self._last_flushed_lsn,
                                             last_lsn)
                self._commit_manifest()
            self.failpoints.trip("ingest.flush.pre_truncate")

            for name in sealed_segments:
                self.wal.delete_segment(name)

            hybrid = HybridIndex(forward, self.cluster, config, self.analyzer)
            # Swap both component lists under the live facade's lock so a
            # concurrent snapshot()/version_token() can never observe the
            # sealed memtable gone but its generation not yet published
            # (lock order: components_lock, then the registry's lock
            # inside generations.append — same order snapshot() uses).
            with self.live.components_lock:
                self.memtables[:] = [mem for mem in self.memtables
                                     if not mem.sealed]
                self.generations.append(Generation(
                    number=number, index=hybrid, post_count=len(posts),
                    tier=0, seq=seq, size_bytes=size_bytes))
            span.set(generation=number, posts=len(posts))
        obs.inc("ingest.flushes")
        obs.observe("ingest.flush_seconds", time.perf_counter() - flush_start)
        self._update_gauges()
        return number

    def close(self) -> None:
        self.wal.close()

    # -- compaction ---------------------------------------------------------

    def _compaction_infos(self) -> List[GenerationInfo]:
        return [generation.info() for generation in self.generations
                if generation.state is GenerationState.ACTIVE]

    def _generations_by_number(self, numbers: Sequence[int]
                               ) -> List[Generation]:
        by_number = {generation.number: generation
                     for generation in self.generations.items}
        try:
            return [by_number[number] for number in numbers]
        except KeyError as exc:
            raise IngestError(
                f"unknown generation number {exc.args[0]}") from None

    def _load_generation_posts(self, number: int) -> List[Post]:
        """One input generation's posts, from its durable directory (the
        DFS cluster is volatile; the directory is the authority)."""
        path = os.path.join(self._generation_dir(number), "posts.jsonl")
        with open(path, "r", encoding="utf-8") as handle:
            return load_posts(handle, self.analyzer)

    def _ingest_pressure(self) -> float:
        """Active-memtable fullness relative to its flush thresholds."""
        active = self._active
        return min(1.0, max(
            active.post_count / self.ingest_config.flush_posts,
            active.size_bytes() / self.ingest_config.flush_bytes))

    def _reclaimer(self, generation: Generation):
        """The deferred cleanup for one superseded generation: runs only
        once no pinned reader can still reach it."""
        def _reclaim() -> None:
            generation.advance(GenerationState.REMOVED)
            prefix = generation.index.config.output_prefix
            for path in self.cluster.list_files(prefix):
                self.cluster.delete(path)
            gen_dir = self._generation_dir(generation.number)
            if os.path.isdir(gen_dir):
                shutil.rmtree(gen_dir)
            obs.inc("ingest.compaction_reclaimed")
        return _reclaim

    def _commit_compaction(self, plan: CompactionPlan,
                           posts: List[Post]) -> int:
        """Materialise and commit one merged generation.

        The crash contract mirrors :meth:`flush`: (1) write the output
        generation directory — a crash here (``compaction.merge.mid`` /
        ``compaction.pre_commit``) leaves an orphan directory recovery
        deletes, while the inputs stay committed; (2) commit the
        manifest atomically with the inputs replaced by the output —
        the merge now exists; (3) swap the in-memory generation set and
        reclaim the superseded directories — a crash between (2) and
        (3) (``compaction.pre_reclaim``) leaves the input directories
        as orphans recovery deletes.  The metadata database is not
        touched: the output carries exactly the inputs' posts.
        """
        compact_start = time.perf_counter()
        with obs.trace("ingest.compaction", inputs=len(plan.inputs),
                       output_tier=plan.output_tier) as span:
            with self._manifest_lock:
                number = self._next_generation
            config = self._generation_config(number)
            gen_dir = self._generation_dir(number)
            os.makedirs(gen_dir, exist_ok=True)
            with open(os.path.join(gen_dir, "posts.jsonl"), "w",
                      encoding="utf-8") as handle:
                dump_posts(posts, handle)
            self.failpoints.trip("compaction.merge.mid")

            forward, _result = build_hybrid_index(
                posts, self.cluster, self.analyzer, config)
            part_names = []
            for path in self.cluster.list_files(config.output_prefix):
                part_name = path.rsplit("/", 1)[-1]
                data = self.cluster.open(path).pread(
                    0, self.cluster.file_size(path))
                with open(os.path.join(gen_dir, part_name), "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                part_names.append(part_name)
            with open(os.path.join(gen_dir, "forward.bin"), "wb") as handle:
                handle.write(forward.serialize())
                handle.flush()
                os.fsync(handle.fileno())
            self.failpoints.trip("compaction.pre_commit")

            superseded = set(plan.inputs)
            size_bytes = sum(
                os.path.getsize(os.path.join(gen_dir, name))
                for name in os.listdir(gen_dir))
            with self._manifest_lock:
                input_entries = [entry
                                 for entry in self._generation_entries
                                 if int(entry["number"]) in superseded]
                if len(input_entries) != len(superseded):
                    raise IngestError(
                        f"compaction inputs {sorted(superseded)} not all "
                        "present in the committed manifest")
                seq = self._next_seq
                self._generation_entries = [
                    entry for entry in self._generation_entries
                    if int(entry["number"]) not in superseded]
                self._generation_entries.append({
                    "number": number,
                    "post_count": len(posts),
                    # The inputs' WAL segments were deleted when they
                    # flushed; the merge introduces no new WAL coverage.
                    "last_lsn": max(int(entry["last_lsn"])
                                    for entry in input_entries),
                    "parts": sorted(part_names),
                    "segments": [],
                    "tier": plan.output_tier,
                    "seq": seq,
                    "size_bytes": size_bytes,
                    "source_generations": sorted(superseded),
                })
                self._next_generation = number + 1
                self._next_seq = seq + 1
                self._commit_manifest()
            self.failpoints.trip("compaction.pre_reclaim")

            inputs = self._generations_by_number(plan.inputs)
            for generation in inputs:
                generation.advance(GenerationState.SUPERSEDED)
            output = Generation(
                number=number,
                index=HybridIndex(forward, self.cluster, config,
                                  self.analyzer),
                post_count=len(posts), tier=plan.output_tier, seq=seq,
                size_bytes=size_bytes,
                source_generations=tuple(sorted(superseded)))
            survivors = [generation for generation in self.generations.items
                         if generation.number not in superseded]
            self.generations.swap(
                survivors + [output],
                retired=[(generation, self._reclaimer(generation))
                         for generation in inputs])
            span.set(generation=number, posts=len(posts))
        obs.inc("ingest.compactions")
        obs.observe("ingest.compaction_seconds",
                    time.perf_counter() - compact_start)
        self._update_gauges()
        return number

    def compact(self, max_steps: int = 10_000) -> int:
        """Drive compaction to quiescence (the ``repro compact`` path,
        ignoring the enabled flag and backpressure); returns the number
        of merges committed."""
        return self.compaction.run_until_idle(max_steps)

    def compaction_plan(self) -> Optional[CompactionPlan]:
        """What the policy would merge next (``repro compact
        --dry-run``), or ``None`` when the shape is acceptable."""
        return self.compaction.plan_preview()

    def tier_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Committed generations bucketed by tier (manifest view)."""
        tiers: Dict[int, Dict[str, int]] = {}
        with self._manifest_lock:
            entries = [dict(entry) for entry in self._generation_entries]
        for entry in entries:
            bucket = tiers.setdefault(
                int(entry.get("tier", 0)),
                {"generations": 0, "posts": 0, "bytes": 0})
            bucket["generations"] += 1
            bucket["posts"] += int(entry["post_count"])
            bucket["bytes"] += int(entry.get("size_bytes", 0))
        return {str(tier): tiers[tier] for tier in sorted(tiers)}

    # -- queries ------------------------------------------------------------

    def build_query_engine(self, engine_config: Optional[EngineConfig] = None,
                           metric: Metric = DEFAULT_METRIC) -> TkLUSEngine:
        """A TkLUS engine over the live view.

        Uses :class:`LiveBoundsManager` (bounds re-read from the live
        database, no stale hot-keyword bounds) and a thread builder
        whose popularity cache this service invalidates on every append,
        so max-score pruning stays sound while writes land.
        """
        if engine_config is None:
            engine_config = EngineConfig(index=self.index_config,
                                         hot_keywords=[])
        builder = ThreadBuilder(self.database, depth=engine_config.thread_depth,
                                epsilon=engine_config.scoring.epsilon,
                                cache=engine_config.thread_cache)
        self._thread_builders.append(builder)
        bounds = LiveBoundsManager(self.database,
                                   depth=engine_config.thread_depth)
        return TkLUSEngine(self.database, self.live, builder, bounds,
                           engine_config, metric)

    # -- reporting ----------------------------------------------------------

    def _update_gauges(self) -> None:
        """Refresh the ingest gauges (no-ops while obs is disabled)."""
        if not obs.is_enabled():
            return
        obs.set_gauge("ingest.memtable_bytes", self._active.size_bytes())
        obs.set_gauge("ingest.memtable_posts", self._active.post_count)
        with self._manifest_lock:
            committed = len(self._generation_entries)
        obs.set_gauge("ingest.generations", committed)
        obs.set_gauge("ingest.wal_unsynced_records", self.wal.pending_appends)
        obs.set_gauge("ingest.compaction_debt", self.compaction.debt())
        obs.set_gauge("ingest.pending_reclaim",
                      self.generations.pending_reclaim())

    # -- health -------------------------------------------------------------

    def health_monitor(self,
                       thresholds: Optional[HealthThresholds] = None
                       ) -> HealthMonitor:
        """A :class:`HealthMonitor` wired with this service's component
        probes (WAL, memtable, generations, block cache, recovery)."""
        limits = thresholds if thresholds is not None else HealthThresholds()
        monitor = HealthMonitor()

        def wal_probe() -> ComponentHealth:
            lag = self.wal.sync_lag_seconds()
            pending = self.wal.pending_appends
            status = HealthStatus.worst([
                grade(lag, limits.wal_sync_lag_warn,
                      limits.wal_sync_lag_critical),
                grade(pending, limits.unsynced_records_warn,
                      limits.unsynced_records_critical),
            ])
            message = ("synced" if pending == 0 else
                       f"{pending} unsynced records, lag {lag:.2f}s")
            return ComponentHealth(
                name="wal", status=status, message=message,
                metrics={"sync_lag_seconds": lag,
                         "unsynced_records": pending,
                         "segments": len(self.wal.segment_names()),
                         "next_lsn": self.wal.next_lsn})

        def memtable_probe() -> ComponentHealth:
            active = self._active
            size = active.size_bytes()
            age = active.age_seconds()
            status = HealthStatus.worst([
                grade(size, limits.memtable_bytes_warn,
                      limits.memtable_bytes_critical),
                grade(age, limits.memtable_age_warn,
                      limits.memtable_age_critical),
            ])
            return ComponentHealth(
                name="memtable", status=status,
                message=f"{active.post_count} posts, {size} bytes, "
                        f"age {age:.1f}s",
                metrics={"posts": active.post_count, "bytes": size,
                         "age_seconds": age,
                         "sealed": sum(1 for mem in self.memtables
                                       if mem.sealed)})

        def generations_probe() -> ComponentHealth:
            # Scheduler lock first (debt), manifest lock second — the
            # same order a compaction commit acquires them in.
            debt = self.compaction.debt()
            with self._manifest_lock:
                count = len(self._generation_entries)
                last_flushed = self._last_flushed_lsn
            status = HealthStatus.worst([
                grade(count, limits.generations_warn,
                      limits.generations_critical),
                grade(debt, limits.compaction_debt_warn,
                      limits.compaction_debt_critical),
            ])
            return ComponentHealth(
                name="generations", status=status,
                message=f"{count} committed generations, "
                        f"compaction debt {debt}",
                metrics={"count": count,
                         "last_flushed_lsn": last_flushed,
                         "compaction_debt": debt,
                         "tiers": len(self.tier_breakdown()),
                         "pending_reclaim":
                             self.generations.pending_reclaim()})

        def block_cache_probe() -> ComponentHealth:
            stats = self.live.stats
            hits = stats.block_cache_hits
            lookups = hits + stats.block_cache_misses
            rate = hits / lookups if lookups else 1.0
            if lookups < limits.cache_min_lookups:
                status = HealthStatus.OK  # too few lookups to judge
            else:
                status = grade(rate, limits.cache_hit_rate_warn,
                               limits.cache_hit_rate_critical,
                               higher_is_worse=False)
            return ComponentHealth(
                name="block_cache", status=status,
                message=f"hit rate {rate:.2%} over {lookups} lookups",
                metrics={"hit_rate": rate, "hits": hits,
                         "lookups": lookups})

        def recovery_probe() -> ComponentHealth:
            report = self.recovery
            status = (HealthStatus.DEGRADED if report.torn_tail_repaired
                      else HealthStatus.OK)
            message = (f"replayed {report.records_replayed} records from "
                       f"{report.segments_replayed} segments"
                       + (", torn tail repaired"
                          if report.torn_tail_repaired else ""))
            return ComponentHealth(name="recovery", status=status,
                                   message=message,
                                   metrics=report.as_dict())

        monitor.register("wal", wal_probe)
        monitor.register("memtable", memtable_probe)
        monitor.register("generations", generations_probe)
        monitor.register("block_cache", block_cache_probe)
        monitor.register("recovery", recovery_probe)
        return monitor

    def health(self,
               thresholds: Optional[HealthThresholds] = None) -> HealthReport:
        """Run every component probe and roll up the system verdict."""
        return self.health_monitor(thresholds).run()

    def status(self) -> Dict[str, Any]:
        # Scheduler state is read before (not under) the manifest lock:
        # commits hold scheduler -> manifest, so the reverse nesting
        # here would be a deadlock waiting for unlucky timing.
        compaction_status = self.compaction.status()
        with self._manifest_lock:
            last_flushed = self._last_flushed_lsn
            entries = [dict(entry) for entry in self._generation_entries]
        return {
            "directory": self.directory,
            "next_lsn": self.wal.next_lsn,
            "last_flushed_lsn": last_flushed,
            "active_segment": self.wal.active_name,
            "segments": self.wal.segment_names(),
            "memtable_posts": self._active.post_count,
            "memtable_bytes": self._active.size_bytes(),
            "sealed_memtables": sum(1 for mem in self.memtables if mem.sealed),
            "generations": [
                {"number": entry["number"],
                 "post_count": entry["post_count"],
                 "last_lsn": entry["last_lsn"],
                 "tier": entry.get("tier", 0),
                 "seq": entry.get("seq", entry["number"]),
                 "size_bytes": entry.get("size_bytes", 0),
                 "source_generations": entry.get("source_generations", [])}
                for entry in entries],
            "tiers": self.tier_breakdown(),
            "compaction": compaction_status,
            "database_posts": len(self.database),
            "wal": self.wal.stats.snapshot(),
            "recovery": self.recovery.as_dict(),
        }


@dataclass
class IngestDirReport:
    """Read-only inspection of an ingest directory (``repro
    ingest-status``) — no indexes are rebuilt."""

    directory: str
    exists: bool
    manifest: Dict[str, Any] = field(default_factory=dict)
    segments: List[Dict[str, Any]] = field(default_factory=list)
    unflushed_records: int = 0
    torn_tail: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "exists": self.exists,
            "manifest": self.manifest,
            "segments": self.segments,
            "unflushed_records": self.unflushed_records,
            "torn_tail": self.torn_tail,
        }


def inspect_ingest_dir(directory: str) -> IngestDirReport:
    """Scan an ingest directory without opening a service: manifest
    facts plus a non-mutating replay count of every WAL segment."""
    report = IngestDirReport(directory=directory,
                             exists=os.path.isdir(directory))
    if not report.exists:
        return report
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as handle:
            report.manifest = json.load(handle)
    wal_dir = os.path.join(directory, WAL_DIR)
    if os.path.isdir(wal_dir):
        names = sorted((name for name in os.listdir(wal_dir)
                        if name.startswith("wal-") and name.endswith(".log")),
                       key=segment_number)
        flushed = set()
        for entry in report.manifest.get("generations", []):
            flushed.update(entry.get("segments", []))
        for name in names:
            path = os.path.join(wal_dir, name)
            records, result = replay_segment(path, repair_torn_tail=False)
            report.segments.append({
                "name": name,
                "records": len(records),
                "bytes": os.path.getsize(path),
                "first_lsn": result.first_lsn,
                "last_lsn": result.last_lsn,
                "torn_tail": result.torn_tail,
                "flushed": name in flushed,
            })
            if name not in flushed:
                report.unflushed_records += len(records)
            report.torn_tail = report.torn_tail or result.torn_tail
    return report


def load_posts_file(path: str, analyzer: Optional[Analyzer] = None) -> List[Post]:
    """Convenience for the CLI: posts from a JSON-lines file, or from
    stdin-compatible streams via :mod:`repro.data.etl` directly."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_posts(handle, analyzer)
