"""The read facade over memtables + sealed generations.

A query must see one consistent database even while appends land
mid-plan, so reads are watermarked: :meth:`LiveIndex.postings_for_query`
pins the current memtable high-water LSN on entry and every postings
fetch under that call filters to entries at or below it.  Appends that
arrive after the pin are invisible to the in-flight query; sealed
generations are immutable so they need no watermark.  For a view that
stays stable across *multiple* calls (the bench harness, validators),
:meth:`LiveIndex.snapshot` freezes the component lists and the
watermark into a :class:`LiveSnapshot`.

The facade satisfies the same ``PostingsSource`` protocol as
:class:`~repro.index.hybrid.HybridIndex`, merging per-``(cell, term)``
lists with :func:`~repro.index.postings.merge_postings` (tids are
globally unique across generations and the memtable, so merging never
collides).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..geo.cover import circle_cover
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.builder import IndexConfig
from ..index.hybrid import HybridIndex, IndexStats
from ..index.postings import Posting, merge_postings
from ..text.analyzer import Analyzer
from .memindex import MemIndex


def _merge_parts(parts: List[Sequence[Posting]]) -> Sequence[Posting]:
    """Merge already-sorted per-component lists; avoids materialising a
    copy in the common single-source case."""
    if not parts:
        return ()
    if len(parts) == 1:
        return parts[0]
    return merge_postings(parts)


class LiveIndex:
    """Union view over the active/sealed memtables and flushed
    generations of one ingest service.

    The ``memtables`` and ``generations`` lists are shared with (and
    mutated in place by) :class:`~.service.IngestService` — the facade
    never rebinds them, so a flush that swaps a sealed memtable for its
    generation is visible to the next query without rewiring.
    """

    def __init__(self, config: IndexConfig, analyzer: Analyzer,
                 memtables: List[MemIndex],
                 generations: List[HybridIndex]) -> None:
        self.config = config
        self.analyzer = analyzer
        self.memtables = memtables
        self.generations = generations

    # -- consistency --------------------------------------------------------

    def watermark(self) -> int:
        """The LSN a query starting now would pin."""
        return max((mem.max_lsn for mem in self.memtables), default=0)

    def snapshot(self) -> "LiveSnapshot":
        """A view frozen at the current watermark and component set."""
        return LiveSnapshot(self.config, self.analyzer,
                            tuple(self.memtables), tuple(self.generations),
                            self.watermark())

    # -- PostingsSource -----------------------------------------------------

    @property
    def geohash_length(self) -> int:
        return self.config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km, self.config.geohash_length,
                            metric)

    def postings(self, cell: str, term: str,
                 max_lsn: Optional[int] = None) -> Sequence[Posting]:
        """Merged postings across every component, memtable entries
        clipped to ``max_lsn`` (``None`` = everything)."""
        parts: List[Sequence[Posting]] = []
        for generation in self.generations:
            fetched = generation.postings(cell, term)
            if fetched:
                parts.append(fetched)
        for mem in self.memtables:
            fetched = mem.postings(cell, term, max_lsn)
            if fetched:
                parts.append(fetched)
        return _merge_parts(parts)

    def postings_fetch_count(self) -> int:
        return (sum(gen.stats.postings_fetches for gen in self.generations)
                + sum(mem.stats.postings_fetches for mem in self.memtables))

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        # Pin the watermark before touching any component: appends that
        # land while we scan stay invisible to this query.
        limit = self.watermark()
        with obs.trace("ingest.live_scan", cells=len(cells),
                       terms=len(terms), watermark=limit):
            result: Dict[str, Dict[str, Sequence[Posting]]] = {}
            for cell in cells:
                per_term: Dict[str, Sequence[Posting]] = {}
                for term in terms:
                    postings = self.postings(cell, term, limit)
                    if postings:
                        per_term[term] = postings
                if per_term:
                    result[cell] = per_term
        return result

    # -- reporting ----------------------------------------------------------

    @property
    def stats(self) -> IndexStats:
        """Aggregate counters across components (what the per-query
        profiler snapshot-diffs)."""
        total = IndexStats()
        for component in (*self.generations, *self.memtables):
            for key, value in component.stats.snapshot().items():
                setattr(total, key, getattr(total, key) + value)
        return total

    def clear_caches(self) -> None:
        for generation in self.generations:
            generation.clear_caches()


class LiveSnapshot:
    """An immutable LiveIndex view: fixed components, fixed watermark.

    Queries against a snapshot return identical results no matter how
    many appends or flushes land after it was taken — as long as the
    captured memtables are not themselves flushed away (the service only
    drops a sealed memtable *after* its generation is committed, so a
    snapshot taken before a flush may double-serve; take snapshots
    between flushes, as the bench harness does).
    """

    def __init__(self, config: IndexConfig, analyzer: Analyzer,
                 memtables: Tuple[MemIndex, ...],
                 generations: Tuple[HybridIndex, ...],
                 lsn_limit: int) -> None:
        self.config = config
        self.analyzer = analyzer
        self.memtables = memtables
        self.generations = generations
        self.lsn_limit = lsn_limit

    @property
    def geohash_length(self) -> int:
        return self.config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km, self.config.geohash_length,
                            metric)

    def postings(self, cell: str, term: str) -> Sequence[Posting]:
        parts: List[Sequence[Posting]] = []
        for generation in self.generations:
            fetched = generation.postings(cell, term)
            if fetched:
                parts.append(fetched)
        for mem in self.memtables:
            fetched = mem.postings(cell, term, self.lsn_limit)
            if fetched:
                parts.append(fetched)
        return _merge_parts(parts)

    def postings_fetch_count(self) -> int:
        return (sum(gen.stats.postings_fetches for gen in self.generations)
                + sum(mem.stats.postings_fetches for mem in self.memtables))

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        result: Dict[str, Dict[str, Sequence[Posting]]] = {}
        for cell in cells:
            per_term: Dict[str, Sequence[Posting]] = {}
            for term in terms:
                postings = self.postings(cell, term)
                if postings:
                    per_term[term] = postings
            if per_term:
                result[cell] = per_term
        return result
