"""The read facade over memtables + sealed generations.

A query must see one consistent database even while appends land
mid-plan, so reads are watermarked: :meth:`LiveIndex.postings_for_query`
pins the current memtable high-water LSN on entry and every postings
fetch under that call filters to entries at or below it.  Appends that
arrive after the pin are invisible to the in-flight query; sealed
generations are immutable so they need no watermark.  For a view that
stays stable across *multiple* calls (the bench harness, validators),
:meth:`LiveIndex.snapshot` freezes the component lists and the
watermark into a :class:`LiveSnapshot`.

Generations may arrive as a plain list of
:class:`~repro.index.hybrid.HybridIndex` (the simple/test wiring) or as
a :class:`~repro.compaction.GenerationRegistry` of generation wrappers
(the ingest service).  With a registry, every query resolves through an
immutable generation-set snapshot pinned for its duration — a
background compaction can swap the set mid-query without the query
observing a half-swapped view, and the superseded generations' files
outlive every pinned reader.  A :class:`LiveSnapshot` holds its pin for
its own lifetime (released on :meth:`~LiveSnapshot.close` or GC).

The facade satisfies the same ``PostingsSource`` protocol as
:class:`~repro.index.hybrid.HybridIndex`, merging per-``(cell, term)``
lists with :func:`~repro.index.postings.merge_postings` (tids are
globally unique across generations and the memtable, so merging never
collides).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (Any, Dict, Iterator, List, Optional, Sequence, Tuple,
                    Union)

from .. import obs
from ..compaction import GenerationRegistry, PinnedGenerations
from ..geo.cover import circle_cover
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.builder import IndexConfig
from ..index.hybrid import HybridIndex, IndexStats
from ..index.postings import Posting, merge_postings
from ..text.analyzer import Analyzer
from .memindex import MemIndex


def _merge_parts(parts: List[Sequence[Posting]]) -> Sequence[Posting]:
    """Merge already-sorted per-component lists; avoids materialising a
    copy in the common single-source case."""
    if not parts:
        return ()
    if len(parts) == 1:
        return parts[0]
    return merge_postings(parts)


def _generation_index(item: Any) -> HybridIndex:
    """A registry holds generation wrappers (``.index``); a plain list
    holds the indexes themselves."""
    return getattr(item, "index", item)


class LiveIndex:
    """Union view over the active/sealed memtables and flushed
    generations of one ingest service.

    The ``memtables`` list (and a plain ``generations`` list, when one
    is used instead of a registry) is shared with — and mutated in place
    by — :class:`~.service.IngestService`: the facade never rebinds it,
    so a flush that swaps a sealed memtable for its generation is
    visible to the next query without rewiring.
    """

    def __init__(self, config: IndexConfig, analyzer: Analyzer,
                 memtables: List[MemIndex],
                 generations: Union[GenerationRegistry, List[HybridIndex]]
                 ) -> None:
        self.config = config
        self.analyzer = analyzer
        self.memtables = memtables
        self.generations = generations
        # Read-amplification accounting for merges done by this facade;
        # per-component fetch counters live on the components.  Queries
        # and the dashboard thread both touch it, so increments happen
        # under the stats lock (shared with snapshots, which accumulate
        # into the same object).
        self._stats_lock = threading.Lock()
        self._merge_stats = IndexStats()  # guarded-by: _stats_lock
        # Serialises the flush component swap (memtable prune + generation
        # append, two statements in IngestService.flush) against snapshot()
        # and version_token(): without it a snapshot taken between the two
        # statements would see a torn component set.  Lock order when both
        # are needed: components_lock FIRST, then the registry's internal
        # lock (pin()/append() take it; both flush and snapshot follow
        # this order).
        self.components_lock = threading.Lock()

    # -- consistency --------------------------------------------------------

    @contextmanager
    def _pinned_generations(self) -> Iterator[Tuple[Any, ...]]:
        """The current generation items, pinned against reclamation for
        the duration when registry-backed."""
        if isinstance(self.generations, GenerationRegistry):
            with self.generations.pinned() as items:
                yield items
        else:
            yield tuple(self.generations)

    def watermark(self) -> int:
        """The LSN a query starting now would pin."""
        return max((mem.max_lsn for mem in self.memtables), default=0)

    def version_token(self) -> Tuple[int, int]:
        """The ``(watermark LSN, generation token)`` pair identifying the
        current database version — the serve layer's cache key component.

        The watermark alone cannot key a cache: it falls back toward 0
        when a flush retires the sealed memtable that carried the high
        LSN.  Pairing it with a monotone generation token (the registry
        epoch, which every flush/compaction swap advances; the list
        length for plain-list wiring, which only ever grows) makes the
        pair unique over the database's lifetime: the token component is
        bumped at exactly the moments the watermark may regress, and the
        watermark only advances between those moments.  A superseded
        token can therefore never be observed again, so a cache entry
        keyed on it can never be served stale.
        """
        with self.components_lock:
            return self._version_token_locked()

    # holds-lock: components_lock
    def _version_token_locked(self) -> Tuple[int, int]:
        if isinstance(self.generations, GenerationRegistry):
            generation_token = self.generations.epoch
        else:
            generation_token = len(self.generations)
        return (self.watermark(), generation_token)

    def snapshot(self) -> "LiveSnapshot":
        """A view frozen at the current watermark and component set;
        holds a generation-set pin until closed or collected."""
        pin: Optional[PinnedGenerations] = None
        try:
            with self.components_lock:
                if isinstance(self.generations, GenerationRegistry):
                    pin = self.generations.pin()
                    items: Tuple[Any, ...] = pin.items
                else:
                    items = tuple(self.generations)
                # The snapshot receives a *reference* to the shared stats
                # object together with the lock that guards it; no counter
                # is read here.
                return LiveSnapshot(
                    self.config, self.analyzer, tuple(self.memtables),
                    tuple(_generation_index(item) for item in items),
                    self.watermark(), pin=pin,
                    merge_stats=self._merge_stats,  # repro-lint: disable=RL100 reason=reference pass; snapshot shares the stats object and its lock
                    stats_lock=self._stats_lock,
                    version_token=self._version_token_locked())
        except BaseException:
            # Until the snapshot owns the pin, we do: anything raising
            # between pin() and here (a component with a broken
            # watermark, say) must not leave the generation set pinned
            # forever.
            if pin is not None:
                pin.release()
            raise

    # -- PostingsSource -----------------------------------------------------

    @property
    def geohash_length(self) -> int:
        return self.config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km, self.config.geohash_length,
                            metric)

    def _merged_postings(self, generations: Sequence[Any], cell: str,
                         term: str, max_lsn: Optional[int]
                         ) -> Sequence[Posting]:
        parts: List[Sequence[Posting]] = []
        for item in generations:
            fetched = _generation_index(item).postings(cell, term)
            if fetched:
                parts.append(fetched)
        for mem in self.memtables:
            fetched = mem.postings(cell, term, max_lsn)
            if fetched:
                parts.append(fetched)
        with self._stats_lock:
            self._merge_stats.generations_probed += len(generations)
            self._merge_stats.postings_sources_merged += len(parts)
        return _merge_parts(parts)

    def postings(self, cell: str, term: str,
                 max_lsn: Optional[int] = None) -> Sequence[Posting]:
        """Merged postings across every component, memtable entries
        clipped to ``max_lsn`` (``None`` = everything)."""
        with self._pinned_generations() as generations:
            return self._merged_postings(generations, cell, term, max_lsn)

    def postings_fetch_count(self) -> int:
        return (sum(_generation_index(item).stats.postings_fetches
                    for item in self._generation_items())
                + sum(mem.stats.postings_fetches for mem in self.memtables))

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        # Pin the watermark and the generation set before touching any
        # component: appends that land while we scan stay invisible to
        # this query, and a compaction swap cannot hand different
        # lookups of the same query different generation views.
        limit = self.watermark()
        with obs.trace("ingest.live_scan", cells=len(cells),
                       terms=len(terms), watermark=limit):
            result: Dict[str, Dict[str, Sequence[Posting]]] = {}
            with self._pinned_generations() as generations:
                for cell in cells:
                    per_term: Dict[str, Sequence[Posting]] = {}
                    for term in terms:
                        postings = self._merged_postings(
                            generations, cell, term, limit)
                        if postings:
                            per_term[term] = postings
                    if per_term:
                        result[cell] = per_term
        return result

    # -- reporting ----------------------------------------------------------

    def _generation_items(self) -> Tuple[Any, ...]:
        if isinstance(self.generations, GenerationRegistry):
            return self.generations.items
        return tuple(self.generations)

    @property
    def stats(self) -> IndexStats:
        """Aggregate counters across components (what the per-query
        profiler snapshot-diffs), plus this facade's merge accounting."""
        total = IndexStats()
        components = [_generation_index(item)
                      for item in self._generation_items()]
        components.extend(self.memtables)
        for component in components:
            for key, value in component.stats.snapshot().items():
                setattr(total, key, getattr(total, key) + value)
        with self._stats_lock:
            merge_snapshot = self._merge_stats.snapshot()
        for key, value in merge_snapshot.items():
            setattr(total, key, getattr(total, key) + value)
        return total

    def clear_caches(self) -> None:
        for item in self._generation_items():
            _generation_index(item).clear_caches()


class LiveSnapshot:
    """An immutable LiveIndex view: fixed components, fixed watermark.

    Queries against a snapshot return identical results no matter how
    many appends, flushes or compactions land after it was taken — the
    snapshot pins its generation set, so even superseded generations'
    files survive until it is closed (or garbage collected), and the
    component set is captured under the owning facade's
    ``components_lock``, so a concurrent flush can never hand it a torn
    view (sealed memtable pruned but its generation not yet appended,
    or vice versa).

    ``version_token`` is the owning index's
    :meth:`LiveIndex.version_token` at capture time — what the serve
    layer keys cached results on.
    """

    def __init__(self, config: IndexConfig, analyzer: Analyzer,
                 memtables: Tuple[MemIndex, ...],
                 generations: Tuple[HybridIndex, ...],
                 lsn_limit: int,
                 pin: Optional[PinnedGenerations] = None,
                 merge_stats: Optional[IndexStats] = None,
                 stats_lock: Optional[threading.Lock] = None,
                 version_token: Optional[Tuple[int, int]] = None) -> None:
        self.config = config
        self.analyzer = analyzer
        self.memtables = memtables
        self.generations = generations
        self.lsn_limit = lsn_limit
        self.version_token = (version_token if version_token is not None
                              else (lsn_limit, len(generations)))
        self._pin = pin
        # The stats object (and therefore the lock guarding it) is
        # usually shared with the owning LiveIndex.
        self._stats_lock = (stats_lock if stats_lock is not None
                            else threading.Lock())
        self._merge_stats = (merge_stats if merge_stats is not None
                             else IndexStats())  # guarded-by: _stats_lock

    def close(self) -> None:
        """Release the generation-set pin (idempotent)."""
        if self._pin is not None:
            self._pin.release()
            self._pin = None

    def __enter__(self) -> "LiveSnapshot":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    @property
    def geohash_length(self) -> int:
        return self.config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km, self.config.geohash_length,
                            metric)

    def postings(self, cell: str, term: str) -> Sequence[Posting]:
        parts: List[Sequence[Posting]] = []
        for generation in self.generations:
            fetched = generation.postings(cell, term)
            if fetched:
                parts.append(fetched)
        for mem in self.memtables:
            fetched = mem.postings(cell, term, self.lsn_limit)
            if fetched:
                parts.append(fetched)
        with self._stats_lock:
            self._merge_stats.generations_probed += len(self.generations)
            self._merge_stats.postings_sources_merged += len(parts)
        return _merge_parts(parts)

    def postings_fetch_count(self) -> int:
        return (sum(gen.stats.postings_fetches for gen in self.generations)
                + sum(mem.stats.postings_fetches for mem in self.memtables))

    @property
    def stats(self) -> IndexStats:
        """Aggregate counters across the frozen components plus the
        shared merge accounting — the same shape as
        :attr:`LiveIndex.stats`, so a snapshot can stand in as the
        profiler's index source (``ProfileRecorder`` snapshot-diffs
        ``source.stats``)."""
        total = IndexStats()
        components: List[Any] = list(self.generations)
        components.extend(self.memtables)
        for component in components:
            for key, value in component.stats.snapshot().items():
                setattr(total, key, getattr(total, key) + value)
        with self._stats_lock:
            merge_snapshot = self._merge_stats.snapshot()
        for key, value in merge_snapshot.items():
            setattr(total, key, getattr(total, key) + value)
        return total

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        result: Dict[str, Dict[str, Sequence[Posting]]] = {}
        for cell in cells:
            per_term: Dict[str, Sequence[Posting]] = {}
            for term in terms:
                postings = self.postings(cell, term)
                if postings:
                    per_term[term] = postings
            if per_term:
                result[cell] = per_term
        return result
