"""The TkLUS engine: one object wiring every subsystem together.

This is the library's primary entry point.  It owns

* the **metadata database** (heap file + B+-trees) loaded with the
  tweet relation,
* the **hybrid index** (forward index in RAM, inverted index on the
  simulated DFS) built by the MapReduce job,
* the **thread builder** (Algorithm 1) with its depth bound,
* the **bounds manager** (global + hot-keyword upper bounds), and
* the two query processors (Algorithms 4 and 5).

Typical use::

    corpus = generate_corpus(num_users=2000, num_root_tweets=10000)
    engine = TkLUSEngine.from_posts(corpus.posts)
    query = TkLUSQuery.create((43.68, -79.37), radius_km=10,
                              keywords=["hotel"], k=5)
    result = engine.search(query, method="max")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..core.model import Dataset, Post, TkLUSQuery
from ..core.scoring import ScoringConfig
from ..core.thread import DEFAULT_DEPTH, ThreadBuilder
from ..data.vocabulary import TABLE2_KEYWORDS
from ..dfs.cluster import DFSCluster, paper_cluster
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.builder import IndexConfig
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from ..storage.records import TweetRecord
from ..text.analyzer import Analyzer
from .bounds import BoundsManager, make_bounds_manager
from .max_ranking import MaxScoreProcessor
from .results import QueryResult
from .sum_ranking import SumScoreProcessor


@dataclass
class EngineConfig:
    """End-to-end configuration of a TkLUS deployment."""

    index: IndexConfig = field(default_factory=IndexConfig)
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    thread_depth: int = DEFAULT_DEPTH
    hot_keywords: Sequence[str] = field(
        default_factory=lambda: list(TABLE2_KEYWORDS))
    pool_size: int = 512
    thread_cache: bool = True


class TkLUSEngine:
    """A fully wired TkLUS query system."""

    def __init__(self, database: MetadataDatabase, index: HybridIndex,
                 thread_builder: ThreadBuilder, bounds: BoundsManager,
                 config: EngineConfig, metric: Metric = DEFAULT_METRIC) -> None:
        self.database = database
        self.index = index
        self.threads = thread_builder
        self.bounds = bounds
        self.config = config
        self.metric = metric
        self._sum = SumScoreProcessor(index, database, thread_builder,
                                      config.scoring, metric)
        self._max = MaxScoreProcessor(index, database, thread_builder, bounds,
                                      config.scoring, metric)

    @classmethod
    def from_posts(cls, posts: Iterable[Post],
                   config: Optional[EngineConfig] = None,
                   cluster: Optional[DFSCluster] = None,
                   analyzer: Optional[Analyzer] = None,
                   metric: Metric = DEFAULT_METRIC,
                   precompute_bounds: bool = True) -> "TkLUSEngine":
        """Stand up the full system from a post collection.

        Builds the metadata database, the hybrid index (via MapReduce onto
        the DFS cluster), the thread builder and — when
        ``precompute_bounds`` — the offline hot-keyword popularity bounds.
        """
        if config is None:
            config = EngineConfig()
        if cluster is None:
            cluster = paper_cluster()
        if analyzer is None:
            analyzer = Analyzer()
        posts = list(posts)

        database = MetadataDatabase.in_memory(pool_size=config.pool_size)
        for post in posts:
            database.insert(TweetRecord(
                sid=post.sid, uid=post.uid,
                lat=post.location[0], lon=post.location[1],
                ruid=post.ruid if post.ruid is not None else -1,
                rsid=post.rsid if post.rsid is not None else -1))

        index = HybridIndex.build(posts, cluster, analyzer, config.index)

        thread_builder = ThreadBuilder(database, depth=config.thread_depth,
                                       epsilon=config.scoring.epsilon,
                                       cache=config.thread_cache)

        dataset: Optional[Dataset] = None
        if precompute_bounds and config.hot_keywords:
            dataset = Dataset()
            dataset.extend(posts)
        hot_terms = analyzer.analyze_query_keywords(config.hot_keywords)
        bounds = make_bounds_manager(database, dataset, hot_terms,
                                     depth=config.thread_depth,
                                     epsilon=config.scoring.epsilon)
        return cls(database, index, thread_builder, bounds, config, metric)

    # -- search ----------------------------------------------------------

    def search(self, query: TkLUSQuery, method: str = "max", *,
               source: Any = None, cancel: Any = None) -> QueryResult:
        """Run a TkLUS query.

        ``method`` is ``"sum"`` (Algorithm 4) or ``"max"`` (Algorithm 5).
        ``source`` substitutes the postings source for this execution
        only — the serve layer passes a pinned
        :class:`~repro.ingest.live.LiveSnapshot` so concurrent ingest
        cannot shift the query's view mid-plan; ``cancel`` is a
        cooperative cancellation token (``check()`` raising) honoured at
        operator boundaries.
        """
        if method == "sum":
            return self._sum.search(query, source=source, cancel=cancel)
        if method == "max":
            return self._max.search(query, source=source, cancel=cancel)
        raise ValueError(f"unknown ranking method {method!r} "
                         "(expected 'sum' or 'max')")

    def search_sum(self, query: TkLUSQuery) -> QueryResult:
        return self._sum.search(query)

    def search_max(self, query: TkLUSQuery) -> QueryResult:
        return self._max.search(query)

    def profile_search(self, query: TkLUSQuery, method: str = "max"):
        """Run a query with tracing and metrics enabled.

        Returns ``(result, spans, registry)``: the usual
        :class:`~repro.query.results.QueryResult` (whose ``profile``
        carries the per-query funnel/pruning/I/O accounting), the list
        of finished root :class:`~repro.obs.Span` trees, and the
        :class:`~repro.obs.MetricsRegistry` populated during the run.
        Observability state is restored on return, so profiling one
        query never perturbs others.
        """
        from .. import obs
        with obs.observed() as (tracer, registry):
            result = self.search(query, method=method)
        return result, tracer.roots(), registry

    def make_query(self, location, radius_km: float, keywords,
                   k: int = 10, semantics=None) -> TkLUSQuery:
        """Build a query whose keywords are normalised with this engine's
        analyzer."""
        from ..core.model import Semantics
        if semantics is None:
            semantics = Semantics.OR
        return TkLUSQuery.create(location, radius_km, keywords, k, semantics,
                                 analyzer=self.index.analyzer)

    # -- introspection -------------------------------------------------------

    def processor(self, method: str, use_pruning: bool = True):
        """Expose a raw processor (for ablations).  A fresh
        :class:`MaxScoreProcessor` is returned when pruning is disabled so
        the shared one keeps its configuration."""
        if method == "sum":
            return self._sum
        if method == "max":
            if use_pruning:
                return self._max
            return MaxScoreProcessor(self.index, self.database, self.threads,
                                     self.bounds, self.config.scoring,
                                     self.metric, use_pruning=False)
        raise ValueError(f"unknown ranking method {method!r}")

    def explain_plan(self, query: TkLUSQuery, method: str = "max",
                     use_pruning: bool = True) -> str:
        """Render the physical operator plan this engine would execute
        for ``query`` (what ``repro explain`` prints)."""
        processor = self.processor(method, use_pruning)
        return processor.plan_for(query).describe()

    def index_report(self) -> dict:
        """Sizes and build facts for the index experiments (Figs 5-6).

        Generational and live indexes have no single forward index or
        cluster attribute; fields they cannot supply are reported as
        ``None`` rather than failing the whole report.
        """
        forward = getattr(self.index, "forward", None)
        cluster = getattr(self.index, "cluster", None)
        size_of = getattr(self.index, "forward_size_bytes", None)
        inverted = getattr(self.index, "inverted_size_bytes", None)
        return {
            "geohash_length": self.index.geohash_length,
            "forward_entries": len(forward) if forward is not None else None,
            "forward_bytes": size_of() if size_of is not None else None,
            "inverted_bytes": inverted() if inverted is not None else None,
            "dfs_stored_bytes": (cluster.total_stored_bytes()
                                 if cluster is not None else None),
            "tweets": len(self.database),
        }
