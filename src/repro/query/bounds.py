"""Upper-bound popularity management (Definition 11 and Section V-B).

The max-score algorithm prunes thread construction with an upper bound
on any candidate thread's popularity:

* the **global bound** uses ``t_m``, the maximum reply fanout in the
  database (Definition 11);
* **hot-keyword bounds** are pre-computed offline per frequent keyword —
  "for each top frequent keyword, a specific upper bound popularity is
  pre-computed by offline constructing tweet threads and selecting the
  largest thread score" — and are tighter than the global bound.

For multi-keyword queries: "'AND' semantic uses the smallest upper bound
among the query keywords whereas 'OR' semantic chooses the largest".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..core.model import Dataset, Semantics
from ..core.scoring import upper_bound_popularity
from ..core.thread import DEFAULT_DEPTH, DEFAULT_EPSILON, DatasetThreadBuilder
from ..index.postings import Posting
from ..storage.metadata import MetadataDatabase


class BoundsManager:
    """Supplies the popularity bound for a query's keywords."""

    def __init__(self, global_bound: float,
                 keyword_bounds: Optional[Dict[str, float]] = None) -> None:
        if global_bound < 0:
            raise ValueError(f"global bound must be non-negative: {global_bound}")
        self.global_bound = global_bound
        self.keyword_bounds: Dict[str, float] = dict(keyword_bounds or {})

    @classmethod
    def from_database(cls, database: MetadataDatabase,
                      depth: int = DEFAULT_DEPTH) -> "BoundsManager":
        """Global bound only, from the database's observed ``t_m``."""
        return cls(upper_bound_popularity(database.max_reply_fanout, depth))

    def add_keyword_bound(self, keyword: str, bound: float) -> None:
        if bound < 0:
            raise ValueError(f"bound must be non-negative: {bound}")
        self.keyword_bounds[keyword] = bound

    def bound_for_keyword(self, keyword: str) -> float:
        """Specific bound when the keyword is hot, else the global bound."""
        return self.keyword_bounds.get(keyword, self.global_bound)

    def bound_for_query(self, keywords: FrozenSet[str],
                        semantics: Semantics) -> float:
        """Section VI-B5's combination rule.

        AND takes the smallest per-keyword bound (every keyword must
        appear, so the tightest constraint applies); OR takes the
        largest (any single keyword could carry the match).  Queries with
        no hot keyword fall back to the global bound on every keyword,
        making both choices equal to it.
        """
        per_keyword = [self.bound_for_keyword(keyword) for keyword in keywords]
        if not per_keyword:
            return self.global_bound
        if semantics is Semantics.AND:
            return min(per_keyword)
        return max(per_keyword)

    def bound_source(self, keywords: FrozenSet[str],
                     semantics: Semantics) -> str:
        """Which bound family :meth:`bound_for_query` selects for this
        query: ``"hot"`` when the chosen bound is a pre-computed
        hot-keyword bound, else ``"global"``.  Used by the per-query
        profile to attribute pruning decisions (the Fig 12 comparison).
        """
        per_keyword = [(self.bound_for_keyword(keyword),
                        keyword in self.keyword_bounds)
                       for keyword in keywords]
        if not per_keyword:
            return "global"
        if semantics is Semantics.AND:
            _bound, is_hot = min(per_keyword, key=lambda item: item[0])
        else:
            _bound, is_hot = max(per_keyword, key=lambda item: item[0])
        return "hot" if is_hot else "global"


def postings_match_bound(
        per_cell: Dict[str, Dict[str, Sequence[Posting]]],
        terms: List[str]) -> int:
    """Query-wide ceiling on any candidate's keyword match count, read
    off the fetched (and possibly window-clipped) postings themselves.

    For each query term, take the largest term frequency any cover
    cell's list could contribute — from the per-block ``max_tf`` skip
    headers for lazy block views (no decoding, and already narrowed to
    the temporal window), a linear scan for plain lists — then sum over
    terms.  Sound under both semantics: an AND candidate sums tf over
    every term, an OR candidate over a subset, and each per-term tf is
    bounded by that term's maximum.

    Tighter than the list-wide maxima the flat format allowed whenever a
    temporal window drops the high-tf blocks, and tighter than no bound
    at all (the pre-block behaviour) always.
    """
    total = 0
    for term in terms:
        best = 0
        for per_term in per_cell.values():
            postings = per_term.get(term)
            if not postings:
                continue
            header_bound = getattr(postings, "max_tf", None)
            if header_bound is not None:
                tf_bound = header_bound()
            else:
                tf_bound = max(tf for _tid, tf in postings)
            if tf_bound > best:
                best = tf_bound
        total += best
    return total


def precompute_keyword_bounds(dataset: Dataset, keywords: Iterable[str],
                              depth: int = DEFAULT_DEPTH,
                              epsilon: float = DEFAULT_EPSILON) -> Dict[str, float]:
    """Offline pre-computation of hot-keyword bounds (Section V-B).

    For each keyword, construct the thread of every tweet containing it
    and keep the largest popularity.  Run once against the corpus; the
    result feeds a :class:`BoundsManager`.
    """
    wanted = set(keywords)
    builder = DatasetThreadBuilder(dataset, depth=depth, epsilon=epsilon)
    bounds: Dict[str, float] = {keyword: 0.0 for keyword in wanted}
    for post in dataset.posts.values():
        present = wanted.intersection(post.words)
        if not present:
            continue
        popularity = builder.popularity(post.sid)
        for keyword in present:
            if popularity > bounds[keyword]:
                bounds[keyword] = popularity
    return bounds


def make_bounds_manager(database: MetadataDatabase, dataset: Optional[Dataset],
                        hot_keywords: Iterable[str] = (),
                        depth: int = DEFAULT_DEPTH,
                        epsilon: float = DEFAULT_EPSILON) -> BoundsManager:
    """Build a manager with the global bound plus (when a dataset is
    available for offline analysis) hot-keyword bounds."""
    manager = BoundsManager.from_database(database, depth)
    hot = list(hot_keywords)
    if dataset is not None and hot:
        for keyword, bound in precompute_keyword_bounds(
                dataset, hot, depth, epsilon).items():
            manager.add_keyword_bound(keyword, bound)
    return manager
