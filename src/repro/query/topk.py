"""The top-k user priority queue of Algorithm 5.

A bounded min-heap keyed by user score with by-user updates:
``topKUser.peek()`` returns the smallest score currently in the top-k
(the pruning threshold), and offering a user already present replaces
their score only when the new one is larger (lines 22-33).

Updates use lazy deletion: superseded heap entries are skipped on pop.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple


class TopKUserQueue:
    """Bounded priority queue of ``(uid, score)`` with max-per-user
    semantics."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1: {k}")
        self.k = k
        self._scores: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, uid: int) -> bool:
        return uid in self._scores

    @property
    def full(self) -> bool:
        return len(self._scores) >= self.k

    def score_of(self, uid: int) -> Optional[float]:
        return self._scores.get(uid)

    def _compact(self) -> None:
        """Drop stale heap heads (entries superseded by a later offer)."""
        while self._heap:
            score, uid = self._heap[0]
            if self._scores.get(uid) == score:
                return
            heapq.heappop(self._heap)

    def peek(self) -> float:
        """The smallest score in the queue (``topKUser.peek()``);
        requires a non-empty queue."""
        self._compact()
        if not self._heap:
            raise IndexError("peek on empty queue")
        return self._heap[0][0]

    def threshold(self) -> float:
        """Pruning threshold: the k-th score when full, else -inf (no
        pruning until the queue fills, Algorithm 5 line 18)."""
        if not self.full:
            return float("-inf")
        return self.peek()

    def offer(self, uid: int, score: float) -> bool:
        """Offer a candidate (lines 22-33).  Returns True when the queue
        changed.

        * present user: score is raised if the offer is larger;
        * absent user, queue not full: inserted;
        * absent user, queue full: replaces the minimum only when the
          offer beats it.
        """
        current = self._scores.get(uid)
        if current is not None:
            if score <= current:
                return False
            self._scores[uid] = score
            heapq.heappush(self._heap, (score, uid))
            return True
        if not self.full:
            self._scores[uid] = score
            heapq.heappush(self._heap, (score, uid))
            return True
        self._compact()
        if not self._heap or score <= self._heap[0][0]:
            return False
        _evicted_score, evicted_uid = heapq.heappop(self._heap)
        del self._scores[evicted_uid]
        self._scores[uid] = score
        heapq.heappush(self._heap, (score, uid))
        return True

    def ranked(self) -> List[Tuple[int, float]]:
        """Contents sorted by descending score (ties by uid for
        determinism)."""
        return sorted(self._scores.items(), key=lambda item: (-item[1], item[0]))
