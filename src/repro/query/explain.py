"""Score explanations: why did a user rank where they did?

A recommendation system answering "who should I contact about X near
here" needs to justify its answers — the user study's raters judged
``(userId, tweet content)`` lines for exactly this reason.  The explain
API decomposes a user's score for a query into the paper's terms:

* each matching in-radius tweet with its distance, distance score
  (Definition 5), thread level sizes and popularity (Definition 4),
  keyword occurrences and relevance contribution (Definition 6);
* the keyword aggregate under both Definition 7 (sum) and Definition 8
  (max);
* the user distance score over all their posts (Definition 9);
* the final blended scores (Definition 10).

The explanation recomputes from first principles against the dataset
(not the index), so tests can also use it as a cross-check of the
engine's scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.model import Dataset, Semantics, TkLUSQuery
from ..core.scoring import (
    ScoringConfig,
    distance_score,
    keyword_match_count,
    user_distance_score,
    user_score,
)
from ..core.thread import DatasetThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric


@dataclass
class TweetExplanation:
    """One matching tweet's contribution."""

    sid: int
    text: str
    distance_km: float
    distance_score: float       # Definition 5
    keyword_occurrences: int    # |q.W ∩ p.W|, bag model
    thread_levels: List[int]    # |T_1|, |T_2|, ...
    popularity: float           # Definition 4
    relevance: float            # Definition 6

    def describe(self) -> str:
        return (f"tweet {self.sid}: {self.keyword_occurrences} keyword "
                f"hit(s), thread levels {self.thread_levels} -> "
                f"popularity {self.popularity:.3f}, "
                f"{self.distance_km:.2f} km away -> "
                f"relevance {self.relevance:.4f}")


@dataclass
class UserExplanation:
    """The full decomposition of a user's score for one query."""

    uid: int
    query_keywords: List[str]
    tweets: List[TweetExplanation] = field(default_factory=list)
    total_posts: int = 0
    sum_keyword_score: float = 0.0      # Definition 7 (in-radius scope)
    max_keyword_score: float = 0.0      # Definition 8
    distance_part: float = 0.0          # Definition 9
    sum_user_score: float = 0.0         # Definition 10 with rho_s
    max_user_score: float = 0.0         # Definition 10 with rho_m

    @property
    def matching_tweets(self) -> int:
        return len(self.tweets)

    def describe(self) -> str:
        lines = [
            f"user {self.uid}: {self.matching_tweets} matching in-radius "
            f"tweet(s) of {self.total_posts} total post(s)",
        ]
        for tweet in self.tweets:
            lines.append("  " + tweet.describe())
        lines.append(
            f"  keyword score: sum={self.sum_keyword_score:.4f} "
            f"max={self.max_keyword_score:.4f}")
        lines.append(f"  distance score delta(u,q)={self.distance_part:.4f} "
                     f"(avg over all {self.total_posts} posts)")
        lines.append(
            f"  final: sum-ranking {self.sum_user_score:.4f}, "
            f"max-ranking {self.max_user_score:.4f}")
        return "\n".join(lines)


class Explainer:
    """Builds :class:`UserExplanation` objects against a dataset."""

    def __init__(self, dataset: Dataset,
                 config: Optional[ScoringConfig] = None,
                 metric: Metric = DEFAULT_METRIC, depth: int = 6) -> None:
        self.dataset = dataset
        self.config = config if config is not None else ScoringConfig()
        self.metric = metric
        self.threads = DatasetThreadBuilder(dataset, depth=depth,
                                            epsilon=self.config.epsilon)

    def explain(self, query: TkLUSQuery, uid: int) -> UserExplanation:
        """Decompose ``uid``'s score for ``query``."""
        posts = self.dataset.posts_of(uid)
        explanation = UserExplanation(
            uid=uid, query_keywords=sorted(query.keywords),
            total_posts=len(posts))
        relevances: List[float] = []
        window = query.temporal.window
        recency = query.temporal.recency
        reference = 0
        if recency is not None:
            reference = recency.resolve_reference(
                max(self.dataset.posts) if self.dataset.posts else 0)

        for post in posts:
            if not window.contains(post.sid):
                continue
            bag = post.word_bag()
            occurrences = keyword_match_count(bag, query.keywords)
            if occurrences == 0:
                continue
            present = [kw for kw in query.keywords if bag.get(kw)]
            if (query.semantics is Semantics.AND
                    and len(present) != len(query.keywords)):
                continue
            distance = self.metric(query.location, post.location)
            if distance > query.radius_km:
                continue
            thread = self.threads.build(post.sid)
            popularity = thread.popularity(self.config.epsilon)
            relevance = (occurrences / self.config.keyword_normalizer
                         ) * popularity
            if recency is not None:
                relevance *= recency.weight(post.sid, reference)
            explanation.tweets.append(TweetExplanation(
                sid=post.sid, text=post.text,
                distance_km=distance,
                distance_score=distance_score(post.location, query.location,
                                              query.radius_km, self.metric),
                keyword_occurrences=occurrences,
                thread_levels=thread.level_sizes(),
                popularity=popularity,
                relevance=relevance,
            ))
            relevances.append(relevance)

        explanation.sum_keyword_score = sum(relevances)
        explanation.max_keyword_score = max(relevances, default=0.0)
        explanation.distance_part = user_distance_score(
            [post.location for post in posts], query.location,
            query.radius_km, self.metric)
        explanation.sum_user_score = user_score(
            explanation.sum_keyword_score, explanation.distance_part,
            self.config)
        explanation.max_user_score = user_score(
            explanation.max_keyword_score, explanation.distance_part,
            self.config)
        return explanation

    def explain_ranking(self, query: TkLUSQuery,
                        ranking: List[int]) -> List[UserExplanation]:
        """Explanations for a whole result list, in rank order."""
        return [self.explain(query, uid) for uid in ranking]

    def top_contributor(self, query: TkLUSQuery,
                        uid: int) -> Optional[TweetExplanation]:
        """The single tweet dominating this user's max score, if any."""
        explanation = self.explain(query, uid)
        if not explanation.tweets:
            return None
        return max(explanation.tweets, key=lambda tweet: tweet.relevance)
