"""Query processing: Algorithms 4 (sum) and 5 (max with upper-bound
pruning), AND/OR semantics, bounds, and the engine facade."""

from .baseline import BruteForceProcessor
from .bounds import BoundsManager, make_bounds_manager, precompute_keyword_bounds
from .distributed import DistributedExecutor, ScatterStats
from .engine import EngineConfig, TkLUSEngine
from .explain import Explainer, TweetExplanation, UserExplanation
from .federation import FederatedEngine, FederatedResult, FederatedUser
from .max_ranking import MaxScoreProcessor
from .pipeline import (
    PhysicalOperator,
    PhysicalPlan,
    Planner,
    PlanSpec,
    PostingsSource,
    QueryContext,
    run_plan,
)
from .results import QueryResult, QueryStats
from .semantics import Candidate, candidates_from_postings
from .sum_ranking import SumScoreProcessor
from .topk import TopKUserQueue

__all__ = [
    "BoundsManager",
    "BruteForceProcessor",
    "Candidate",
    "DistributedExecutor",
    "EngineConfig",
    "Explainer",
    "FederatedEngine",
    "FederatedResult",
    "FederatedUser",
    "MaxScoreProcessor",
    "PhysicalOperator",
    "PhysicalPlan",
    "PlanSpec",
    "Planner",
    "PostingsSource",
    "QueryContext",
    "QueryResult",
    "QueryStats",
    "run_plan",
    "ScatterStats",
    "SumScoreProcessor",
    "TkLUSEngine",
    "TopKUserQueue",
    "TweetExplanation",
    "UserExplanation",
    "candidates_from_postings",
    "make_bounds_manager",
    "precompute_keyword_bounds",
]
