"""Distributed (scatter-gather) TkLUS query execution.

The paper's index is distributed, and its layout argument (Section
IV-B1) is about query-time data locality: a query's cover cells should
live on few machines.  This module completes that story with a
scatter-gather executor:

* the circle cover is split by **partition ownership** — each cover
  cell maps (via the forward index) to the part file, and hence the
  "query server", that owns its postings;
* each involved server retrieves and scores its own candidates in
  parallel (a thread per server, simulating per-node execution), doing
  candidate retrieval, distance filtering and thread scoring locally;
* the coordinator merges per-server partial aggregates into the final
  user ranking (sum scores add across servers; max scores take the
  maximum), computes the per-user distance part once, and returns the
  top-k.

The executor is answer-identical to the single-node processors (tested)
and reports scatter width (servers involved) per query — small under
geohash range partitioning, large under hash partitioning.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig, user_distance_score, user_score
from ..core.thread import ThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from .results import QueryResult, QueryStats
from .semantics import candidates_from_postings


@dataclass
class ScatterStats(QueryStats):
    """Query stats extended with scatter-gather shape."""

    servers_involved: int = 0
    partial_results: int = 0


@dataclass
class _PartialAggregate:
    """One server's contribution: per-user keyword score parts."""

    keyword_parts: Dict[int, float] = field(default_factory=dict)
    candidates: int = 0
    candidates_in_radius: int = 0


class DistributedExecutor:
    """Scatter-gather execution over the partitions of a hybrid index.

    ``aggregate`` is ``"sum"`` (Definition 7) or ``"max"``
    (Definition 8).  Each simulated server shares the metadata database
    (the paper keeps tweet metadata in a centralized store, Figure 3).
    """

    def __init__(self, index: HybridIndex, database: MetadataDatabase,
                 thread_builder: ThreadBuilder,
                 config: ScoringConfig = ScoringConfig(),
                 metric: Metric = DEFAULT_METRIC,
                 max_workers: int = 4) -> None:
        self.index = index
        self.database = database
        self.threads = thread_builder
        self.config = config
        self.metric = metric
        self.max_workers = max_workers
        # Tweet metadata lives in a centralized database (Figure 3); the
        # buffer pool and thread-popularity cache are not thread-safe, so
        # server tasks serialise their metadata accesses through this
        # lock.  Postings retrieval and intersection stay parallel.
        self._db_lock = threading.Lock()

    # -- partition routing ----------------------------------------------------

    def _cells_by_server(self, cells: List[str],
                         terms: List[str]) -> Dict[str, List[str]]:
        """Group cover cells by the part file (server) owning their
        postings.  Cells with no indexed postings for any query term are
        dropped here, before any server is involved."""
        by_server: Dict[str, List[str]] = {}
        for cell in cells:
            owner: Optional[str] = None
            for term in terms:
                ref = self.index.forward.lookup(cell, term)
                if ref is not None:
                    owner = ref.path
                    break
            if owner is not None:
                by_server.setdefault(owner, []).append(cell)
        return by_server

    # -- per-server work --------------------------------------------------------

    def _server_task(self, cells: List[str], terms: List[str],
                     query: TkLUSQuery, aggregate: str) -> _PartialAggregate:
        partial = _PartialAggregate()
        per_cell = self.index.postings_for_query(cells, terms)
        from .semantics import clip_per_cell
        per_cell = clip_per_cell(per_cell, query.temporal.window)
        candidates = candidates_from_postings(per_cell, terms,
                                              query.semantics)
        partial.candidates = len(candidates)
        recency = query.temporal.recency
        reference = (recency.resolve_reference(self.database.max_sid)
                     if recency is not None else 0)
        for candidate in candidates:
            with self._db_lock:
                record = self.database.get(candidate.tid)
            if record is None:
                continue
            distance = self.metric(query.location, (record.lat, record.lon))
            if distance > query.radius_km:
                continue
            partial.candidates_in_radius += 1
            with self._db_lock:
                popularity = self.threads.popularity(candidate.tid)
            relevance = (candidate.match_count
                         / self.config.keyword_normalizer) * popularity
            if recency is not None:
                relevance *= recency.weight(candidate.tid, reference)
            if aggregate == "sum":
                partial.keyword_parts[record.uid] = (
                    partial.keyword_parts.get(record.uid, 0.0) + relevance)
            else:
                partial.keyword_parts[record.uid] = max(
                    partial.keyword_parts.get(record.uid, 0.0), relevance)
        return partial

    # -- coordinator -------------------------------------------------------------

    def search(self, query: TkLUSQuery, aggregate: str = "sum") -> QueryResult:
        if aggregate not in ("sum", "max"):
            raise ValueError(f"aggregate must be 'sum' or 'max': {aggregate!r}")
        start = time.perf_counter()
        stats = ScatterStats()

        terms = sorted(query.keywords)
        cells = self.index.cover(query.location, query.radius_km, self.metric)
        stats.cells_covered = len(cells)
        by_server = self._cells_by_server(cells, terms)
        stats.servers_involved = len(by_server)

        if not by_server:
            stats.elapsed_seconds = time.perf_counter() - start
            return QueryResult(users=[], stats=stats)

        with ThreadPoolExecutor(
                max_workers=min(self.max_workers, len(by_server))) as pool:
            partials = list(pool.map(
                lambda item: self._server_task(item[1], terms, query,
                                               aggregate),
                sorted(by_server.items())))
        stats.partial_results = len(partials)

        # Gather: merge per-user keyword parts across servers.
        merged: Dict[int, float] = {}
        for partial in partials:
            stats.candidates += partial.candidates
            stats.candidates_in_radius += partial.candidates_in_radius
            for uid, part in partial.keyword_parts.items():
                if aggregate == "sum":
                    merged[uid] = merged.get(uid, 0.0) + part
                else:
                    merged[uid] = max(merged.get(uid, 0.0), part)

        scored: List[Tuple[int, float]] = []
        for uid, keyword_part in merged.items():
            posts = self.database.posts_of_user(uid)
            locations = [(record.lat, record.lon) for record in posts]
            distance_part = user_distance_score(
                locations, query.location, query.radius_km, self.metric)
            scored.append((uid, user_score(keyword_part, distance_part,
                                           self.config)))
        scored.sort(key=lambda item: (-item[1], item[0]))
        stats.elapsed_seconds = time.perf_counter() - start
        return QueryResult(users=scored[:query.k], stats=stats)
