"""Distributed (scatter-gather) TkLUS query execution.

The paper's index is distributed, and its layout argument (Section
IV-B1) is about query-time data locality: a query's cover cells should
live on few machines.  This module completes that story with a
scatter-gather executor built from the same physical operators as the
single-node paths:

* ``PartitionRoute`` splits the circle cover by **partition ownership**
  — each cover cell maps (via the postings source's ``owner_of``) to the
  part file, and hence the "query server", that owns its postings;
* ``ScatterGather`` runs the retrieval-and-score server sub-plan per
  involved server in parallel (a thread per server, simulating per-node
  execution) over per-worker child contexts, then merges the per-server
  partial aggregates (sum scores add across servers; max scores take the
  maximum);
* the coordinator's ``Rank`` computes the per-user distance part once
  and returns the top-k.

The executor is answer-identical to the single-node processors (tested)
and reports scatter width (servers involved) per query — small under
geohash range partitioning, large under hash partitioning.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig
from ..core.thread import ThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from .pipeline import Planner, QueryContext, run_plan
from .results import QueryResult, ScatterStats

__all__ = ["DistributedExecutor", "ScatterStats"]


class DistributedExecutor:
    """Scatter-gather execution over the partitions of a hybrid index.

    ``aggregate`` is ``"sum"`` (Definition 7) or ``"max"``
    (Definition 8).  Each simulated server shares the metadata database
    (the paper keeps tweet metadata in a centralized store, Figure 3).
    """

    def __init__(self, index: HybridIndex, database: MetadataDatabase,
                 thread_builder: ThreadBuilder,
                 config: Optional[ScoringConfig] = None,
                 metric: Metric = DEFAULT_METRIC,
                 max_workers: int = 4) -> None:
        self.index = index
        self.database = database
        self.threads = thread_builder
        self.config = config if config is not None else ScoringConfig()
        self.metric = metric
        self.max_workers = max_workers
        # Tweet metadata lives in a centralized database (Figure 3); the
        # buffer pool and thread-popularity cache are not thread-safe, so
        # server tasks serialise their metadata accesses through this
        # lock.  Postings retrieval and intersection stay parallel.
        self._db_lock = threading.Lock()
        self._planner = Planner(max_workers=max_workers)

    def plan_for(self, query: TkLUSQuery, aggregate: str = "sum"):
        """The physical (scatter-gather) plan for ``query``."""
        return self._planner.plan_for_query(aggregate, query,
                                            distributed=True)

    def search(self, query: TkLUSQuery, aggregate: str = "sum") -> QueryResult:
        if aggregate not in ("sum", "max"):
            raise ValueError(f"aggregate must be 'sum' or 'max': {aggregate!r}")
        ctx = QueryContext.for_database(
            query, config=self.config, metric=self.metric, source=self.index,
            database=self.database, threads=self.threads,
            stats=ScatterStats(), lock=self._db_lock)
        return run_plan(self.plan_for(query, aggregate), ctx)
