"""Algorithm 5: query processing for maximum-score based user ranking
with upper-bound pruning.

Identical candidate retrieval to Algorithm 4; the scoring loop instead
maintains a top-k priority queue and, before constructing a candidate's
tweet thread (the I/O bottleneck, Section V-B), checks whether even an
*overestimated* user score — Definition 11's popularity bound combined
with the maximum distance score of 1 — could beat the current k-th best.
If not, thread construction is skipped (lines 18-19).

The popularity bound comes from a :class:`~repro.query.bounds.BoundsManager`:
the global ``t_m`` bound, or the tighter pre-computed per-keyword bound
when every relevant query keyword is hot (Section VI-B5's AND=min /
OR=max combination).
"""

from __future__ import annotations

import time

from .. import obs
from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig, user_distance_score, user_score
from ..core.thread import ThreadBuilder
from ..geo.cover import cover_cells_fully_inside
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from .bounds import BoundsManager
from .profiling import ProfileRecorder
from .results import QueryResult, QueryStats
from .semantics import candidates_from_postings, clip_per_cell
from .topk import TopKUserQueue


class MaxScoreProcessor:
    """Executes TkLUS queries under maximum-score ranking with pruning.

    ``use_pruning=False`` disables the upper-bound check (for the
    ablation benchmark); the ranking is then computed exhaustively and
    must agree with the pruned run.
    """

    def __init__(self, index: HybridIndex, database: MetadataDatabase,
                 thread_builder: ThreadBuilder, bounds: BoundsManager,
                 config: ScoringConfig = ScoringConfig(),
                 metric: Metric = DEFAULT_METRIC,
                 use_pruning: bool = True,
                 tighten_distance_bound: bool = True,
                 use_cell_containment: bool = True) -> None:
        self.index = index
        self.database = database
        self.threads = thread_builder
        self.bounds = bounds
        self.config = config
        self.metric = metric
        self.use_pruning = use_pruning
        # Sound refinement beyond the paper's bound: once a candidate
        # user's distance score delta(u, q) has been computed for this
        # query, later candidates of the same user can use it in place of
        # the maximum distance score 1 (delta(u, q) is per-user, not
        # per-tweet, so the substitution never under-estimates).
        self.tighten_distance_bound = tighten_distance_bound
        # See SumScoreProcessor: fully-inside cover cells skip the
        # per-tweet distance check (answer-preserving).
        self.use_cell_containment = use_cell_containment

    def _upper_bound_score(self, query: TkLUSQuery, match_count: int,
                           known_distance_part: float = 1.0) -> float:
        """Line 18's ``UpperBound``: overestimate of any user score this
        candidate could produce.  ``known_distance_part`` is 1 (the
        maximum distance score) unless the candidate's user already has a
        computed delta(u, q)."""
        popularity_bound = self.bounds.bound_for_query(
            query.keywords, query.semantics)
        keyword_bound = (match_count / self.config.keyword_normalizer
                         ) * popularity_bound
        return (self.config.alpha * keyword_bound
                + (1.0 - self.config.alpha) * known_distance_part)

    def _distance_part(self, uid: int, query: TkLUSQuery) -> float:
        posts = self.database.posts_of_user(uid)
        locations = [(record.lat, record.lon) for record in posts]
        return user_distance_score(locations, query.location,
                                   query.radius_km, self.metric)

    def search(self, query: TkLUSQuery) -> QueryResult:
        start = time.perf_counter()
        stats = QueryStats()
        recorder = ProfileRecorder(self.database, self.index, query, "max")
        profile = recorder.profile

        # Which bound family serves this query — every pruning decision
        # below is attributed to it (the Fig 12 ledger).
        bound_source = "none"
        if self.use_pruning:
            bound_source = self.bounds.bound_source(query.keywords,
                                                    query.semantics)
        profile.bound_source = bound_source

        with obs.trace("query.search", method="max",
                       semantics=query.semantics.value, k=query.k,
                       radius_km=query.radius_km):
            terms = sorted(query.keywords)
            with obs.trace("query.cover") as cover_span:
                cells = self.index.cover(query.location, query.radius_km,
                                         self.metric)
                cover_span.set(cells=len(cells))
            stats.cells_covered = len(cells)

            fetched_before = self.index.stats.postings_fetches
            per_cell = self.index.postings_for_query(cells, terms)
            stats.postings_lists_fetched = (
                self.index.stats.postings_fetches - fetched_before)

            per_cell = clip_per_cell(per_cell, query.temporal.window)
            candidates = candidates_from_postings(per_cell, terms,
                                                  query.semantics)
            stats.candidates = len(candidates)

            recency = query.temporal.recency
            reference = 0
            if recency is not None:
                reference = recency.resolve_reference(self.database.max_sid)

            inside_cells = set()
            if self.use_cell_containment:
                inside, _boundary = cover_cells_fully_inside(
                    query.location, query.radius_km,
                    self.index.geohash_length, self.metric)
                inside_cells = set(inside)

            queue = TopKUserQueue(query.k)
            distance_parts = {}  # uid -> delta(u, q), computed once per user

            threads_before = self.threads.threads_built
            with obs.trace("query.score", candidates=len(candidates)):
                for candidate in candidates:
                    record = self.database.get(candidate.tid)
                    if record is None:
                        continue
                    if candidate.cell in inside_cells:
                        stats.distance_checks_skipped += 1
                    else:
                        distance = self.metric(query.location,
                                               (record.lat, record.lon))
                        if distance > query.radius_km:
                            continue
                    stats.candidates_in_radius += 1

                    # Lines 18-19: prune before paying for thread
                    # construction.
                    if self.use_pruning and queue.full:
                        known = 1.0
                        if self.tighten_distance_bound:
                            known = distance_parts.get(record.uid, 1.0)
                        bound = self._upper_bound_score(
                            query, candidate.match_count, known)
                        if bound < queue.peek():
                            stats.threads_pruned += 1
                            self._count_pruned(profile, bound_source)
                            obs.event("query.prune", tid=candidate.tid,
                                      uid=record.uid, source=bound_source)
                            continue
                        # A user's own score can also make their remaining
                        # tweets irrelevant, independent of the queue
                        # threshold.
                        own = queue.score_of(record.uid)
                        if own is not None and bound <= own:
                            stats.threads_pruned += 1
                            self._count_pruned(profile, bound_source)
                            obs.event("query.prune", tid=candidate.tid,
                                      uid=record.uid, source=bound_source)
                            continue

                    popularity = self.threads.popularity(candidate.tid)
                    relevance = (candidate.match_count
                                 / self.config.keyword_normalizer) * popularity
                    # Recency weight <= 1, so the pruning bound above
                    # (which omits it) remains a sound over-estimate.
                    if recency is not None:
                        relevance *= recency.weight(candidate.tid, reference)
                    uid = record.uid
                    if uid not in distance_parts:
                        distance_parts[uid] = self._distance_part(uid, query)
                    score = user_score(relevance, distance_parts[uid],
                                       self.config)
                    queue.offer(uid, score)
                    profile.users_scored += 1

            stats.threads_built = self.threads.threads_built - threads_before
            stats.elapsed_seconds = time.perf_counter() - start
            stats.io_delta = recorder.io_delta_pages()

        profile.cells_covered = stats.cells_covered
        profile.candidates = stats.candidates
        profile.candidate_users = stats.candidates_in_radius
        profile.threads_built = stats.threads_built
        recorder.finish(stats.elapsed_seconds)
        return QueryResult(users=queue.ranked(), stats=stats, profile=profile)

    @staticmethod
    def _count_pruned(profile, bound_source: str) -> None:
        if bound_source == "hot":
            profile.users_pruned_hot += 1
        else:
            profile.users_pruned_global += 1
