"""Algorithm 5: query processing for maximum-score based user ranking
with upper-bound pruning.

Identical candidate retrieval to Algorithm 4 (the plans share their
``Cover -> PostingsFetch -> CandidateForm -> RadiusFilter`` prefix); the
scoring stage instead runs in ranked mode — it maintains a top-k
priority queue and, before constructing a candidate's tweet thread (the
I/O bottleneck, Section V-B), checks whether even an *overestimated*
user score — Definition 11's popularity bound combined with the maximum
distance score of 1 — could beat the current k-th best.  If not, thread
construction is skipped (lines 18-19).

The popularity bound comes from a
:class:`~repro.query.bounds.BoundsManager`: the global ``t_m`` bound, or
the tighter pre-computed per-keyword bound when every relevant query
keyword is hot (Section VI-B5's AND=min / OR=max combination).  The
``BoundsPrune`` operator resolves the bound per query; omitting it
(``use_pruning=False``) gives the exhaustive ablation run, which must
agree with the pruned run.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig
from ..core.thread import ThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from .bounds import BoundsManager
from .pipeline import Planner, QueryContext, run_plan
from .profiling import ProfileRecorder
from .results import QueryResult


class MaxScoreProcessor:
    """Executes TkLUS queries under maximum-score ranking with pruning.

    ``use_pruning=False`` disables the upper-bound check (for the
    ablation benchmark); the ranking is then computed exhaustively and
    must agree with the pruned run.
    """

    def __init__(self, index: HybridIndex, database: MetadataDatabase,
                 thread_builder: ThreadBuilder, bounds: BoundsManager,
                 config: Optional[ScoringConfig] = None,
                 metric: Metric = DEFAULT_METRIC,
                 use_pruning: bool = True,
                 tighten_distance_bound: bool = True,
                 use_cell_containment: bool = True) -> None:
        self.index = index
        self.database = database
        self.threads = thread_builder
        self.bounds = bounds
        self.config = config if config is not None else ScoringConfig()
        self.metric = metric
        self.use_pruning = use_pruning
        # Sound refinement beyond the paper's bound: once a candidate
        # user's distance score delta(u, q) has been computed for this
        # query, later candidates of the same user can use it in place of
        # the maximum distance score 1 (delta(u, q) is per-user, not
        # per-tweet, so the substitution never under-estimates).
        self.tighten_distance_bound = tighten_distance_bound
        # See SumScoreProcessor: fully-inside cover cells skip the
        # per-tweet distance check (answer-preserving).
        self.use_cell_containment = use_cell_containment
        self._planner = Planner(
            use_cell_containment=use_cell_containment,
            tighten_distance_bound=tighten_distance_bound)

    def plan_for(self, query: TkLUSQuery):
        """The physical plan this processor would run for ``query``."""
        return self._planner.plan_for_query(
            "max", query, pruning=self.use_pruning,
            kernels=self.config.resolved_kernels())

    def search(self, query: TkLUSQuery, *, source: Any = None,
               cancel: Any = None) -> QueryResult:
        """``source`` overrides the postings source for this one query
        (the serve layer passes a pinned ``LiveSnapshot``); ``cancel``
        is a cooperative cancel token checked at operator boundaries."""
        active = source if source is not None else self.index
        recorder = ProfileRecorder(self.database, active, query, "max")
        ctx = QueryContext.for_database(
            query, config=self.config, metric=self.metric, source=active,
            database=self.database, threads=self.threads, bounds=self.bounds,
            profile=recorder.profile, cancel=cancel)
        return run_plan(self.plan_for(query), ctx, method="max",
                        recorder=recorder)
