"""Cross-platform federated TkLUS search.

The paper's third future-work direction (Section VIII): "it is also
interesting to make the search for local users across the platform
boundary, such that more informative query results can be obtained by
involving different social networks."

:class:`FederatedEngine` wraps several per-platform engines (each with
its own corpus, index and user-id space) and answers one TkLUS query
against all of them via a two-operator plan:

* ``PlatformSearch`` runs the query locally on every platform (its own
  index, bounds, thread builder);
* ``FederatedMerge`` optionally normalises per-platform scores
  (platforms differ in thread-size distributions, so raw keyword scores
  are not directly comparable — min-max normalisation within each
  platform's result list puts them on a shared [0, 1] scale), applies
  platform weights, and merges into a single top-k of
  ``(platform, uid)`` pairs.

User identities never collide across platforms: results carry the
platform name alongside the platform-local uid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.model import TkLUSQuery
from .engine import TkLUSEngine
from .pipeline import PhysicalOperator, PhysicalPlan, QueryContext
from .results import QueryStats


@dataclass(frozen=True)
class FederatedUser:
    """A user qualified by their platform."""

    platform: str
    uid: int
    score: float


@dataclass
class FederatedResult:
    """Merged top-k across platforms plus per-platform statistics."""

    users: List[FederatedUser]
    per_platform_stats: Dict[str, QueryStats] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def ranking(self) -> List[Tuple[str, int]]:
        return [(user.platform, user.uid) for user in self.users]

    def __len__(self) -> int:
        return len(self.users)


def _min_max_normalise(scores: List[float]) -> List[float]:
    """Min-max scale to [0, 1]; a constant list maps to all-ones (every
    result is equally best within its platform)."""
    if not scores:
        return []
    lo, hi = min(scores), max(scores)
    if hi == lo:
        return [1.0] * len(scores)
    return [(score - lo) / (hi - lo) for score in scores]


class PlatformSearchOp(PhysicalOperator):
    """Fan the query out to every platform engine (sorted platform
    order), each platform contributing its local top
    ``per_platform_k``."""

    name = "PlatformSearch"
    paper_lines = "Section VIII (cross-platform future work)"
    writes = ("platform_results",)

    def __init__(self, federation: Optional["FederatedEngine"],
                 method: str) -> None:
        # ``federation=None`` builds a describe-only plan template (the
        # CLI's plan view); executing it requires a real federation.
        self.federation = federation
        self.method = method

    def run(self, ctx: QueryContext) -> None:
        assert self.federation is not None, \
            "this plan is a describe-only template"
        query = ctx.query
        per_platform_k = ctx.params.get("per_platform_k")
        contribution_k = (per_platform_k if per_platform_k is not None
                          else query.k)
        for name in sorted(self.federation.platforms):
            engine = self.federation.platforms[name]
            local_query = TkLUSQuery(
                location=query.location, radius_km=query.radius_km,
                keywords=query.keywords, k=contribution_k,
                semantics=query.semantics, temporal=query.temporal)
            ctx.platform_results[name] = engine.search(local_query,
                                                       method=self.method)

    def describe(self) -> str:
        platforms = ("..." if self.federation is None
                     else ",".join(sorted(self.federation.platforms)))
        return (f"PlatformSearch(method={self.method}, "
                f"platforms=[{platforms}])")


class FederatedMergeOp(PhysicalOperator):
    """Normalise, weight and merge per-platform rankings into the final
    federated top-k (ties break by platform name, then uid)."""

    name = "FederatedMerge"
    paper_lines = "Section VIII (cross-platform future work)"
    writes = ("federated_users",)

    def __init__(self, federation: Optional["FederatedEngine"]) -> None:
        self.federation = federation

    def run(self, ctx: QueryContext) -> None:
        assert self.federation is not None, \
            "this plan is a describe-only template"
        merged: List[FederatedUser] = []
        for name in sorted(ctx.platform_results):
            result = ctx.platform_results[name]
            scores = [score for _uid, score in result.users]
            if self.federation.normalise:
                scores = _min_max_normalise(scores)
            weight = self.federation.platform_weights.get(name, 1.0)
            for (uid, _raw), score in zip(result.users, scores):
                merged.append(FederatedUser(name, uid, weight * score))
        merged.sort(key=lambda user: (-user.score, user.platform, user.uid))
        ctx.federated_users = merged[:ctx.query.k]

    def describe(self) -> str:
        if self.federation is None:
            return "FederatedMerge(normalise=min-max [0,1], top-k)"
        mode = "min-max [0,1]" if self.federation.normalise else "raw"
        weighted = "weighted" if self.federation.platform_weights else "unweighted"
        return f"FederatedMerge(normalise={mode}, {weighted}, top-k)"


def federated_plan(method: str = "max",
                   federation: Optional["FederatedEngine"] = None
                   ) -> PhysicalPlan:
    """The two-stage federated plan.  Without a ``federation`` the plan
    is a describe-only template (for the CLI's plan view)."""
    return PhysicalPlan(
        f"federated, method={method}",
        (PlatformSearchOp(federation, method), FederatedMergeOp(federation)))


class FederatedEngine:
    """A federation of named per-platform TkLUS engines."""

    def __init__(self, platforms: Dict[str, TkLUSEngine],
                 normalise: bool = True,
                 platform_weights: Optional[Dict[str, float]] = None) -> None:
        if not platforms:
            raise ValueError("federation needs at least one platform")
        self.platforms = dict(platforms)
        self.normalise = normalise
        self.platform_weights = dict(platform_weights or {})
        for name, weight in self.platform_weights.items():
            if name not in self.platforms:
                raise ValueError(f"weight for unknown platform {name!r}")
            if weight <= 0:
                raise ValueError(f"platform weight must be positive: {weight}")
        self._plans: Dict[str, PhysicalPlan] = {}

    def add_platform(self, name: str, engine: TkLUSEngine,
                     weight: float = 1.0) -> None:
        if name in self.platforms:
            raise ValueError(f"platform {name!r} already registered")
        if weight <= 0:
            raise ValueError(f"platform weight must be positive: {weight}")
        self.platforms[name] = engine
        self.platform_weights[name] = weight

    def plan_for(self, method: str = "max") -> PhysicalPlan:
        """The federated fan-out/merge plan (memoised per method)."""
        plan = self._plans.get(method)
        if plan is None:
            plan = federated_plan(method, self)
            self._plans[method] = plan
        return plan

    def search(self, query: TkLUSQuery, method: str = "max",
               per_platform_k: Optional[int] = None) -> FederatedResult:
        """Run the query on every platform and merge the top-k.

        ``per_platform_k`` caps what each platform contributes before
        merging (defaults to the query's k — enough to fill any final
        top-k regardless of how the merge falls out).
        """
        start = time.perf_counter()
        ctx = QueryContext(query=query,
                           params={"per_platform_k": per_platform_k})
        self.plan_for(method).execute(ctx)
        stats = {name: result.stats
                 for name, result in ctx.platform_results.items()}
        return FederatedResult(users=ctx.federated_users,
                               per_platform_stats=stats,
                               elapsed_seconds=time.perf_counter() - start)
