"""AND/OR candidate retrieval (lines 1-14 of Algorithms 4 and 5).

Given the circle cover and per-``(cell, term)`` postings lists, produce
the candidate list ``P``:

* **AND** — a candidate must contain *all* query keywords: postings are
  intersected per cell (a tweet lives in exactly one cell), then cells
  are concatenated;
* **OR** — at least one keyword suffices: a k-way union per cell.

Each candidate carries the total query-keyword occurrence count
(``|q.W ∩ p.W|`` under the bag model), summed over its matched terms, so
scoring never re-touches the postings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.model import Semantics
from ..core.temporal import TimeWindow
from ..index.postings import Posting, intersect_many, union_many


@dataclass(frozen=True)
class Candidate:
    """A candidate tweet: id, total keyword occurrences, matched-term
    count, and the geohash cell it was retrieved from."""

    tid: int
    match_count: int     # sum of tf over matched query keywords
    terms_matched: int   # how many distinct query keywords matched
    cell: str = ""       # cover cell the posting came from


def candidates_from_postings(per_cell: Dict[str, Dict[str, Sequence[Posting]]],
                             query_terms: List[str],
                             semantics: Semantics) -> List[Candidate]:
    """Apply the query semantics to fetched postings.

    ``per_cell`` maps cell -> term -> postings (only non-empty lists).
    Candidates are returned in (cell, tid) order — cells are iterated in
    Z-order and postings are tid-sorted — and are unique because each
    tweet is indexed under exactly one cell.
    """
    result: List[Candidate] = []
    term_count = len(query_terms)
    for cell in sorted(per_cell):
        per_term = per_cell[cell]
        if semantics is Semantics.AND:
            if len(per_term) < term_count:
                continue  # some keyword absent from this cell entirely
            lists = [per_term[term] for term in query_terms]
            for tid, tfs in intersect_many(lists):
                result.append(Candidate(tid, sum(tfs), term_count, cell))
        else:
            lists = [per_term[term] for term in query_terms if term in per_term]
            for tid, tfs in union_many(lists):
                matched = sum(1 for tf in tfs if tf > 0)
                result.append(Candidate(tid, sum(tfs), matched, cell))
    return result


def clip_per_cell(per_cell: Dict[str, Dict[str, Sequence[Posting]]],
                  window: TimeWindow) -> Dict[str, Dict[str, Sequence[Posting]]]:
    """Restrict fetched postings to a time window (temporal TkLUS).

    Tweet ids are timestamps and postings are tid-sorted, so each plain
    list is clipped with two binary searches, while lazy block views are
    narrowed through their skip table without decoding out-of-window
    blocks; cells or terms left empty are dropped entirely.
    """
    if window.unbounded:
        return per_cell
    clipped: Dict[str, Dict[str, Sequence[Posting]]] = {}
    for cell, per_term in per_cell.items():
        kept = {}
        for term, postings in per_term.items():
            inside = window.clip_postings(postings)
            if inside:
                kept[term] = inside
        if kept:
            clipped[cell] = kept
    return clipped
