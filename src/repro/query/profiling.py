"""Per-query profile assembly shared by the query processors.

A :class:`ProfileRecorder` snapshots the storage and index counters when
a query starts and turns the deltas — plus the processor's own funnel
counts — into the :class:`~repro.obs.profile.QueryProfile` attached to
every :class:`~repro.query.results.QueryResult`.  Snapshot/diff (rather
than reset) means concurrent queries and session-wide totals keep
working.
"""

from __future__ import annotations

from typing import Dict

from .. import obs
from ..core.model import TkLUSQuery
from ..index.hybrid import HybridIndex
from ..obs.profile import QueryProfile
from ..storage.metadata import MetadataDatabase


class ProfileRecorder:
    """Captures before-counters at construction; :meth:`finish` builds
    the profile from the after-deltas."""

    def __init__(self, database: MetadataDatabase, index: HybridIndex,
                 query: TkLUSQuery, method: str) -> None:
        self._database = database
        self._index = index
        self._io_before = database.stats.snapshot_all()
        self._index_before = index.stats.snapshot()
        self.profile = QueryProfile(
            method=method,
            semantics=query.semantics.value,
            keywords=len(query.keywords),
            k=query.k,
            radius_km=query.radius_km,
        )

    def io_delta_pages(self) -> Dict[str, int]:
        """Per-component page-read deltas (the legacy ``stats.io_delta``
        shape kept for backward compatibility)."""
        return {name: delta["page_reads"]
                for name, delta in
                self._database.stats.diff_all(self._io_before).items()}

    def finish(self, elapsed_seconds: float) -> QueryProfile:
        profile = self.profile
        profile.elapsed_seconds = elapsed_seconds

        io_delta = self._database.stats.diff_all(self._io_before)
        profile.io_by_component = io_delta
        profile.pages_read = sum(d["page_reads"] for d in io_delta.values())
        profile.pages_written = sum(d["page_writes"] for d in io_delta.values())
        profile.cache_hits = sum(d["cache_hits"] for d in io_delta.values())
        profile.cache_misses = sum(d["cache_misses"] for d in io_delta.values())

        index_delta = self._index.stats.diff(self._index_before)
        profile.postings_lists_fetched = index_delta["postings_fetches"]
        profile.postings_entries_read = index_delta["postings_entries_read"]
        profile.index_bytes_read = index_delta["bytes_read"]
        profile.postings_bytes_decoded = index_delta["bytes_decoded"]
        profile.blocks_decoded = index_delta["blocks_decoded"]
        profile.blocks_skipped = index_delta["blocks_skipped"]
        profile.block_cache_hits = index_delta["block_cache_hits"]
        profile.block_cache_misses = index_delta["block_cache_misses"]
        profile.generations_probed = index_delta["generations_probed"]
        profile.postings_sources_merged = \
            index_delta["postings_sources_merged"]

        if obs.is_enabled():
            obs.observe("query.latency_seconds", elapsed_seconds)
            obs.observe("query.pages_read", profile.pages_read)
            obs.inc("query.searches")
            obs.inc("query.candidates", profile.candidates)
            obs.inc("query.candidates_in_radius", profile.candidates_examined)
            obs.inc("query.users_scored", profile.users_scored)
            obs.inc("query.pruned.global", profile.users_pruned_global)
            obs.inc("query.pruned.hot", profile.users_pruned_hot)
            # Storage/index counters are bridged here as per-query
            # deltas rather than incremented per page/block access —
            # those paths run tens of thousands of times per query, and
            # instrumenting each access is what an always-on telemetry
            # runtime cannot afford.  The IOStats/IndexStats sources
            # stay exact regardless of whether obs is enabled.
            obs.inc("storage.page_reads", profile.pages_read)
            obs.inc("storage.page_writes", profile.pages_written)
            obs.inc("storage.cache_hits", profile.cache_hits)
            obs.inc("storage.cache_misses", profile.cache_misses)
            obs.inc("storage.evictions",
                    sum(d["evictions"] for d in io_delta.values()))
            obs.inc("index.postings_fetches", profile.postings_lists_fetched)
            obs.inc("index.postings_entries_read",
                    profile.postings_entries_read)
            obs.inc("index.bytes_read", profile.index_bytes_read)
            obs.inc("index.postings_bytes_decoded",
                    profile.postings_bytes_decoded)
            obs.inc("index.blocks_decoded", profile.blocks_decoded)
            obs.inc("index.blocks_skipped", profile.blocks_skipped)
            obs.inc("index.block_cache.hits", profile.block_cache_hits)
            obs.inc("index.block_cache.misses", profile.block_cache_misses)
            obs.inc("index.generations_probed", profile.generations_probed)
            obs.inc("index.postings_sources_merged",
                    profile.postings_sources_merged)
        return profile
