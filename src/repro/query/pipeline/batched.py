"""Batched (columnar) physical operators.

These are drop-in replacements for the scalar stages in
:mod:`.operators`, selected by the planner when a plan is built with
``kernels="batched"``.  Each one computes over whole candidate batches —
postings columns from :meth:`BlockPostingsReader.column_view`, one
metadata gather per batch (:meth:`MetadataDatabase.resolve_many`), one
vectorized haversine pass (:func:`repro.geo.distance.haversine_km_batch`)
— instead of per-element calls, but every observable output is **bitwise
identical** to the scalar pipeline:

* distances use the calibrated batch haversine kernel, which is
  bitwise-equal to ``haversine_km`` by construction (the final ``asin``
  stays scalar; see the calibration probe in ``repro.geo.distance``);
* reductions (Definition 9's average) run in the same left-to-right
  association order as the scalar ``sum(...)``;
* pruning decisions replay the scalar lazy-distance-part protocol
  exactly, so the ledger (``users_pruned_*`` / ``users_scored``) and
  every ``query.prune`` event match the scalar plan;
* the batched top-k partial-select keeps all boundary ties before the
  exact ``(-score, uid)`` finalize, so the returned users are the same
  tuples the scalar sort produces.

The operators degrade gracefully: when a context lacks the batch
backends (``resolve_batch`` / ``user_location_columns`` — e.g. the
dataset-backed test doubles) they fall back to the scalar callables
element-wise, which is still the same arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ... import columnar, obs
from ...core.scoring import user_distance_score, user_score
from ...geo.cover import cover_cells_fully_inside
from ...geo.distance import haversine_km, haversine_km_batch
from ..semantics import Candidate
from .context import InRadiusCandidate, QueryContext
from .operators import (
    CandidateFormOp,
    RankOp,
    TemporalClipOp,
    ThreadScoreOp,
    TopKOp,
)

__all__ = [
    "BatchCandidateFormOp",
    "BatchRankOp",
    "BatchTopKOp",
    "ColumnarTemporalClipOp",
    "FusedRadiusScoreOp",
    "batch_distances",
    "batched_user_distance_part",
]


def batch_distances(ctx: QueryContext, lats: List[float],
                    lons: List[float]) -> List[float]:
    """Distances from the query point to every ``(lat, lon)`` pair.

    Haversine queries go through the vectorized kernel; any other metric
    falls back to the per-query closure element-wise.  Either way each
    value is bitwise-identical to ``ctx.metric(query.location, point)``.
    """
    if ctx.metric is haversine_km:
        column = haversine_km_batch(ctx.query.location, lats, lons)
        return columnar.column_tolist(column)
    distance_to = ctx.distance_to
    assert distance_to is not None
    return [distance_to((lat, lon)) for lat, lon in zip(lats, lons)]


def batched_user_distance_part(ctx: QueryContext, uid: int) -> float:
    """Definition 9's ``delta(u, q)`` via the columnar kernel.

    One coordinate-column gather per user, one vectorized distance pass,
    one vectorized per-post score select — then the scalar left-to-right
    sum, so the result is bitwise-equal to
    ``user_distance_score(user_locations(uid), ...)``.
    """
    columns = ctx.user_location_columns
    if columns is None or ctx.metric is not haversine_km:
        user_locations = ctx.user_locations
        assert user_locations is not None
        return user_distance_score(user_locations(uid), ctx.query.location,
                                   ctx.query.radius_km, ctx.metric)
    lats, lons = columns(uid)
    if not lats:
        return 0.0
    radius_km = ctx.query.radius_km
    distances = haversine_km_batch(ctx.query.location, lats, lons)
    np = columnar.numpy_module()
    if np is not None and isinstance(distances, np.ndarray):
        # (radius - d) / radius is evaluated on every lane; the mask
        # discards the out-of-radius lanes, whose values are finite
        # (radius > 0) and never observed — kept lanes are bitwise-equal
        # to the scalar distance_score.
        scores = np.where(distances > radius_km, 0.0,
                          (radius_km - distances) / radius_km)
        total = sum(scores.tolist())
    else:
        total = sum(0.0 if distance > radius_km
                    else (radius_km - distance) / radius_km
                    for distance in columnar.column_tolist(distances))
    return total / len(lats)


class ColumnarTemporalClipOp(TemporalClipOp):
    """Temporal clip over postings columns: block views narrow through
    their skip table exactly like the scalar operator, while plain lists
    are clipped with vectorized range masks (``searchsorted`` on the tid
    column) instead of materialising tids into a Python list."""

    name = "ColumnarTemporalClip"

    def run(self, ctx: QueryContext) -> None:
        temporal = ctx.query.temporal
        window = temporal.window
        if ctx.per_cell is not None and not window.unbounded:
            clipped: Dict[str, Dict[str, object]] = {}
            for cell, per_term in ctx.per_cell.items():
                kept = {}
                for term, postings in per_term.items():
                    inside = self._clip(postings, window.start, window.end)
                    if inside:
                        kept[term] = inside
                if kept:
                    clipped[cell] = kept
            ctx.per_cell = clipped  # type: ignore[assignment]
        recency = temporal.recency
        if recency is not None:
            ctx.recency_reference = recency.resolve_reference(ctx.max_sid())

    @staticmethod
    def _clip(postings, start: Optional[int], end: Optional[int]):
        clip = getattr(postings, "clip", None)
        if clip is not None:
            return clip(start, end)
        if not postings:
            return list(postings)
        tids = columnar.int_column([tid for tid, _tf in postings])
        lo, hi = columnar.sorted_range(tids, start, end)
        return list(postings[lo:hi])

    def describe(self) -> str:
        return "ColumnarTemporalClip(skip-table blocks, searchsorted lists)"


class BatchCandidateFormOp(CandidateFormOp):
    """Candidate formation over whole postings columns.

    Single-term queries — the common case in the benchmark matrix —
    never need a merge: per cell, every posting of the term *is* a
    candidate (AND and OR differ only in the matched-term count when
    ``tf == 0``, which indexed postings never store but the contract is
    preserved anyway).  Block views hand over their decoded tid/tf
    columns in one call (:meth:`column_view`), skipping per-element
    ``__getitem__`` varint cursor hops entirely.  Multi-term queries
    fall back to the scalar k-way merge, which is already
    galloping-intersection based.
    """

    name = "BatchCandidateForm"

    def run(self, ctx: QueryContext) -> None:
        assert ctx.per_cell is not None, "BatchCandidateFormOp needs postings"
        if len(ctx.terms) != 1:
            super().run(ctx)
            return
        semantics = self.semantics or ctx.query.semantics
        count_matches = semantics.name != "AND"  # OR counts tf > 0 terms
        term = ctx.terms[0]
        candidates: List[Candidate] = []
        append = candidates.append
        for cell in sorted(ctx.per_cell):
            postings = ctx.per_cell[cell].get(term)
            if not postings:
                continue
            view = getattr(postings, "column_view", None)
            if view is not None:
                tid_column, tf_column = view()
                tids = columnar.column_tolist(tid_column)
                tfs = columnar.column_tolist(tf_column)
            else:
                tids = [tid for tid, _tf in postings]
                tfs = [tf for _tid, tf in postings]
            for tid, tf in zip(tids, tfs):
                matched = (1 if tf > 0 else 0) if count_matches else 1
                append(Candidate(tid, tf, matched, cell))
        ctx.candidates = candidates
        ctx.stats.candidates = len(candidates)

    def describe(self) -> str:
        which = self.semantics.value if self.semantics else "from query"
        return (f"BatchCandidateForm(semantics={which}, "
                f"single-term column fast path)")


class FusedRadiusScoreOp(ThreadScoreOp):
    """RadiusFilter + ThreadScore fused over candidate batches.

    One batched metadata gather resolves every candidate's
    ``(uid, lat, lon)``; one vectorized haversine pass computes every
    candidate distance; the radius mask then replays the scalar
    operator's accounting (cell-containment skips included).  Scoring
    reuses the inherited :class:`ThreadScoreOp` modes — including the
    ceiling early-exit and the lazy per-user distance parts, so pruning
    decisions match the scalar plan decision-for-decision — with the
    per-user Definition 9 kernel swapped for the columnar one.
    """

    name = "FusedRadiusScore"
    paper_lines = "Alg 4/5 lines 15-33 (fused line 16)"
    writes = ("in_radius", "candidate_uids", "keyword_parts", "queue")

    def __init__(self, aggregate: str, ranked: bool = False,
                 use_cell_containment: bool = True) -> None:
        super().__init__(aggregate, ranked=ranked)
        self.use_cell_containment = use_cell_containment

    def run(self, ctx: QueryContext) -> None:
        self._filter(ctx)
        super().run(ctx)

    def _distance_part(self, ctx: QueryContext, uid: int) -> float:
        return batched_user_distance_part(ctx, uid)

    def _filter(self, ctx: QueryContext) -> None:
        query = ctx.query
        stats = ctx.stats
        inside_cells = frozenset()
        if self.use_cell_containment and ctx.source is not None:
            inside, _boundary = cover_cells_fully_inside(
                query.location, query.radius_km,
                ctx.source.geohash_length, ctx.metric)
            inside_cells = frozenset(inside)
        candidates = ctx.candidates
        lock = ctx.lock
        resolve_batch = ctx.resolve_batch
        resolved: List[Optional[Tuple[int, float, float]]]
        tids = [candidate.tid for candidate in candidates]
        if resolve_batch is not None:
            if lock is None:
                resolved_map = resolve_batch(tids)
            else:
                with lock:
                    resolved_map = resolve_batch(tids)
            resolved = [resolved_map.get(tid) for tid in tids]
        else:
            resolve = ctx.resolve
            assert resolve is not None, "FusedRadiusScoreOp needs a resolver"
            if lock is None:
                resolved = [resolve(tid) for tid in tids]
            else:
                with lock:
                    resolved = [resolve(tid) for tid in tids]
        lats: List[float] = []
        lons: List[float] = []
        for entry in resolved:
            if entry is not None:
                lats.append(entry[1])
                lons.append(entry[2])
        distances = batch_distances(ctx, lats, lons)
        radius_km = query.radius_km
        in_radius: List[InRadiusCandidate] = []
        position = 0
        for candidate, entry in zip(candidates, resolved):
            if entry is None:
                continue  # ghost candidate: posting without metadata
            distance = distances[position]
            position += 1
            uid, lat, lon = entry
            if candidate.cell in inside_cells:
                stats.distance_checks_skipped += 1
            elif distance > radius_km:
                continue  # boundary cell false positive (line 16)
            stats.candidates_in_radius += 1
            ctx.candidate_uids.add(uid)
            in_radius.append((candidate, uid, lat, lon))
        ctx.in_radius = in_radius

    def describe(self) -> str:
        mode = "top-k queue" if self.ranked else "accumulate"
        shortcut = "on" if self.use_cell_containment else "off"
        return (f"FusedRadiusScore(aggregate={self.aggregate}, mode={mode}, "
                f"cell_containment={shortcut}, batched resolve+haversine)")


class BatchRankOp(RankOp):
    """Rank with the columnar Definition 9 kernel, leaving the scored
    list unsorted for the downstream partial top-k select (a plan with a
    ranked queue upstream drains it exactly like the scalar operator)."""

    name = "BatchRank"

    def run(self, ctx: QueryContext) -> None:
        if ctx.queue is not None:
            ctx.scored = ctx.queue.ranked()
            return
        parts = ctx.keyword_parts if ctx.keyword_parts is not None else {}
        with obs.trace("query.rank", users=len(parts)):
            scored: List[Tuple[int, float]] = []
            for uid, keyword_part in parts.items():
                distance_part = batched_user_distance_part(ctx, uid)
                scored.append((uid, user_score(keyword_part, distance_part,
                                               ctx.config)))
        ctx.scored = scored

    def describe(self) -> str:
        return "BatchRank(columnar delta(u,q), defer ordering to BatchTopK)"


class BatchTopKOp(TopKOp):
    """Top-k over the unsorted scored list: partial-select the k-th
    score boundary, then the exact ``(-score, uid)`` finalize — the same
    tuples the scalar sort-then-slice yields."""

    name = "BatchTopK"

    def run(self, ctx: QueryContext) -> None:
        if ctx.queue is not None:
            # Upstream ranked queue already produced a k-sorted list.
            ctx.users = ctx.scored[:ctx.query.k]
            return
        selected = columnar.select_top_k(ctx.scored, ctx.query.k)
        ctx.users = [(uid, score) for _position, uid, score in selected]

    def describe(self) -> str:
        return "BatchTopK(partial select at k-th score, exact finalize)"
