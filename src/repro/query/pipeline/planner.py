"""The planner: from ``(method, semantics, pruning, temporal,
distributed?)`` to a physical operator plan.

Plans are immutable compositions of the stateless operators in
:mod:`.operators`; the planner memoises them per specification, so the
per-query cost of planning is a dictionary lookup.  ``PhysicalPlan``
also knows how to render itself for ``repro explain`` — each line names
the operator, its configuration, and the paper algorithm lines it
implements.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ...core.model import Semantics, TkLUSQuery
from .batched import (
    BatchCandidateFormOp,
    BatchRankOp,
    BatchTopKOp,
    ColumnarTemporalClipOp,
    FusedRadiusScoreOp,
)
from .context import QueryContext
from .operators import (
    BoundsPruneOp,
    CandidateFormOp,
    CoverOp,
    DatasetScanOp,
    PartitionRouteOp,
    PhysicalOperator,
    PostingsFetchOp,
    RadiusFilterOp,
    RankOp,
    ScatterGatherOp,
    TemporalClipOp,
    ThreadScoreOp,
    TopKOp,
)


@dataclass(frozen=True)
class PlanSpec:
    """Everything that determines a physical plan's shape."""

    method: str = "max"            # "sum" | "max" (the keyword aggregate)
    semantics: Semantics = Semantics.OR
    pruning: bool = True           # upper-bound pruning (max only)
    temporal: bool = False         # window clip / recency weighting
    distributed: bool = False      # scatter-gather over partitions
    scan: bool = False             # index-free full scan (brute force)
    kernels: str = "scalar"        # "scalar" | "batched" (columnar ops)

    def __post_init__(self) -> None:
        if self.method not in ("sum", "max"):
            raise ValueError(f"unknown ranking method {self.method!r} "
                             "(expected 'sum' or 'max')")
        if self.distributed and self.scan:
            raise ValueError("a plan is either distributed or a full scan")
        if self.kernels not in ("scalar", "batched"):
            raise ValueError(f"unknown kernel family {self.kernels!r} "
                             "(expected 'scalar' or 'batched')")

    def label(self) -> str:
        flavour = "scan" if self.scan else (
            "distributed" if self.distributed else "indexed")
        bits = [f"method={self.method}", f"semantics={self.semantics.value}",
                f"flavour={flavour}"]
        if self.method == "max" and not self.distributed and not self.scan:
            bits.append(f"pruning={'on' if self.pruning else 'off'}")
        bits.append(f"temporal={'on' if self.temporal else 'off'}")
        if self.kernels != "scalar":
            bits.append(f"kernels={self.kernels}")
        return ", ".join(bits)


@dataclass(frozen=True)
class PhysicalPlan:
    """An ordered operator composition, executable and explainable."""

    label: str
    operators: Tuple[PhysicalOperator, ...]
    spec: Optional[PlanSpec] = field(default=None, compare=False)

    def execute(self, ctx: QueryContext) -> QueryContext:
        cancel = ctx.cancel
        if cancel is None:
            for operator in self.operators:
                operator.run(ctx)
        else:
            # Cooperative cancellation: a deadline or server-side cancel
            # stops the query *between* operators — never inside one, so
            # every operator either ran completely or not at all and a
            # cancelled execution is a clean prefix of the full one.
            for operator in self.operators:
                cancel.check()
                operator.run(ctx)
            cancel.check()
        return ctx

    def operator_names(self) -> List[str]:
        return [operator.name for operator in self.operators]

    def describe(self, indent: str = "") -> str:
        """Multi-line rendering: one numbered line per operator, nested
        sub-plans (scatter workers) indented beneath their parent."""
        lines = [f"{indent}plan[{self.label}]"]
        for position, operator in enumerate(self.operators, start=1):
            annotation = f"  [{operator.paper_lines}]" if operator.paper_lines else ""
            lines.append(f"{indent}  {position}. {operator.describe()}{annotation}")
            for child in operator.children():
                lines.append(child.describe(indent + "      "))
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.operators)

    def __len__(self) -> int:
        return len(self.operators)


class Planner:
    """Assembles (and memoises) physical plans.

    The constructor freezes execution-site choices that are properties
    of the deployment rather than of any one query: whether the
    cell-containment shortcut is active, whether the pruning bound is
    tightened with known per-user distance scores, and the scatter
    width.
    """

    def __init__(self, *, use_cell_containment: bool = True,
                 tighten_distance_bound: bool = True,
                 max_workers: int = 4) -> None:
        self.use_cell_containment = use_cell_containment
        self.tighten_distance_bound = tighten_distance_bound
        self.max_workers = max_workers
        self._memo_lock = threading.Lock()
        self._plans: Dict[PlanSpec, PhysicalPlan] = {}  # guarded-by: _memo_lock

    # -- public API --------------------------------------------------------

    def plan(self, method: str = "max",
             semantics: Semantics = Semantics.OR, *,
             pruning: bool = True, temporal: bool = False,
             distributed: bool = False, scan: bool = False,
             kernels: str = "scalar") -> PhysicalPlan:
        """The physical plan for a query class."""
        if scan or distributed:
            # Columnar kernels exist only for the single-site indexed
            # pipeline; other flavours coerce to scalar so the memo key
            # stays canonical.
            kernels = "scalar"
        spec = PlanSpec(method=method, semantics=semantics, pruning=pruning,
                        temporal=temporal, distributed=distributed, scan=scan,
                        kernels=kernels)
        # Serve workers plan concurrently, so the memo is double-checked:
        # the unlocked dict.get is GIL-atomic and hits for every spec
        # after its first planning; losers of the build race discard
        # their plan and return the published one, so a given spec always
        # memoises exactly one PhysicalPlan object.
        # repro-lint: disable=RL004,RL100 reason=double-checked locking; GIL-atomic dict.get fast path
        cached = self._plans.get(spec)
        if cached is None:
            built = self._build(spec)
            with self._memo_lock:
                cached = self._plans.get(spec)
                if cached is None:
                    cached = built
                    self._plans[spec] = cached
        return cached

    def plan_for_query(self, method: str, query: TkLUSQuery, *,
                       pruning: bool = True, distributed: bool = False,
                       scan: bool = False,
                       kernels: str = "scalar") -> PhysicalPlan:
        """The plan for one concrete query: semantics and temporal shape
        are read off the query itself."""
        temporal = (not query.temporal.window.unbounded
                    or query.temporal.recency is not None)
        return self.plan(method, query.semantics, pruning=pruning,
                         temporal=temporal, distributed=distributed,
                         scan=scan, kernels=kernels)

    def explain(self, method: str = "max",
                semantics: Semantics = Semantics.OR, *,
                pruning: bool = True, temporal: bool = False,
                distributed: bool = False, scan: bool = False,
                kernels: str = "scalar") -> str:
        """Rendered plan text (what ``repro explain`` prints)."""
        return self.plan(method, semantics, pruning=pruning,
                         temporal=temporal, distributed=distributed,
                         scan=scan, kernels=kernels).describe()

    # -- construction ------------------------------------------------------

    def _build(self, spec: PlanSpec) -> PhysicalPlan:
        if spec.scan:
            operators = self._scan_operators(spec)
        elif spec.distributed:
            operators = self._distributed_operators(spec)
        else:
            operators = self._indexed_operators(spec)
        return PhysicalPlan(spec.label(), tuple(operators), spec)

    def _retrieval_operators(self, spec: PlanSpec,
                             track_fetches: bool = True,
                             include_cover: bool = True
                             ) -> List[PhysicalOperator]:
        """Lines 1-14 shared verbatim by Algorithms 4 and 5.

        ``include_cover=False`` for scatter-gather server sub-plans,
        whose cells are assigned by the coordinator's partition routing
        rather than computed locally."""
        batched = spec.kernels == "batched"
        operators: List[PhysicalOperator] = []
        if include_cover:
            operators.append(CoverOp())
        operators.append(PostingsFetchOp(track_fetches=track_fetches))
        if spec.temporal:
            operators.append(ColumnarTemporalClipOp() if batched
                             else TemporalClipOp())
        operators.append(BatchCandidateFormOp(spec.semantics) if batched
                         else CandidateFormOp(spec.semantics))
        return operators

    def _indexed_operators(self, spec: PlanSpec) -> List[PhysicalOperator]:
        if spec.kernels == "batched":
            return self._indexed_batched_operators(spec)
        operators = self._retrieval_operators(spec)
        operators.append(RadiusFilterOp(self.use_cell_containment))
        if spec.method == "max":
            if spec.pruning:
                operators.append(BoundsPruneOp(self.tighten_distance_bound))
            operators.append(ThreadScoreOp("max", ranked=True))
        else:
            operators.append(ThreadScoreOp("sum", ranked=False))
        operators.extend((RankOp(), TopKOp()))
        return operators

    def _indexed_batched_operators(self, spec: PlanSpec
                                   ) -> List[PhysicalOperator]:
        """The columnar mirror of :meth:`_indexed_operators`: radius
        filtering and scoring fuse into one batched stage, so the bounds
        pruner (which only reads the fetched postings) installs *before*
        it — same decisions, one less pass over the candidates."""
        operators = self._retrieval_operators(spec)
        if spec.method == "max":
            if spec.pruning:
                operators.append(BoundsPruneOp(self.tighten_distance_bound))
            operators.append(FusedRadiusScoreOp(
                "max", ranked=True,
                use_cell_containment=self.use_cell_containment))
        else:
            operators.append(FusedRadiusScoreOp(
                "sum", ranked=False,
                use_cell_containment=self.use_cell_containment))
        operators.extend((BatchRankOp(), BatchTopKOp()))
        return operators

    def _scan_operators(self, spec: PlanSpec) -> List[PhysicalOperator]:
        operators: List[PhysicalOperator] = []
        if spec.temporal:
            operators.append(TemporalClipOp())  # recency reference only
        operators.extend((
            DatasetScanOp(),
            RadiusFilterOp(use_cell_containment=False),
            ThreadScoreOp(spec.method, ranked=False),
            RankOp(),
            TopKOp(),
        ))
        return operators

    def _distributed_operators(self, spec: PlanSpec) -> List[PhysicalOperator]:
        server_spec = replace(spec, distributed=False)
        server_operators: List[PhysicalOperator] = self._retrieval_operators(
            server_spec, track_fetches=False, include_cover=False)
        server_operators.extend((
            RadiusFilterOp(use_cell_containment=False),
            ThreadScoreOp(spec.method, ranked=False),
        ))
        server_plan = PhysicalPlan(
            f"server, {server_spec.label()}", tuple(server_operators))
        return [
            CoverOp(),
            PartitionRouteOp(),
            ScatterGatherOp(spec.method, server_plan, self.max_workers),
            RankOp(),
            TopKOp(),
        ]
