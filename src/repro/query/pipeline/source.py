"""The ``PostingsSource`` protocol: what ``PostingsFetchOp`` needs.

The physical operators never touch :class:`~repro.index.hybrid.HybridIndex`
directly — they go through this structural protocol, so any backend that
can produce a circle cover and grouped postings (a hybrid index, a
generational index, a caching proxy, a remote shard client) is
interchangeable behind the same plan.  :class:`PartitionedPostingsSource`
extends it with partition ownership, which the scatter-gather operators
use to route cover cells to their owning "query server".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ...geo.distance import Metric
from ...index.postings import Posting

#: cell -> term -> tid-sorted postings (only non-empty sequences), the
#: shape produced by lines 4-7 of Algorithms 4/5.  Values may be plain
#: lists/tuples or lazy block views (``BlockPostingsReader``) — consumers
#: must treat them as immutable.
GroupedPostings = Dict[str, Dict[str, Sequence[Posting]]]


@runtime_checkable
class PostingsSource(Protocol):
    """Backend contract for candidate retrieval (Algorithms 4/5 lines 1-7)."""

    @property
    def geohash_length(self) -> int:
        """Encoding length of the spatial grid (drives the cover and the
        cell-containment shortcut)."""
        ...

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric) -> List[str]:
        """``GeoHashCircleQuery(q, r)``: the cover cells of the query
        circle at this source's encoding length (line 1)."""
        ...

    def postings_for_query(self, cells: List[str],
                           terms: List[str]) -> GroupedPostings:
        """Fetch the postings list for every ``(cell, term)`` pair,
        grouped by cell then term (lines 4-7)."""
        ...

    def postings_fetch_count(self) -> int:
        """Monotonic count of postings lists actually fetched (cache hits
        excluded).  ``PostingsFetchOp`` snapshot-diffs it for the
        per-query ``postings_lists_fetched`` statistic."""
        ...


@runtime_checkable
class PartitionedPostingsSource(PostingsSource, Protocol):
    """A postings source whose lists live on identifiable partitions."""

    def owner_of(self, cell: str, term: str) -> Optional[str]:
        """The partition (part file / server) owning the postings of
        ``(cell, term)``, or ``None`` when the pair is unindexed."""
        ...
