"""The shared execution shell around a physical plan.

Every query path — sum, max, brute force, scatter-gather — runs through
:func:`run_plan`: open the ``query.search`` span (when the path is
traced), execute the operators, stamp the elapsed time and I/O deltas,
fold the funnel counters into the per-query profile, and wrap the result.
The five former processors each re-implemented this shell inline; it
lives here exactly once.
"""

from __future__ import annotations

import time
from typing import Optional

from ... import obs
from ..profiling import ProfileRecorder
from ..results import QueryResult
from .context import QueryContext
from .planner import PhysicalPlan


def run_plan(plan: PhysicalPlan, ctx: QueryContext, *,
             method: Optional[str] = None,
             recorder: Optional[ProfileRecorder] = None) -> QueryResult:
    """Execute ``plan`` over ``ctx`` and assemble the query result.

    ``method`` names the traced execution paths ("sum"/"max"): when set,
    the whole run is wrapped in a ``query.search`` span.  ``recorder``
    (when given) supplies the I/O snapshot-diff and finishes the
    per-query profile.
    """
    query = ctx.query
    stats = ctx.stats
    start = time.perf_counter()
    if method is not None:
        scope = obs.trace("query.search", method=method,
                          semantics=query.semantics.value, k=query.k,
                          radius_km=query.radius_km)
    else:
        scope = obs.NULL_SPAN_CONTEXT
    with scope as span:
        ctx.span = span
        plan.execute(ctx)
        stats.elapsed_seconds = time.perf_counter() - start
        if recorder is not None:
            stats.io_delta = recorder.io_delta_pages()

    spec = plan.spec
    kernels = spec.kernels if spec is not None else "scalar"
    obs.inc(f"query.kernels.{kernels}")
    profile = ctx.profile
    if profile is not None:
        profile.kernels = kernels
        profile.cells_covered = stats.cells_covered
        profile.candidates = stats.candidates
        profile.candidates_examined = stats.candidates_in_radius
        profile.candidate_users = len(ctx.candidate_uids)
        profile.threads_built = stats.threads_built
    if recorder is not None:
        recorder.finish(stats.elapsed_seconds)
    runtime = obs.get_runtime()
    if runtime is not None and recorder is not None:
        # Engine-boundary telemetry hook: SLO accounting plus slow-query
        # capture (plan + profile funnel + span tree when one was built).
        captured_span = span if span is not obs.NULL_SPAN else None
        runtime.record_query(plan, profile, stats.elapsed_seconds,
                             captured_span)
    return QueryResult(users=ctx.users, stats=stats, profile=profile)
