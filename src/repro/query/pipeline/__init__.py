"""repro.query.pipeline — the composable physical-operator framework.

The paper's Algorithms 4 and 5 share their candidate-retrieval prefix
(lines 1-14) verbatim; this package factors the whole query path into
explicit physical operators over a shared :class:`QueryContext`, with a
:class:`Planner` that assembles (and memoises) plans from
``(method, semantics, pruning, temporal, distributed?)`` and renders
them for ``repro explain``.  All five execution paths — sum ranking,
max ranking (pruned and ablation), the brute-force oracle, scatter-
gather distribution and cross-platform federation — are compositions of
these operators; adding batching, caching or new backends means adding
or swapping one operator, not editing five processors.

Backends plug in behind the :class:`PostingsSource` protocol
(:class:`~repro.index.hybrid.HybridIndex` satisfies it natively).
"""

from .batched import (
    BatchCandidateFormOp,
    BatchRankOp,
    BatchTopKOp,
    ColumnarTemporalClipOp,
    FusedRadiusScoreOp,
)
from .context import (
    BatchCandidateResolver,
    CandidateResolver,
    InRadiusCandidate,
    QueryContext,
    UserLocationColumnsProvider,
    UserLocationsProvider,
)
from .executor import run_plan
from .operators import (
    BoundsPruneOp,
    CandidateFormOp,
    CoverOp,
    DatasetScanOp,
    PartitionRouteOp,
    PhysicalOperator,
    PostingsFetchOp,
    RadiusFilterOp,
    RankOp,
    ScatterGatherOp,
    TemporalClipOp,
    ThreadScoreOp,
    TopKOp,
)
from .planner import PhysicalPlan, Planner, PlanSpec
from .source import GroupedPostings, PartitionedPostingsSource, PostingsSource

__all__ = [
    "BatchCandidateFormOp",
    "BatchCandidateResolver",
    "BatchRankOp",
    "BatchTopKOp",
    "BoundsPruneOp",
    "CandidateFormOp",
    "CandidateResolver",
    "ColumnarTemporalClipOp",
    "CoverOp",
    "FusedRadiusScoreOp",
    "DatasetScanOp",
    "GroupedPostings",
    "InRadiusCandidate",
    "PartitionRouteOp",
    "PartitionedPostingsSource",
    "PhysicalOperator",
    "PhysicalPlan",
    "PlanSpec",
    "Planner",
    "PostingsFetchOp",
    "PostingsSource",
    "QueryContext",
    "RadiusFilterOp",
    "RankOp",
    "ScatterGatherOp",
    "TemporalClipOp",
    "ThreadScoreOp",
    "TopKOp",
    "UserLocationColumnsProvider",
    "UserLocationsProvider",
    "run_plan",
]
