"""The shared execution state threaded through the physical operators.

One :class:`QueryContext` lives for the duration of one query execution.
Operators read what upstream operators produced and write what downstream
operators consume; the context also carries the immutable query, the
backends (postings source, metadata resolver, thread builder, bounds),
the mutable accounting objects (:class:`~repro.query.results.QueryStats`
and the per-query :class:`~repro.obs.profile.QueryProfile`), and the
active observability span scope.

The metadata backend is abstracted to three callables so index-backed,
dataset-backed (brute force) and federated plans share the same
operators:

* ``resolve(tid) -> (uid, lat, lon) | None`` — candidate metadata;
* ``user_locations(uid) -> [(lat, lon), ...]`` — the posts of a user
  (Definition 9's ``P_u``);
* ``max_sid() -> int`` — the newest timestamp (recency reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

from ...core.model import TkLUSQuery
from ...core.scoring import ScoringConfig
from ...geo.distance import (
    DEFAULT_METRIC,
    Coordinate,
    Metric,
    haversine_km,
    haversine_km_from,
)
from ..results import QueryResult, QueryStats
from ..semantics import Candidate
from ..topk import TopKUserQueue
from .source import GroupedPostings, PostingsSource

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ...core.thread import ThreadBuilder
    from ...obs.profile import QueryProfile
    from ..bounds import BoundsManager

#: ``tid -> (uid, lat, lon)`` metadata lookup; ``None`` for ghosts.
CandidateResolver = Callable[[int], Optional[Tuple[int, float, float]]]
#: batch form: ``sid -> (uid, lat, lon)`` for a whole candidate list.
BatchCandidateResolver = Callable[
    [List[int]], Dict[int, Tuple[int, float, float]]]
#: ``uid -> [(lat, lon), ...]`` — every post location of the user.
UserLocationsProvider = Callable[[int], List[Tuple[float, float]]]
#: batch form: ``uid -> (lats, lons)`` coordinate columns of ``P_u``.
UserLocationColumnsProvider = Callable[
    [int], Tuple[List[float], List[float]]]
#: An in-radius candidate paired with its resolved ``(uid, lat, lon)``.
InRadiusCandidate = Tuple[Candidate, int, float, float]


@dataclass
class QueryContext:
    """Everything one query execution shares across its operators."""

    query: TkLUSQuery
    config: ScoringConfig = field(default_factory=ScoringConfig)
    metric: Metric = DEFAULT_METRIC
    stats: QueryStats = field(default_factory=QueryStats)
    profile: Optional["QueryProfile"] = None

    # -- backends ---------------------------------------------------------
    source: Optional[PostingsSource] = None
    dataset: Any = None                      # full-scan (baseline) plans
    threads: Any = None                      # popularity(sid) provider
    bounds: Optional["BoundsManager"] = None
    resolve: Optional[CandidateResolver] = None
    user_locations: Optional[UserLocationsProvider] = None
    #: optional batch backends consumed by the batched kernels; when
    #: absent the fused operators fall back to the scalar callables.
    resolve_batch: Optional[BatchCandidateResolver] = None
    user_location_columns: Optional[UserLocationColumnsProvider] = None
    #: per-query distance closure with the query point's trigonometry
    #: hoisted (``__post_init__`` derives it from ``metric``); bitwise-
    #: identical to ``metric(query.location, point)``.
    distance_to: Optional[Callable[[Coordinate], float]] = None
    max_sid: Callable[[], int] = lambda: 0
    #: serialises metadata/thread accesses when operators run on worker
    #: threads (scatter-gather); ``None`` means no locking.
    lock: Any = None
    #: count thread constructions into ``stats.threads_built``; turned
    #: off inside scatter-gather workers where the builder is shared.
    track_thread_builds: bool = True
    #: active obs span scope (the enclosing ``query.search`` span).
    span: Any = None
    #: cooperative cancellation: any object with a ``check()`` raising to
    #: abort (the serve layer passes a ``repro.serve.CancelToken``); the
    #: executor calls it at every operator boundary.  ``None`` = never
    #: cancelled — the pipeline does not import the serve package.
    cancel: Any = None

    # -- operator-to-operator state (in pipeline order) -------------------
    terms: List[str] = field(default_factory=list)
    cells: List[str] = field(default_factory=list)
    per_cell: Optional[GroupedPostings] = None
    recency_reference: int = 0
    candidates: List[Candidate] = field(default_factory=list)
    in_radius: List[InRadiusCandidate] = field(default_factory=list)
    candidate_uids: Set[int] = field(default_factory=set)
    keyword_parts: Optional[Dict[int, float]] = None
    queue: Optional[TopKUserQueue] = None
    pruner: Any = None                       # installed by BoundsPruneOp
    scored: List[Tuple[int, float]] = field(default_factory=list)
    users: List[Tuple[int, float]] = field(default_factory=list)

    # -- distributed / federated state ------------------------------------
    cells_by_server: Dict[str, List[str]] = field(default_factory=dict)
    platform_results: Dict[str, QueryResult] = field(default_factory=dict)
    federated_users: List[Any] = field(default_factory=list)
    #: path-specific knobs that are per-query but not part of the query
    #: model (e.g. the federation's ``per_platform_k``).
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.terms:
            self.terms = sorted(self.query.keywords)
        if self.distance_to is None:
            location = self.query.location
            if self.metric is haversine_km:
                self.distance_to = haversine_km_from(location)
            else:
                metric = self.metric
                self.distance_to = lambda point: metric(location, point)

    # -- constructors -----------------------------------------------------

    @classmethod
    def for_database(cls, query: TkLUSQuery, *, config: ScoringConfig,
                     metric: Metric, source: Optional[PostingsSource],
                     database: Any, threads: Any,
                     bounds: Optional["BoundsManager"] = None,
                     profile: Optional["QueryProfile"] = None,
                     stats: Optional[QueryStats] = None,
                     lock: Any = None,
                     cancel: Any = None) -> "QueryContext":
        """A context whose metadata callables read the storage engine
        (heap file + B+-trees) — the Figure 3 deployment shape."""

        def resolve(tid: int) -> Optional[Tuple[int, float, float]]:
            record = database.get(tid)
            if record is None:
                return None
            return record.uid, record.lat, record.lon

        def user_locations(uid: int) -> List[Tuple[float, float]]:
            return [(record.lat, record.lon)
                    for record in database.posts_of_user(uid)]

        # Batch backends for the batched kernels, present only when the
        # database grows them (duck-typed so test doubles keep working).
        resolve_batch: Optional[BatchCandidateResolver] = \
            getattr(database, "resolve_many", None)
        user_location_columns: Optional[UserLocationColumnsProvider] = \
            getattr(database, "user_location_columns", None)

        return cls(query=query, config=config, metric=metric,
                   stats=stats if stats is not None else QueryStats(),
                   profile=profile, source=source, threads=threads,
                   bounds=bounds, resolve=resolve,
                   user_locations=user_locations,
                   resolve_batch=resolve_batch,
                   user_location_columns=user_location_columns,
                   max_sid=lambda: database.max_sid, lock=lock,
                   cancel=cancel)

    @classmethod
    def for_dataset(cls, query: TkLUSQuery, *, config: ScoringConfig,
                    metric: Metric, dataset: Any, threads: Any,
                    user_locations: Dict[int, List[Tuple[float, float]]],
                    stats: Optional[QueryStats] = None) -> "QueryContext":
        """A context over an in-memory dataset (the brute-force oracle)."""
        posts = dataset.posts

        def resolve(tid: int) -> Optional[Tuple[int, float, float]]:
            post = posts.get(tid)
            if post is None:
                return None
            return post.uid, post.location[0], post.location[1]

        return cls(query=query, config=config, metric=metric,
                   stats=stats if stats is not None else QueryStats(),
                   dataset=dataset, threads=threads, resolve=resolve,
                   user_locations=user_locations.__getitem__,
                   max_sid=lambda: max(posts) if posts else 0)

    def child(self, cells: List[str]) -> "QueryContext":
        """A per-worker context for one scatter-gather server: shares the
        backends and lock, owns fresh accounting and working state."""
        return QueryContext(
            query=self.query, config=self.config, metric=self.metric,
            stats=QueryStats(), profile=None, source=self.source,
            dataset=self.dataset, threads=self.threads, bounds=self.bounds,
            resolve=self.resolve, user_locations=self.user_locations,
            resolve_batch=self.resolve_batch,
            user_location_columns=self.user_location_columns,
            distance_to=self.distance_to,
            max_sid=self.max_sid, lock=self.lock,
            track_thread_builds=False, cancel=self.cancel,
            terms=list(self.terms), cells=cells)
