"""Physical operators for TkLUS query plans.

Each operator implements one stage of the paper's Algorithms 4/5 (the
line references below follow the paper's numbering) plus the extensions
this reproduction has accumulated (temporal clipping, cell containment,
scatter-gather).  Operators are **stateless between queries**: every
per-query value lives in the :class:`~.context.QueryContext`, so one
operator instance — and therefore one cached plan — serves any number of
concurrent queries.

The pipeline shape shared by every execution path::

    Cover -> PostingsFetch -> TemporalClip -> CandidateForm
          -> RadiusFilter -> [BoundsPrune] -> ThreadScore
          -> Rank -> TopK

with ``DatasetScan`` replacing the first four stages for the index-free
brute-force plan and ``PartitionRoute``/``ScatterGather`` wrapping the
middle stages for distributed execution.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ... import obs
from ...core.scoring import user_distance_score, user_score
from ...geo.cover import cover_cells_fully_inside
from ..bounds import postings_match_bound
from ..results import ScatterStats
from ..semantics import Candidate, candidates_from_postings, clip_per_cell
from ..topk import TopKUserQueue
from .context import QueryContext


class PhysicalOperator:
    """Base class: a named, explainable pipeline stage."""

    #: stable operator name used in plan renderings
    name: str = "Op"
    #: which lines of the paper's Algorithms 4/5 this stage implements
    paper_lines: str = ""
    #: the :class:`QueryContext` fields this stage mutates.  Every
    #: concrete operator must declare its own (lint rule RL005): the
    #: planner composes stages on the assumption that context effects
    #: are exactly the declared ones.
    writes: Tuple[str, ...] = ()

    def run(self, ctx: QueryContext) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary of the configured behaviour."""
        return self.name

    def children(self) -> Sequence[object]:
        """Nested sub-plans (scatter-gather workers, platform fan-out)."""
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()!r}>"


class CoverOp(PhysicalOperator):
    """Line 1: the circle cover at the source's geohash length."""

    name = "Cover"
    paper_lines = "Alg 4/5 line 1"
    writes = ("cells",)

    def run(self, ctx: QueryContext) -> None:
        query = ctx.query
        assert ctx.source is not None, "CoverOp needs a postings source"
        with obs.trace("query.cover") as span:
            cells = ctx.source.cover(query.location, query.radius_km,
                                     ctx.metric)
            span.set(cells=len(cells))
        ctx.cells = cells
        ctx.stats.cells_covered = len(cells)

    def describe(self) -> str:
        return "Cover(GeoHashCircleQuery at index geohash length)"


class PostingsFetchOp(PhysicalOperator):
    """Lines 4-7: fetch postings per ``(cell, term)`` via PostingsSource."""

    name = "PostingsFetch"
    paper_lines = "Alg 4/5 lines 4-7"
    writes = ("per_cell",)

    def __init__(self, track_fetches: bool = True) -> None:
        # Fetch accounting reads a source-wide counter, which is only
        # meaningful single-threaded; scatter-gather workers disable it.
        self.track_fetches = track_fetches

    def run(self, ctx: QueryContext) -> None:
        source = ctx.source
        assert source is not None, "PostingsFetchOp needs a postings source"
        before = source.postings_fetch_count() if self.track_fetches else 0
        ctx.per_cell = source.postings_for_query(ctx.cells, ctx.terms)
        if self.track_fetches:
            ctx.stats.postings_lists_fetched = (
                source.postings_fetch_count() - before)

    def describe(self) -> str:
        return "PostingsFetch(source=PostingsSource, group by cell, term)"


class TemporalClipOp(PhysicalOperator):
    """Temporal TkLUS: clip postings to the window, resolve the recency
    reference (tweet ids are timestamps, so clipping is two binary
    searches per list)."""

    name = "TemporalClip"
    paper_lines = "Section VIII (temporal extension)"
    writes = ("per_cell", "recency_reference")

    def run(self, ctx: QueryContext) -> None:
        temporal = ctx.query.temporal
        if ctx.per_cell is not None:
            ctx.per_cell = clip_per_cell(ctx.per_cell, temporal.window)
        recency = temporal.recency
        if recency is not None:
            ctx.recency_reference = recency.resolve_reference(ctx.max_sid())

    def describe(self) -> str:
        return "TemporalClip(window clip + recency reference)"


class CandidateFormOp(PhysicalOperator):
    """Lines 8-14: AND intersection / OR union into the candidate list."""

    name = "CandidateForm"
    paper_lines = "Alg 4/5 lines 8-14"
    writes = ("candidates",)

    def __init__(self, semantics=None) -> None:
        # None = take the semantics from the query at run time.
        self.semantics = semantics

    def run(self, ctx: QueryContext) -> None:
        assert ctx.per_cell is not None, "CandidateFormOp needs postings"
        semantics = self.semantics or ctx.query.semantics
        ctx.candidates = candidates_from_postings(ctx.per_cell, ctx.terms,
                                                  semantics)
        ctx.stats.candidates = len(ctx.candidates)

    def describe(self) -> str:
        which = self.semantics.value if self.semantics else "from query"
        return f"CandidateForm(semantics={which})"


class DatasetScanOp(PhysicalOperator):
    """Index-free candidate formation: full scan of the dataset (the
    Section II-B "definitely inefficient" comparison point).  Applies the
    time window, the keyword bag match and the AND/OR semantics; replaces
    Cover + PostingsFetch + TemporalClip's clipping + CandidateForm."""

    name = "DatasetScan"
    paper_lines = "Section II-B (unindexed baseline)"
    writes = ("candidates",)

    def run(self, ctx: QueryContext) -> None:
        query = ctx.query
        window = query.temporal.window
        keywords = query.keywords
        want_all = query.semantics.name == "AND"
        candidates: List[Candidate] = []
        for post in ctx.dataset.posts.values():
            if not window.contains(post.sid):
                continue
            bag: Dict[str, int] = {}
            for word in post.words:
                bag[word] = bag.get(word, 0) + 1
            present = [keyword for keyword in keywords if bag.get(keyword)]
            if not present:
                continue
            if want_all and len(present) != len(keywords):
                continue
            match_count = sum(bag[keyword] for keyword in present)
            candidates.append(Candidate(post.sid, match_count, len(present)))
        ctx.candidates = candidates
        ctx.stats.candidates = len(candidates)

    def describe(self) -> str:
        return "DatasetScan(full scan, window + bag match + semantics)"


class RadiusFilterOp(PhysicalOperator):
    """Line 16's distance check, with the cell-containment shortcut: a
    cover cell lying entirely inside the query circle cannot contain an
    out-of-radius tweet, so its candidates skip the per-tweet distance
    check (answer-preserving by construction).  Resolves each surviving
    candidate's ``(uid, lat, lon)`` for the scoring stages."""

    name = "RadiusFilter"
    paper_lines = "Alg 4/5 line 16"
    writes = ("in_radius", "candidate_uids")

    def __init__(self, use_cell_containment: bool = True) -> None:
        self.use_cell_containment = use_cell_containment

    def run(self, ctx: QueryContext) -> None:
        query = ctx.query
        stats = ctx.stats
        resolve = ctx.resolve
        assert resolve is not None, "RadiusFilterOp needs a resolver"
        inside_cells = frozenset()
        if self.use_cell_containment and ctx.source is not None:
            inside, _boundary = cover_cells_fully_inside(
                query.location, query.radius_km,
                ctx.source.geohash_length, ctx.metric)
            inside_cells = frozenset(inside)
        lock = ctx.lock
        # Per-query closure with the fixed query point's trigonometry
        # precomputed (bitwise-identical to metric(location, point)).
        distance_to = ctx.distance_to
        assert distance_to is not None
        radius_km = query.radius_km
        in_radius: List[Tuple[Candidate, int, float, float]] = []
        for candidate in ctx.candidates:
            if lock is None:
                resolved = resolve(candidate.tid)
            else:
                with lock:
                    resolved = resolve(candidate.tid)
            if resolved is None:
                continue
            uid, lat, lon = resolved
            if candidate.cell in inside_cells:
                stats.distance_checks_skipped += 1
            elif distance_to((lat, lon)) > radius_km:
                continue  # boundary cell false positive (line 16)
            stats.candidates_in_radius += 1
            ctx.candidate_uids.add(uid)
            in_radius.append((candidate, uid, lat, lon))
        ctx.in_radius = in_radius

    def describe(self) -> str:
        shortcut = "on" if self.use_cell_containment else "off"
        return f"RadiusFilter(cell_containment={shortcut})"


class _QueryPruner:
    """Per-query pruning state installed by :class:`BoundsPruneOp`: the
    Definition 11 popularity bound resolved for this query's keywords,
    and the ledger attribution of every pruning decision."""

    __slots__ = ("source", "popularity_bound", "tighten_distance_bound",
                 "match_ceiling")

    def __init__(self, source: str, popularity_bound: float,
                 tighten_distance_bound: bool,
                 match_ceiling: Optional[int] = None) -> None:
        self.source = source
        self.popularity_bound = popularity_bound
        self.tighten_distance_bound = tighten_distance_bound
        # Query-wide cap on any candidate's match count, derived from the
        # fetched postings' per-block max_tf headers (None when the plan
        # has no postings stage, e.g. the dataset-scan baseline).
        self.match_ceiling = match_ceiling

    def upper_bound(self, ctx: QueryContext, match_count: int,
                    known_distance_part: float) -> float:
        """Line 18's ``UpperBound``: overestimate of any user score this
        candidate could produce."""
        config = ctx.config
        keyword_bound = (match_count / config.keyword_normalizer
                         ) * self.popularity_bound
        return (config.alpha * keyword_bound
                + (1.0 - config.alpha) * known_distance_part)

    def score_ceiling(self, ctx: QueryContext) -> Optional[float]:
        """Constant-per-query over-estimate of any remaining candidate's
        score: the postings-derived match ceiling pushed through Line
        18's ``UpperBound`` with the worst-case distance part.  Every
        per-candidate bound is <= this value, so once the top-k queue's
        threshold exceeds it, no candidate left in the loop can enter
        the queue."""
        if self.match_ceiling is None:
            return None
        return self.upper_bound(ctx, self.match_ceiling, 1.0)

    def count_pruned(self, ctx: QueryContext, count: int = 1) -> None:
        ctx.stats.threads_pruned += count
        profile = ctx.profile
        if profile is not None:
            if self.source == "hot":
                profile.users_pruned_hot += count
            else:
                profile.users_pruned_global += count


class BoundsPruneOp(PhysicalOperator):
    """Lines 18-19's pruning precondition: resolve which bound family
    (global ``t_m`` vs pre-computed hot-keyword, Section VI-B5's AND=min
    / OR=max combination) serves this query and install the pruning
    predicate that :class:`ThreadScoreOp` consults per candidate.  Omit
    this operator for the no-pruning ablation."""

    name = "BoundsPrune"
    paper_lines = "Alg 5 lines 18-19; Def 11; Section VI-B5"
    writes = ("pruner",)

    def __init__(self, tighten_distance_bound: bool = True) -> None:
        # Sound refinement beyond the paper's bound: once a candidate
        # user's distance score delta(u, q) has been computed for this
        # query, later candidates of the same user can use it in place
        # of the maximum distance score 1 (delta(u, q) is per-user, not
        # per-tweet, so the substitution never under-estimates).
        self.tighten_distance_bound = tighten_distance_bound

    def run(self, ctx: QueryContext) -> None:
        bounds = ctx.bounds
        assert bounds is not None, "BoundsPruneOp needs a BoundsManager"
        query = ctx.query
        source = bounds.bound_source(query.keywords, query.semantics)
        match_ceiling: Optional[int] = None
        if ctx.per_cell is not None:
            # Tighten with what the fetched (window-clipped) postings say:
            # block views answer from per-block max_tf skip headers
            # without decoding anything.
            match_ceiling = postings_match_bound(ctx.per_cell, ctx.terms)
        ctx.pruner = _QueryPruner(
            source, bounds.bound_for_query(query.keywords, query.semantics),
            self.tighten_distance_bound, match_ceiling)
        if ctx.profile is not None:
            ctx.profile.bound_source = source

    def describe(self) -> str:
        tighten = "on" if self.tighten_distance_bound else "off"
        return (f"BoundsPrune(AND=min/OR=max bound, "
                f"tighten_distance_bound={tighten})")


class ThreadScoreOp(PhysicalOperator):
    """Lines 15-24: per-candidate thread construction (Algorithm 1),
    keyword relevance (Definition 6) and per-user aggregation.

    Two modes:

    * ``ranked=False`` — accumulate per-user keyword score parts
      (Definition 7 for ``aggregate="sum"``, Definition 8 for ``"max"``)
      into ``ctx.keyword_parts`` for a downstream :class:`RankOp`;
    * ``ranked=True`` — Algorithm 5's streaming form: maintain the
      bounded top-k user queue, compute each user's distance part lazily
      (once per user), and consult the installed pruner *before* paying
      for thread construction (the I/O bottleneck, Section V-B).
    """

    name = "ThreadScore"
    paper_lines = "Alg 4 lines 15-24 / Alg 5 lines 15-33"
    writes = ("keyword_parts", "queue")

    def __init__(self, aggregate: str, ranked: bool = False) -> None:
        if aggregate not in ("sum", "max"):
            raise ValueError(f"aggregate must be 'sum' or 'max': {aggregate!r}")
        self.aggregate = aggregate
        self.ranked = ranked

    def run(self, ctx: QueryContext) -> None:
        threads_before = 0
        track = ctx.track_thread_builds
        counter = getattr(ctx.threads, "threads_built", None)
        if track and counter is not None:
            threads_before = counter
        calls = 0
        with obs.trace("query.score", candidates=ctx.stats.candidates,
                       in_radius=len(ctx.in_radius)):
            if self.ranked:
                calls = self._run_ranked(ctx)
            else:
                calls = self._run_accumulate(ctx)
        if track:
            if counter is not None:
                ctx.stats.threads_built = ctx.threads.threads_built - threads_before
            else:
                # Dataset-backed builders keep no counter; every
                # popularity call constructs one thread.
                ctx.stats.threads_built = calls

    # -- modes ------------------------------------------------------------

    def _relevance(self, ctx: QueryContext, candidate: Candidate,
                   popularity: float) -> float:
        # candidate.match_count is |q.W ∩ p.W| under the bag model, so
        # Definition 6 reduces to (matches / N) * phi(p).
        relevance = (candidate.match_count
                     / ctx.config.keyword_normalizer) * popularity
        recency = ctx.query.temporal.recency
        # Recency weight <= 1, so the pruning bound (which omits it)
        # remains a sound over-estimate.
        if recency is not None:
            relevance *= recency.weight(candidate.tid, ctx.recency_reference)
        return relevance

    def _popularity(self, ctx: QueryContext, tid: int) -> float:
        if ctx.lock is None:
            return ctx.threads.popularity(tid)
        with ctx.lock:
            return ctx.threads.popularity(tid)

    def _distance_part(self, ctx: QueryContext, uid: int) -> float:
        """Definition 9's ``delta(u, q)`` for one user (the batched
        subclass swaps in the columnar kernel; values are bitwise
        identical either way)."""
        user_locations = ctx.user_locations
        assert user_locations is not None
        return user_distance_score(user_locations(uid), ctx.query.location,
                                   ctx.query.radius_km, ctx.metric)

    def _run_accumulate(self, ctx: QueryContext) -> int:
        parts: Dict[int, float] = {}
        profile = ctx.profile
        is_sum = self.aggregate == "sum"
        calls = 0
        for candidate, uid, _lat, _lon in ctx.in_radius:
            popularity = self._popularity(ctx, candidate.tid)
            calls += 1
            relevance = self._relevance(ctx, candidate, popularity)
            if is_sum:
                parts[uid] = parts.get(uid, 0.0) + relevance
            else:
                parts[uid] = max(parts.get(uid, 0.0), relevance)
            if profile is not None:
                profile.users_scored += 1
        ctx.keyword_parts = parts
        return calls

    def _run_ranked(self, ctx: QueryContext) -> int:
        query = ctx.query
        profile = ctx.profile
        pruner: Optional[_QueryPruner] = ctx.pruner
        queue = TopKUserQueue(query.k)
        ctx.queue = queue
        user_locations = ctx.user_locations
        assert user_locations is not None
        distance_parts: Dict[int, float] = {}  # uid -> delta(u, q), once
        ceiling = pruner.score_ceiling(ctx) if pruner is not None else None
        calls = 0
        in_radius = ctx.in_radius
        for position, (candidate, uid, _lat, _lon) in enumerate(in_radius):
            # Query-wide cut: the ceiling dominates every per-candidate
            # bound below, so once the queue threshold passes it each
            # remaining candidate would be pruned individually anyway —
            # same results, without walking them one by one.
            if (ceiling is not None and pruner is not None and queue.full
                    and ceiling < queue.peek()):
                rest = len(in_radius) - position
                pruner.count_pruned(ctx, rest)
                obs.event("query.prune_rest", remaining=rest,
                          source=pruner.source)
                break
            # Lines 18-19: prune before paying for thread construction.
            if pruner is not None and queue.full:
                known = 1.0
                if pruner.tighten_distance_bound:
                    known = distance_parts.get(uid, 1.0)
                bound = pruner.upper_bound(ctx, candidate.match_count, known)
                if bound < queue.peek():
                    pruner.count_pruned(ctx)
                    obs.event("query.prune", tid=candidate.tid, uid=uid,
                              source=pruner.source)
                    continue
                # A user's own score can also make their remaining tweets
                # irrelevant, independent of the queue threshold.
                own = queue.score_of(uid)
                if own is not None and bound <= own:
                    pruner.count_pruned(ctx)
                    obs.event("query.prune", tid=candidate.tid, uid=uid,
                              source=pruner.source)
                    continue
            popularity = self._popularity(ctx, candidate.tid)
            calls += 1
            relevance = self._relevance(ctx, candidate, popularity)
            if uid not in distance_parts:
                distance_parts[uid] = self._distance_part(ctx, uid)
            queue.offer(uid, user_score(relevance, distance_parts[uid],
                                        ctx.config))
            if profile is not None:
                profile.users_scored += 1
        return calls

    def describe(self) -> str:
        mode = "top-k queue" if self.ranked else "accumulate"
        return f"ThreadScore(aggregate={self.aggregate}, mode={mode})"


class RankOp(PhysicalOperator):
    """Lines 25-27: combine each user's keyword aggregate with their
    distance score (Definitions 9-10) and sort.  When an upstream ranked
    :class:`ThreadScoreOp` already maintains the top-k queue, ranking is
    just draining it."""

    name = "Rank"
    paper_lines = "Alg 4 lines 25-27 / Alg 5 line 34"
    writes = ("scored",)

    def run(self, ctx: QueryContext) -> None:
        if ctx.queue is not None:
            ctx.scored = ctx.queue.ranked()
            return
        query = ctx.query
        parts = ctx.keyword_parts if ctx.keyword_parts is not None else {}
        user_locations = ctx.user_locations
        assert user_locations is not None
        with obs.trace("query.rank", users=len(parts)):
            scored: List[Tuple[int, float]] = []
            for uid, keyword_part in parts.items():
                distance_part = user_distance_score(
                    user_locations(uid), query.location, query.radius_km,
                    ctx.metric)
                scored.append((uid, user_score(keyword_part, distance_part,
                                               ctx.config)))
            scored.sort(key=lambda item: (-item[1], item[0]))
        ctx.scored = scored

    def describe(self) -> str:
        return "Rank(blend delta(u,q), sort by (-score, uid))"


class TopKOp(PhysicalOperator):
    """Lines 28-29: the final top-k cut."""

    name = "TopK"
    paper_lines = "Alg 4/5 lines 28-29"
    writes = ("users",)

    def run(self, ctx: QueryContext) -> None:
        ctx.users = ctx.scored[:ctx.query.k]

    def describe(self) -> str:
        return "TopK(k from query)"


class PartitionRouteOp(PhysicalOperator):
    """Scatter routing: group cover cells by the partition (part file /
    "query server") owning their postings — the Section IV-B1 locality
    story.  Cells with no indexed postings for any query term are dropped
    here, before any server is involved."""

    name = "PartitionRoute"
    paper_lines = "Section IV-B1 (layout/locality)"
    writes = ("cells_by_server",)

    def run(self, ctx: QueryContext) -> None:
        source = ctx.source
        assert source is not None and hasattr(source, "owner_of"), \
            "PartitionRouteOp needs a PartitionedPostingsSource"
        by_server: Dict[str, List[str]] = {}
        for cell in ctx.cells:
            owner: Optional[str] = None
            for term in ctx.terms:
                owner = source.owner_of(cell, term)
                if owner is not None:
                    break
            if owner is not None:
                by_server.setdefault(owner, []).append(cell)
        ctx.cells_by_server = by_server
        if isinstance(ctx.stats, ScatterStats):
            ctx.stats.servers_involved = len(by_server)

    def describe(self) -> str:
        return "PartitionRoute(cells by owning partition)"


class ScatterGatherOp(PhysicalOperator):
    """Scatter-gather execution: run the server sub-plan per involved
    partition (a worker thread per server, simulating per-node
    execution), then merge per-server partial keyword aggregates (sum
    scores add across servers; max scores take the maximum)."""

    name = "ScatterGather"
    paper_lines = "Section IV-B1 (distributed retrieval)"
    writes = ("keyword_parts", "candidate_uids")

    def __init__(self, aggregate: str, server_plan, max_workers: int = 4) -> None:
        if aggregate not in ("sum", "max"):
            raise ValueError(f"aggregate must be 'sum' or 'max': {aggregate!r}")
        self.aggregate = aggregate
        self.server_plan = server_plan
        self.max_workers = max_workers

    def run(self, ctx: QueryContext) -> None:
        by_server = ctx.cells_by_server
        stats = ctx.stats
        if not by_server:
            ctx.keyword_parts = {}
            return

        def server_task(item: Tuple[str, List[str]]) -> QueryContext:
            child = ctx.child(item[1])
            self.server_plan.execute(child)
            return child

        with ThreadPoolExecutor(
                max_workers=min(self.max_workers, len(by_server))) as pool:
            children = list(pool.map(server_task, sorted(by_server.items())))
        if isinstance(stats, ScatterStats):
            stats.partial_results = len(children)

        # Gather: merge per-user keyword parts across servers.
        is_sum = self.aggregate == "sum"
        merged: Dict[int, float] = {}
        for child in children:
            stats.candidates += child.stats.candidates
            stats.candidates_in_radius += child.stats.candidates_in_radius
            ctx.candidate_uids |= child.candidate_uids
            for uid, part in (child.keyword_parts or {}).items():
                if is_sum:
                    merged[uid] = merged.get(uid, 0.0) + part
                else:
                    merged[uid] = max(merged.get(uid, 0.0), part)
        ctx.keyword_parts = merged

    def children(self) -> Sequence[object]:
        return (self.server_plan,)

    def describe(self) -> str:
        return (f"ScatterGather(aggregate={self.aggregate}, "
                f"max_workers={self.max_workers})")
