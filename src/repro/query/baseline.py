"""Exhaustive in-memory baseline for TkLUS queries.

A full-scan evaluator over a :class:`~repro.core.model.Dataset` that
computes the exact semantics of Algorithms 4 and 5 without any index,
cover, bound, or storage engine.  It serves two purposes:

* the **correctness oracle** for the index-backed processors (their
  rankings must match it exactly), and
* the unindexed comparison point ("it is definitely inefficient to check
  the sets iteratively", Section II-B) for the ablation benchmarks.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..core.model import Dataset, Semantics, TkLUSQuery
from ..core.scoring import ScoringConfig, user_distance_score, user_score
from ..core.thread import DatasetThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from .results import QueryResult, QueryStats


class BruteForceProcessor:
    """Scans every post for every query."""

    def __init__(self, dataset: Dataset, config: ScoringConfig = ScoringConfig(),
                 metric: Metric = DEFAULT_METRIC, depth: int = 6) -> None:
        self.dataset = dataset
        self.config = config
        self.metric = metric
        self.threads = DatasetThreadBuilder(dataset, depth=depth,
                                            epsilon=config.epsilon)
        self._user_locations: Dict[int, List[Tuple[float, float]]] = {}
        for uid in dataset.users:
            self._user_locations[uid] = [
                post.location for post in dataset.posts_of(uid)]

    def _matches(self, words: Tuple[str, ...], query: TkLUSQuery) -> int:
        """``|q.W ∩ p.W|`` under the bag model; 0 when the semantics
        reject the post."""
        bag: Dict[str, int] = {}
        for word in words:
            bag[word] = bag.get(word, 0) + 1
        present = [keyword for keyword in query.keywords if bag.get(keyword)]
        if not present:
            return 0
        if query.semantics is Semantics.AND and len(present) != len(query.keywords):
            return 0
        return sum(bag[keyword] for keyword in present)

    def _rank(self, query: TkLUSQuery, aggregate: str) -> QueryResult:
        start = time.perf_counter()
        stats = QueryStats()
        keyword_parts: Dict[int, float] = {}
        window = query.temporal.window
        recency = query.temporal.recency
        reference = 0
        if recency is not None:
            reference = recency.resolve_reference(
                max(self.dataset.posts) if self.dataset.posts else 0)
        for post in self.dataset.posts.values():
            if not window.contains(post.sid):
                continue
            match_count = self._matches(post.words, query)
            if match_count == 0:
                continue
            stats.candidates += 1
            if self.metric(query.location, post.location) > query.radius_km:
                continue
            stats.candidates_in_radius += 1
            popularity = self.threads.popularity(post.sid)
            stats.threads_built += 1
            relevance = (match_count / self.config.keyword_normalizer
                         ) * popularity
            if recency is not None:
                relevance *= recency.weight(post.sid, reference)
            if aggregate == "sum":
                keyword_parts[post.uid] = keyword_parts.get(post.uid, 0.0) + relevance
            else:
                keyword_parts[post.uid] = max(
                    keyword_parts.get(post.uid, 0.0), relevance)

        scored = []
        for uid, keyword_part in keyword_parts.items():
            distance_part = user_distance_score(
                self._user_locations[uid], query.location,
                query.radius_km, self.metric)
            scored.append((uid, user_score(keyword_part, distance_part,
                                           self.config)))
        scored.sort(key=lambda item: (-item[1], item[0]))
        stats.elapsed_seconds = time.perf_counter() - start
        return QueryResult(users=scored[:query.k], stats=stats)

    def search_sum(self, query: TkLUSQuery) -> QueryResult:
        """Exact sum-score ranking (Definitions 7 + 10 over in-radius
        matching tweets)."""
        return self._rank(query, "sum")

    def search_max(self, query: TkLUSQuery) -> QueryResult:
        """Exact maximum-score ranking (Definitions 8 + 10)."""
        return self._rank(query, "max")
