"""Exhaustive in-memory baseline for TkLUS queries.

A full-scan evaluator over a :class:`~repro.core.model.Dataset` that
computes the exact semantics of Algorithms 4 and 5 without any index,
cover, bound, or storage engine.  It serves two purposes:

* the **correctness oracle** for the index-backed processors (their
  rankings must match it exactly), and
* the unindexed comparison point ("it is definitely inefficient to check
  the sets iteratively", Section II-B) for the ablation benchmarks.

Structurally it is the same operator pipeline as the indexed paths with
the retrieval prefix swapped out: ``DatasetScan`` replaces
``Cover -> PostingsFetch -> CandidateForm``, and the metadata callables
read the in-memory dataset instead of the storage engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.model import Dataset, TkLUSQuery
from ..core.scoring import ScoringConfig
from ..core.thread import DatasetThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from .pipeline import Planner, QueryContext, run_plan
from .results import QueryResult


class BruteForceProcessor:
    """Scans every post for every query."""

    def __init__(self, dataset: Dataset,
                 config: Optional[ScoringConfig] = None,
                 metric: Metric = DEFAULT_METRIC, depth: int = 6) -> None:
        self.dataset = dataset
        self.config = config if config is not None else ScoringConfig()
        self.metric = metric
        self.threads = DatasetThreadBuilder(dataset, depth=depth,
                                            epsilon=self.config.epsilon)
        self._user_locations: Dict[int, List[Tuple[float, float]]] = {}
        for uid in dataset.users:
            self._user_locations[uid] = [
                post.location for post in dataset.posts_of(uid)]
        self._planner = Planner()

    def plan_for(self, query: TkLUSQuery, method: str = "sum"):
        """The physical (full-scan) plan for ``query``."""
        return self._planner.plan_for_query(method, query, scan=True)

    def _rank(self, query: TkLUSQuery, aggregate: str) -> QueryResult:
        ctx = QueryContext.for_dataset(
            query, config=self.config, metric=self.metric,
            dataset=self.dataset, threads=self.threads,
            user_locations=self._user_locations)
        return run_plan(self.plan_for(query, aggregate), ctx)

    def search_sum(self, query: TkLUSQuery) -> QueryResult:
        """Exact sum-score ranking (Definitions 7 + 10 over in-radius
        matching tweets)."""
        return self._rank(query, "sum")

    def search_max(self, query: TkLUSQuery) -> QueryResult:
        """Exact maximum-score ranking (Definitions 8 + 10)."""
        return self._rank(query, "max")
