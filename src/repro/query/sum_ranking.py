"""Algorithm 4: query processing for sum-score based user ranking.

Pipeline (line numbers refer to the paper's Algorithm 4):

1.  circle cover at the index's geohash length (line 1);
2.  fetch postings for every (cell, keyword) pair (lines 4-7);
3.  AND/OR candidate formation (lines 8-14);
4.  for each candidate within the radius: build its tweet thread
    (Algorithm 1), compute its keyword relevance contribution
    (Definition 6), and accumulate per user (Definition 7) —
    lines 15-24;
5.  combine each user's keyword score with their distance score
    (Definitions 9-10), sort and return the top k (lines 25-29).
"""

from __future__ import annotations

import time
from typing import Dict, List

from .. import obs
from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig, user_distance_score, user_score
from ..core.thread import ThreadBuilder
from ..geo.cover import cover_cells_fully_inside
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from .profiling import ProfileRecorder
from .results import QueryResult, QueryStats
from .semantics import candidates_from_postings, clip_per_cell


class SumScoreProcessor:
    """Executes TkLUS queries under sum-score ranking."""

    def __init__(self, index: HybridIndex, database: MetadataDatabase,
                 thread_builder: ThreadBuilder,
                 config: ScoringConfig = ScoringConfig(),
                 metric: Metric = DEFAULT_METRIC,
                 use_cell_containment: bool = True) -> None:
        self.index = index
        self.database = database
        self.threads = thread_builder
        self.config = config
        self.metric = metric
        # Optimization beyond the paper's Algorithm 4: a cover cell that
        # lies entirely inside the query circle cannot contain an
        # out-of-radius tweet, so its candidates skip the per-tweet
        # distance check of line 16.  Answer-preserving by construction.
        self.use_cell_containment = use_cell_containment

    def search(self, query: TkLUSQuery) -> QueryResult:
        start = time.perf_counter()
        stats = QueryStats()
        recorder = ProfileRecorder(self.database, self.index, query, "sum")
        profile = recorder.profile

        with obs.trace("query.search", method="sum",
                       semantics=query.semantics.value, k=query.k,
                       radius_km=query.radius_km):
            terms = sorted(query.keywords)
            with obs.trace("query.cover") as cover_span:
                cells = self.index.cover(query.location, query.radius_km,
                                         self.metric)
                cover_span.set(cells=len(cells))
            stats.cells_covered = len(cells)

            fetched_before = self.index.stats.postings_fetches
            per_cell = self.index.postings_for_query(cells, terms)
            stats.postings_lists_fetched = (
                self.index.stats.postings_fetches - fetched_before)

            per_cell = clip_per_cell(per_cell, query.temporal.window)
            candidates = candidates_from_postings(per_cell, terms,
                                                  query.semantics)
            stats.candidates = len(candidates)

            inside_cells = set()
            if self.use_cell_containment:
                inside, _boundary = cover_cells_fully_inside(
                    query.location, query.radius_km,
                    self.index.geohash_length, self.metric)
                inside_cells = set(inside)

            recency = query.temporal.recency
            reference = 0
            if recency is not None:
                reference = recency.resolve_reference(self.database.max_sid)

            threads_before = self.threads.threads_built
            # Per-user accumulation of Definition 7 over in-radius
            # candidates.
            keyword_scores: Dict[int, float] = {}
            with obs.trace("query.score", candidates=len(candidates)):
                for candidate in candidates:
                    record = self.database.get(candidate.tid)
                    if record is None:
                        continue
                    if candidate.cell in inside_cells:
                        stats.distance_checks_skipped += 1
                    else:
                        distance = self.metric(query.location,
                                               (record.lat, record.lon))
                        if distance > query.radius_km:
                            continue  # boundary cell false positive (line 16)
                    stats.candidates_in_radius += 1
                    popularity = self.threads.popularity(candidate.tid)
                    # candidate.match_count is |q.W ∩ p.W| under the bag
                    # model, so Definition 6 reduces to
                    # (matches / N) * phi(p).
                    relevance = (candidate.match_count
                                 / self.config.keyword_normalizer) * popularity
                    if recency is not None:
                        relevance *= recency.weight(candidate.tid, reference)
                    keyword_scores[record.uid] = (
                        keyword_scores.get(record.uid, 0.0) + relevance)
                    profile.users_scored += 1
            stats.threads_built = self.threads.threads_built - threads_before

            # Lines 25-27: combine with the user distance score.
            with obs.trace("query.rank", users=len(keyword_scores)):
                scored: List = []
                for uid, keyword_part in keyword_scores.items():
                    posts = self.database.posts_of_user(uid)
                    locations = [(record.lat, record.lon) for record in posts]
                    distance_part = user_distance_score(
                        locations, query.location, query.radius_km,
                        self.metric)
                    scored.append((uid, user_score(keyword_part,
                                                   distance_part,
                                                   self.config)))
                scored.sort(key=lambda item: (-item[1], item[0]))

            stats.elapsed_seconds = time.perf_counter() - start
            stats.io_delta = recorder.io_delta_pages()

        profile.cells_covered = stats.cells_covered
        profile.candidates = stats.candidates
        profile.candidate_users = stats.candidates_in_radius
        profile.threads_built = stats.threads_built
        recorder.finish(stats.elapsed_seconds)
        return QueryResult(users=scored[:query.k], stats=stats,
                           profile=profile)
