"""Algorithm 4: query processing for sum-score based user ranking.

Plan shape (line numbers refer to the paper's Algorithm 4):

1.  circle cover at the index's geohash length (line 1) — ``Cover``;
2.  fetch postings for every (cell, keyword) pair (lines 4-7) —
    ``PostingsFetch``;
3.  AND/OR candidate formation (lines 8-14) — ``CandidateForm``;
4.  for each candidate within the radius (line 16, ``RadiusFilter``):
    build its tweet thread (Algorithm 1), compute its keyword relevance
    contribution (Definition 6), and accumulate per user (Definition 7)
    — lines 15-24, ``ThreadScore``;
5.  combine each user's keyword score with their distance score
    (Definitions 9-10), sort and return the top k (lines 25-29) —
    ``Rank`` + ``TopK``.

The operators live in :mod:`repro.query.pipeline`; this processor is a
thin shell that plans the query and binds it to the storage backends.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig
from ..core.thread import ThreadBuilder
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from .pipeline import Planner, QueryContext, run_plan
from .profiling import ProfileRecorder
from .results import QueryResult


class SumScoreProcessor:
    """Executes TkLUS queries under sum-score ranking."""

    def __init__(self, index: HybridIndex, database: MetadataDatabase,
                 thread_builder: ThreadBuilder,
                 config: Optional[ScoringConfig] = None,
                 metric: Metric = DEFAULT_METRIC,
                 use_cell_containment: bool = True) -> None:
        self.index = index
        self.database = database
        self.threads = thread_builder
        self.config = config if config is not None else ScoringConfig()
        self.metric = metric
        # Optimization beyond the paper's Algorithm 4: a cover cell that
        # lies entirely inside the query circle cannot contain an
        # out-of-radius tweet, so its candidates skip the per-tweet
        # distance check of line 16.  Answer-preserving by construction.
        self.use_cell_containment = use_cell_containment
        self._planner = Planner(use_cell_containment=use_cell_containment)

    def plan_for(self, query: TkLUSQuery):
        """The physical plan this processor would run for ``query``."""
        return self._planner.plan_for_query(
            "sum", query, kernels=self.config.resolved_kernels())

    def search(self, query: TkLUSQuery, *, source: Any = None,
               cancel: Any = None) -> QueryResult:
        """``source`` overrides the postings source for this one query
        (the serve layer passes a pinned ``LiveSnapshot``); ``cancel``
        is a cooperative cancel token checked at operator boundaries."""
        active = source if source is not None else self.index
        recorder = ProfileRecorder(self.database, active, query, "sum")
        ctx = QueryContext.for_database(
            query, config=self.config, metric=self.metric, source=active,
            database=self.database, threads=self.threads,
            profile=recorder.profile, cancel=cancel)
        return run_plan(self.plan_for(query), ctx, method="sum",
                        recorder=recorder)
