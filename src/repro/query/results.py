"""Result and statistics types shared by the query algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.profile import QueryProfile


@dataclass
class QueryStats:
    """Work accounting for one query execution."""

    cells_covered: int = 0
    postings_lists_fetched: int = 0
    candidates: int = 0
    candidates_in_radius: int = 0
    threads_built: int = 0
    threads_pruned: int = 0
    distance_checks_skipped: int = 0
    elapsed_seconds: float = 0.0
    io_delta: Dict[str, int] = field(default_factory=dict)

    @property
    def prune_rate(self) -> float:
        """Fraction of in-radius candidates whose thread construction was
        skipped by the upper bound."""
        total = self.threads_built + self.threads_pruned
        if total == 0:
            return 0.0
        return self.threads_pruned / total


@dataclass
class ScatterStats(QueryStats):
    """Query stats extended with scatter-gather shape."""

    servers_involved: int = 0
    partial_results: int = 0


@dataclass
class QueryResult:
    """A ranked top-k user list plus execution statistics.

    ``profile`` carries the full per-query execution profile (candidate
    funnel, pruning ledger, I/O deltas) when the executing processor
    produced one; the lightweight ``stats`` counters are always present.
    """

    users: List[Tuple[int, float]]  # (uid, score), best first
    stats: QueryStats = field(default_factory=QueryStats)
    profile: Optional[QueryProfile] = None

    def ranking(self) -> List[int]:
        """Just the uid ranking (input to the Kendall tau comparison)."""
        return [uid for uid, _score in self.users]

    def __len__(self) -> int:
        return len(self.users)
