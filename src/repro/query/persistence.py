"""Saving and loading a built TkLUS deployment.

The paper's pipeline builds its index in a batch job and serves queries
later; this module provides that operational boundary for the library:

* :func:`save_engine` — persist a built engine to a directory: the
  metadata relation + B+-trees (as page files), every inverted-index
  part file (dumped out of the simulated DFS), the serialised forward
  index, and a JSON manifest with scoring/index configuration and the
  pre-computed popularity bounds;
* :func:`load_engine` — reconstruct a fully functional engine from that
  directory without re-running the MapReduce build or the bound
  pre-computation.
"""

from __future__ import annotations

import json
import os
from typing import Optional, cast

from ..core.scoring import ScoringConfig
from ..core.thread import ThreadBuilder
from ..dfs.cluster import DFSCluster, paper_cluster
from ..geo.distance import DEFAULT_METRIC, Metric
from ..index.builder import IndexConfig
from ..index.forward import ForwardIndex
from ..index.generations import Generation, GenerationalIndex
from ..index.hybrid import HybridIndex
from ..storage.metadata import MetadataDatabase
from ..text.analyzer import Analyzer
from .bounds import BoundsManager
from .engine import EngineConfig, TkLUSEngine

MANIFEST_NAME = "manifest.json"
FORWARD_NAME = "forward.bin"
PARTS_DIR = "inverted"
METADATA_DIR = "metadata"

FORMAT_VERSION = 1


class PersistenceError(RuntimeError):
    """Raised on malformed or incompatible saved engines."""


def save_engine(engine: TkLUSEngine, directory: str) -> None:
    """Persist ``engine`` under ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)

    # 1. Metadata relation: copy into a disk-backed database.
    disk_db = MetadataDatabase.open_directory(
        os.path.join(directory, METADATA_DIR),
        pool_size=engine.config.pool_size)
    if len(disk_db) != 0:
        raise PersistenceError(
            f"{directory} already holds a metadata database")
    for record in engine.database.scan():
        disk_db.insert(record)
    disk_db.flush()

    # 2 + 3. Inverted-index part files (dumped out of the DFS) and
    # forward index(es).  A generational engine saves one subdirectory
    # and forward file per generation; a monolithic engine keeps the
    # original flat layout.
    parts_dir = os.path.join(directory, PARTS_DIR)
    os.makedirs(parts_dir, exist_ok=True)
    index = engine.index
    part_names = []
    generation_entries = []
    if isinstance(index, GenerationalIndex):
        index_config = index.base_config
        for generation in index.generations:
            gen_name = f"gen-{generation.number:05d}"
            gen_dir = os.path.join(parts_dir, gen_name)
            os.makedirs(gen_dir, exist_ok=True)
            gen_parts = []
            prefix = generation.index.config.output_prefix
            for path in generation.index.cluster.list_files(prefix):
                reader = generation.index.cluster.open(path)
                name = path.rsplit("/", 1)[-1]
                gen_parts.append(name)
                with open(os.path.join(gen_dir, name), "wb") as handle:
                    handle.write(reader.pread(0, reader.size))
            forward_name = f"forward-{gen_name}.bin"
            with open(os.path.join(directory, forward_name), "wb") as handle:
                handle.write(generation.index.forward.serialize())
            generation_entries.append({
                "number": generation.number,
                "post_count": generation.post_count,
                "tier": generation.tier,
                "seq": generation.seq,
                "size_bytes": generation.size_bytes,
                "parts": sorted(gen_parts),
            })
    else:
        index_config = index.config
        prefix = index.config.output_prefix
        for path in index.cluster.list_files(prefix):
            reader = index.cluster.open(path)
            name = path.rsplit("/", 1)[-1]
            part_names.append(name)
            with open(os.path.join(parts_dir, name), "wb") as handle:
                handle.write(reader.pread(0, reader.size))
        with open(os.path.join(directory, FORWARD_NAME), "wb") as handle:
            handle.write(index.forward.serialize())

    # 4. Manifest: configs and bounds.
    manifest = {
        "format_version": FORMAT_VERSION,
        "index": {
            "geohash_length": index_config.geohash_length,
            "num_map_tasks": index_config.num_map_tasks,
            "num_reduce_tasks": index_config.num_reduce_tasks,
            "output_prefix": index_config.output_prefix,
            "postings_format": index_config.postings_format,
            "block_size": index_config.block_size,
        },
        "generations": generation_entries,
        "scoring": {
            "alpha": engine.config.scoring.alpha,
            "keyword_normalizer": engine.config.scoring.keyword_normalizer,
            "epsilon": engine.config.scoring.epsilon,
        },
        "thread_depth": engine.config.thread_depth,
        "pool_size": engine.config.pool_size,
        "bounds": {
            "global": engine.bounds.global_bound,
            "keywords": engine.bounds.keyword_bounds,
        },
        "parts": part_names,
        "tweets": len(engine.database),
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)


def load_engine(directory: str, cluster: Optional[DFSCluster] = None,
                analyzer: Optional[Analyzer] = None,
                metric: Metric = DEFAULT_METRIC) -> TkLUSEngine:
    """Reconstruct a saved engine.

    The inverted index is re-uploaded into a fresh (or supplied) DFS
    cluster; the metadata database reopens its page files directly.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise PersistenceError(f"no manifest at {manifest_path}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')}")

    if cluster is None:
        cluster = paper_cluster()
    if analyzer is None:
        analyzer = Analyzer()

    # Manifests written before the block format carry no postings_format
    # key; their part files hold flat 12-byte entries, which the reader
    # detects per payload, so "flat" is the faithful default either way.
    index_config = IndexConfig(
        geohash_length=manifest["index"]["geohash_length"],
        num_map_tasks=manifest["index"]["num_map_tasks"],
        num_reduce_tasks=manifest["index"]["num_reduce_tasks"],
        output_prefix=manifest["index"]["output_prefix"],
        postings_format=manifest["index"].get("postings_format", "flat"),
        block_size=manifest["index"].get(
            "block_size", IndexConfig.block_size),
    )
    scoring = ScoringConfig(
        alpha=manifest["scoring"]["alpha"],
        keyword_normalizer=manifest["scoring"]["keyword_normalizer"],
        epsilon=manifest["scoring"]["epsilon"],
    )

    # 1. Metadata database from its page files.
    database = MetadataDatabase.open_directory(
        os.path.join(directory, METADATA_DIR),
        pool_size=manifest["pool_size"])
    if len(database) != manifest["tweets"]:
        raise PersistenceError(
            f"metadata database holds {len(database)} tweets, "
            f"manifest says {manifest['tweets']}")

    # 2 + 3. Re-upload part files into the DFS and rebuild the index —
    # one HybridIndex per saved generation, or the monolithic layout.
    generation_entries = manifest.get("generations", [])
    if generation_entries:
        generational = GenerationalIndex(cluster, analyzer, index_config)
        for entry in generation_entries:
            number = int(entry["number"])
            gen_name = f"gen-{number:05d}"
            gen_config = generational._generation_config(number)
            for name in entry["parts"]:
                local = os.path.join(directory, PARTS_DIR, gen_name, name)
                with open(local, "rb") as handle:
                    data = handle.read()
                with cluster.create(
                        f"{gen_config.output_prefix}/{name}") as writer:
                    writer.write(data)
            forward_path = os.path.join(directory,
                                        f"forward-{gen_name}.bin")
            with open(forward_path, "rb") as handle:
                gen_forward = ForwardIndex.deserialize(handle.read())
            gen_index = HybridIndex(gen_forward, cluster, gen_config,
                                    analyzer)
            # Manifests written before compaction metadata carry no
            # tier/seq/size_bytes; tier 0 and seq = number reproduce
            # the pre-compaction planning behaviour.
            generational.restore_generation(Generation(
                number=number, index=gen_index,
                post_count=int(entry["post_count"]),
                tier=int(entry.get("tier", 0)),
                seq=int(entry.get("seq", number)),
                size_bytes=int(entry.get(
                    "size_bytes",
                    gen_index.inverted_size_bytes()
                    + gen_index.forward_size_bytes()))))
        index: object = generational
    else:
        for name in manifest["parts"]:
            local = os.path.join(directory, PARTS_DIR, name)
            with open(local, "rb") as handle:
                data = handle.read()
            with cluster.create(
                    f"{index_config.output_prefix}/{name}") as writer:
                writer.write(data)
        with open(os.path.join(directory, FORWARD_NAME), "rb") as handle:
            forward = ForwardIndex.deserialize(handle.read())
        index = HybridIndex(forward, cluster, index_config, analyzer)
    engine_config = EngineConfig(
        index=index_config, scoring=scoring,
        thread_depth=manifest["thread_depth"],
        pool_size=manifest["pool_size"],
        hot_keywords=sorted(manifest["bounds"]["keywords"]),
    )
    thread_builder = ThreadBuilder(database,
                                   depth=engine_config.thread_depth,
                                   epsilon=scoring.epsilon)
    bounds = BoundsManager(manifest["bounds"]["global"],
                           manifest["bounds"]["keywords"])
    # A GenerationalIndex satisfies the same duck-typed query surface
    # the engine and processors use; the cast keeps the declared
    # HybridIndex signature honest for the common case.
    return TkLUSEngine(database, cast(HybridIndex, index), thread_builder,
                       bounds, engine_config, metric)
