"""Perf-regression bench harness: flat vs block-compressed postings.

Runs the paper's query workloads (Fig 8 single-keyword, with and
without a temporal window, and Fig 10 multi-keyword) over the same
seeded synthetic corpus twice — once against a flat-format index, once
against the block format — and reports per-workload latency quantiles
and decode-work counters.  The committed ``BENCH_query.json`` at the
repo root is this module's output; CI re-validates its schema and a
smoke run guards against decode-path regressions.

Everything here is exact and deterministic except wall-clock latency:
quantiles are computed from the full sorted sample (no estimation), and
both engines answer the identical bound queries so the report can also
assert result parity between formats.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..core.model import Semantics, TkLUSQuery
from ..core.temporal import TemporalSpec, TimeWindow
from ..data.generator import SyntheticCorpus, generate_corpus
from ..data.queries import QueryWorkload
from ..dfs.cluster import paper_cluster
from ..index.blocks import DEFAULT_BLOCK_SIZE
from ..index.builder import IndexConfig
from ..query.engine import EngineConfig, TkLUSEngine

SCHEMA_VERSION = 1
FORMATS = ("flat", "block")

#: Per-format metric keys every workload entry must carry.
METRIC_KEYS = (
    "postings_bytes_decoded",
    "blocks_decoded",
    "blocks_skipped",
    "block_cache_hits",
    "block_cache_misses",
    "index_bytes_read",
    "postings_entries_read",
)


@dataclass
class BenchConfig:
    """Knobs for one bench run; the defaults match the committed
    ``BENCH_query.json``."""

    num_users: int = 400
    num_root_tweets: int = 2000
    seed: int = 42
    queries_per_workload: int = 12
    radius_km: float = 20.0
    k: int = 10
    block_size: int = DEFAULT_BLOCK_SIZE
    #: the temporal-window workload keeps this central share of the
    #: corpus's tweet-timestamp range
    window_fraction: float = 0.2
    #: alternating disabled/enabled rounds for the telemetry-overhead
    #: measurement (0 skips the section entirely)
    overhead_rounds: int = 3
    #: the acceptance budget the overhead is asserted against
    overhead_budget: float = 1.05

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_users": self.num_users,
            "num_root_tweets": self.num_root_tweets,
            "seed": self.seed,
            "queries_per_workload": self.queries_per_workload,
            "radius_km": self.radius_km,
            "k": self.k,
            "block_size": self.block_size,
            "window_fraction": self.window_fraction,
            "overhead_rounds": self.overhead_rounds,
            "overhead_budget": self.overhead_budget,
        }


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Exact linear-interpolated quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[high] * fraction)


def _central_window(corpus: SyntheticCorpus, fraction: float) -> TimeWindow:
    """The central ``fraction`` of the corpus's tweet-timestamp range —
    tweet ids are timestamps, so this clips most blocks of every list."""
    sids = sorted(post.sid for post in corpus.posts)
    centre = len(sids) // 2
    half = max(1, int(len(sids) * fraction / 2))
    return TimeWindow(sids[max(0, centre - half)],
                      sids[min(len(sids) - 1, centre + half)])


def _with_window(queries: Sequence[TkLUSQuery],
                 window: TimeWindow) -> List[TkLUSQuery]:
    spec = TemporalSpec(window=window)
    return [replace(query, temporal=spec) for query in queries]


def _build_engine(corpus: SyntheticCorpus, postings_format: str,
                  block_size: int) -> TkLUSEngine:
    config = EngineConfig(index=IndexConfig(
        postings_format=postings_format, block_size=block_size))
    return TkLUSEngine.from_posts(corpus.posts, config=config,
                                  cluster=paper_cluster())


def _run_workload(engine: TkLUSEngine,
                  queries: Sequence[TkLUSQuery]) -> Dict[str, object]:
    """Run every query through the max-score path against a cold cache,
    returning latency quantiles, decode-work deltas, and the rankings
    (for cross-format parity).

    Latency and decode-work metrics come from the cold pass — that is
    the regression being guarded.  Block-cache hit/miss accounting comes
    from a *warm* second pass over the same queries: the cold pass
    starts from deliberately cleared caches, so its hit rate is 0 by
    construction (every first touch of a block misses) and says nothing
    about steady-state cache behaviour.
    """
    engine.index.clear_caches()
    engine.threads.clear_cache()
    before = engine.index.stats.snapshot()
    latencies_ms: List[float] = []
    rankings: List[List[object]] = []
    for query in queries:
        started = time.perf_counter()
        result = engine.search_max(query)
        latencies_ms.append((time.perf_counter() - started) * 1000.0)
        rankings.append([[uid, round(score, 9)]
                        for uid, score in result.users])
    delta = engine.index.stats.diff(before)
    warm_before = engine.index.stats.snapshot()
    for query in queries:
        engine.search_max(query)
    warm_delta = engine.index.stats.diff(warm_before)
    latencies_ms.sort()
    hits = warm_delta["block_cache_hits"]
    misses = warm_delta["block_cache_misses"]
    metrics: Dict[str, object] = {
        "latency_ms": {
            "p50": round(_quantile(latencies_ms, 0.50), 3),
            "p95": round(_quantile(latencies_ms, 0.95), 3),
            "mean": round(sum(latencies_ms) / len(latencies_ms), 3),
        },
        "postings_bytes_decoded": delta["bytes_decoded"],
        "blocks_decoded": delta["blocks_decoded"],
        "blocks_skipped": delta["blocks_skipped"],
        "block_cache_hits": hits,
        "block_cache_misses": misses,
        "block_cache_hit_rate": (round(hits / (hits + misses), 4)
                                 if hits + misses else 0.0),
        "index_bytes_read": delta["bytes_read"],
        "postings_entries_read": delta["postings_entries_read"],
    }
    return {"metrics": metrics, "rankings": rankings}


def measure_telemetry_overhead(engine: TkLUSEngine,
                               queries: Sequence[TkLUSQuery],
                               rounds: int = 3,
                               budget: float = 1.05,
                               runtime_config: Optional[
                                   "obs.RuntimeConfig"] = None
                               ) -> Dict[str, object]:
    """Measure the steady-state cost of leaving runtime telemetry on.

    Runs the workload warm (one untimed warmup, no cache clearing — cold
    I/O would mask tracer cost), then alternates telemetry-disabled and
    telemetry-enabled rounds and compares the *minimum* total per mode
    (min-of-rounds discards scheduler noise, the standard microbench
    discipline).  The enabled mode is the default continuous
    configuration — span building on, sampled retention — i.e. exactly
    what a production deployment would pay.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1: {rounds}")
    if runtime_config is None:
        runtime_config = obs.RuntimeConfig()

    def timed_total() -> float:
        started = time.perf_counter()
        for query in queries:
            engine.search_max(query)
        return time.perf_counter() - started

    for query in queries:  # warmup: populate caches, JIT-warm dicts
        engine.search_max(query)

    off_totals: List[float] = []
    on_totals: List[float] = []
    was_enabled = obs.is_enabled()
    obs.disable()
    try:
        for _ in range(rounds):
            off_totals.append(timed_total())
            obs.enable_runtime(runtime_config)
            try:
                on_totals.append(timed_total())
            finally:
                obs.disable_runtime()
    finally:
        if was_enabled:
            # The caller's collectors are gone; re-activating fresh ones
            # is the best restoration available here.
            obs.enable()
    off_seconds = min(off_totals)
    on_seconds = min(on_totals)
    ratio = on_seconds / off_seconds if off_seconds > 0 else 1.0
    return {
        "rounds": rounds,
        "queries": len(queries),
        "span_mode": runtime_config.span_mode,
        "sample_rate": runtime_config.sample_rate,
        "disabled_seconds": round(off_seconds, 6),
        "enabled_seconds": round(on_seconds, 6),
        "overhead_ratio": round(ratio, 4),
        "budget_ratio": budget,
        "within_budget": ratio <= budget,
    }


def run_bench(config: Optional[BenchConfig] = None) -> Dict[str, object]:
    """Build flat and block engines over one seeded corpus and measure
    every workload against both.  Returns the report payload."""
    if config is None:
        config = BenchConfig()
    corpus = generate_corpus(num_users=config.num_users,
                             num_root_tweets=config.num_root_tweets,
                             seed=config.seed)
    workload = QueryWorkload(corpus, seed=config.seed)
    limit = config.queries_per_workload
    single = workload.make_queries(1, config.radius_km, k=config.k,
                                   limit=limit)
    multi = workload.make_queries(3, config.radius_km, k=config.k,
                                  semantics=Semantics.OR, limit=limit)
    window = _central_window(corpus, config.window_fraction)
    workloads = [
        ("fig8_single", single),
        ("fig8_single_windowed", _with_window(single, window)),
        ("fig10_multi", multi),
    ]

    engines = {fmt: _build_engine(corpus, fmt, config.block_size)
               for fmt in FORMATS}

    report_workloads: List[Dict[str, object]] = []
    for name, queries in workloads:
        runs = {fmt: _run_workload(engines[fmt], queries)
                for fmt in FORMATS}
        flat_bytes = runs["flat"]["metrics"]["postings_bytes_decoded"]
        block_bytes = runs["block"]["metrics"]["postings_bytes_decoded"]
        reduction: Optional[float] = None
        if block_bytes:
            reduction = round(flat_bytes / block_bytes, 3)
        report_workloads.append({
            "name": name,
            "queries": len(queries),
            "temporal_window": name.endswith("windowed"),
            "formats": {fmt: runs[fmt]["metrics"] for fmt in FORMATS},
            "decoded_bytes_reduction": reduction,
            "results_identical": (
                runs["flat"]["rankings"] == runs["block"]["rankings"]),
        })

    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        # The seed is promoted to top level (as well as living in
        # config): it is the one knob that makes a run reproducible
        # across machines, so consumers must not have to know the
        # config layout to find it.
        "seed": config.seed,
        "config": config.as_dict(),
        "window": {"start": window.start, "end": window.end},
        "workloads": report_workloads,
    }
    if config.overhead_rounds > 0:
        payload["telemetry_overhead"] = measure_telemetry_overhead(
            engines["block"], single, rounds=config.overhead_rounds,
            budget=config.overhead_budget)
    return payload


def validate_bench_report(payload: object) -> List[str]:
    """Schema check for a bench report; returns human-readable problems
    (empty when valid).  Pure python — CI runs this against the
    committed ``BENCH_query.json`` and against fresh smoke output."""
    problems: List[str] = []

    def note(message: str) -> None:
        problems.append(message)

    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        note(f"schema_version must be {SCHEMA_VERSION}, "
             f"got {payload.get('schema_version')!r}")
    seed = payload.get("seed")
    if not isinstance(seed, int) or isinstance(seed, bool):
        note("seed must be an integer (the workload-generation seed)")
    config_obj = payload.get("config")
    if not isinstance(config_obj, dict):
        note("config must be an object")
    elif isinstance(seed, int) and config_obj.get("seed") != seed:
        note(f"top-level seed {seed!r} disagrees with "
             f"config.seed {config_obj.get('seed')!r}")
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        return problems + ["workloads must be a non-empty array"]
    for position, workload in enumerate(workloads):
        where = f"workloads[{position}]"
        if not isinstance(workload, dict):
            note(f"{where} must be an object")
            continue
        name = workload.get("name")
        if not isinstance(name, str) or not name:
            note(f"{where}.name must be a non-empty string")
        if not (isinstance(workload.get("queries"), int)
                and workload["queries"] > 0):
            note(f"{where}.queries must be a positive integer")
        if not isinstance(workload.get("results_identical"), bool):
            note(f"{where}.results_identical must be a boolean")
        reduction = workload.get("decoded_bytes_reduction")
        if reduction is not None and not (
                isinstance(reduction, (int, float)) and reduction >= 0):
            note(f"{where}.decoded_bytes_reduction must be null or a "
                 f"non-negative number")
        formats = workload.get("formats")
        if not isinstance(formats, dict):
            note(f"{where}.formats must be an object")
            continue
        for fmt in FORMATS:
            metrics = formats.get(fmt)
            at = f"{where}.formats.{fmt}"
            if not isinstance(metrics, dict):
                note(f"{at} missing")
                continue
            latency = metrics.get("latency_ms")
            if not isinstance(latency, dict):
                note(f"{at}.latency_ms must be an object")
            else:
                for key in ("p50", "p95", "mean"):
                    value = latency.get(key)
                    if not (isinstance(value, (int, float)) and value >= 0):
                        note(f"{at}.latency_ms.{key} must be a "
                             f"non-negative number")
            for key in METRIC_KEYS:
                value = metrics.get(key)
                if not (isinstance(value, int) and value >= 0
                        and not isinstance(value, bool)):
                    note(f"{at}.{key} must be a non-negative integer")
            rate = metrics.get("block_cache_hit_rate")
            if not (isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0):
                note(f"{at}.block_cache_hit_rate must be in [0, 1]")
    overhead = payload.get("telemetry_overhead")
    if overhead is not None:
        if not isinstance(overhead, dict):
            note("telemetry_overhead must be an object")
        else:
            for key in ("disabled_seconds", "enabled_seconds",
                        "overhead_ratio", "budget_ratio"):
                value = overhead.get(key)
                if not (isinstance(value, (int, float)) and value > 0
                        and not isinstance(value, bool)):
                    note(f"telemetry_overhead.{key} must be a positive "
                         f"number")
            for key in ("rounds", "queries"):
                value = overhead.get(key)
                if not (isinstance(value, int) and value > 0
                        and not isinstance(value, bool)):
                    note(f"telemetry_overhead.{key} must be a positive "
                         f"integer")
            if not isinstance(overhead.get("within_budget"), bool):
                note("telemetry_overhead.within_budget must be a boolean")
    return problems


def render_summary(payload: Dict[str, object]) -> str:
    """One line per workload/format for terminal output."""
    lines: List[str] = []
    for workload in payload["workloads"]:  # type: ignore[index]
        reduction = workload["decoded_bytes_reduction"]
        parity = "ok" if workload["results_identical"] else "MISMATCH"
        lines.append(f"{workload['name']} ({workload['queries']} queries, "
                     f"parity {parity}, decode reduction "
                     f"{reduction if reduction is not None else 'n/a'}x)")
        for fmt, metrics in workload["formats"].items():
            latency = metrics["latency_ms"]
            lines.append(
                f"  {fmt:<5} p50={latency['p50']:.2f}ms "
                f"p95={latency['p95']:.2f}ms "
                f"decoded={metrics['postings_bytes_decoded']}B "
                f"skipped={metrics['blocks_skipped']} blocks "
                f"cache_hit_rate={metrics['block_cache_hit_rate']:.0%}")
    overhead = payload.get("telemetry_overhead")
    if isinstance(overhead, dict):
        verdict = "ok" if overhead["within_budget"] else "OVER BUDGET"
        lines.append(
            f"telemetry overhead {overhead['overhead_ratio']:.3f}x "
            f"(budget {overhead['budget_ratio']:g}x, {verdict}; "
            f"span_mode={overhead['span_mode']}, "
            f"{overhead['rounds']} rounds x {overhead['queries']} queries)")
    return "\n".join(lines)


def write_report(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
