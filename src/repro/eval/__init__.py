"""Evaluation harness reproducing Section VI: the variant Kendall tau,
timing helpers, the simulated user study, and one experiment function
per table/figure."""

from .experiments import (
    ExperimentContext,
    GEOHASH_LENGTHS,
    LARGE_RADII,
    MULTI_RADII,
    SMALL_RADII,
    fig5_index_construction_time,
    fig6_index_size,
    fig7_geohash_length,
    fig8_single_keyword,
    fig9_kendall_single,
    fig10_multi_keyword,
    fig11_kendall_multi,
    fig12_specific_bounds,
    fig13_user_study,
    table2_keyword_frequencies,
    table4_geohash_lengths,
)
from .kendall import average_tau, kendall_tau, kendall_tau_classic, padded_ranks
from .plots import bar_chart, line_chart, series_from_rows
from .report import format_table, print_table
from .timing import Stopwatch, TimingResult, time_callable
from .userstudy import SimulatedUserStudy, StudyConfig

__all__ = [
    "ExperimentContext",
    "GEOHASH_LENGTHS",
    "LARGE_RADII",
    "MULTI_RADII",
    "SMALL_RADII",
    "SimulatedUserStudy",
    "Stopwatch",
    "StudyConfig",
    "TimingResult",
    "average_tau",
    "bar_chart",
    "fig5_index_construction_time",
    "fig6_index_size",
    "fig7_geohash_length",
    "fig8_single_keyword",
    "fig9_kendall_single",
    "fig10_multi_keyword",
    "fig11_kendall_multi",
    "fig12_specific_bounds",
    "fig13_user_study",
    "format_table",
    "kendall_tau",
    "line_chart",
    "kendall_tau_classic",
    "padded_ranks",
    "print_table",
    "series_from_rows",
    "table2_keyword_frequencies",
    "table4_geohash_lengths",
    "time_callable",
]
