"""Mixed ingest+query bench: query latency while appends land.

The batch bench (:mod:`repro.eval.bench`) measures a frozen index; this
harness measures the workload the real-time subsystem exists for —
queries answered *while* single-post appends stream into the WAL and
memtable, with flushes carving generations mid-run.  The phases:

1. **preload** — a seeded fraction of the corpus is appended and
   flushed, so queries start against generations + a warm memtable;
2. **mixed** — the remaining posts are interleaved with the query
   workload (``appends_per_query`` appends, then one max-score query),
   collecting per-query latencies;
3. **recovery** — the service is closed and reopened, timing the WAL
   replay and verifying the recovered post count, so every committed
   report also witnesses recovery working;
4. **compaction long-run** — a write-heavy stream (small flushes, so
   generations pile up) is ingested twice on identical data, once with
   background compaction disabled and once enabled, then the same
   query set runs against both.  The report records the mean
   generations-probed-per-query read amplification of each side, the
   reduction ratio (the headline: compaction must at least halve read
   amplification), and whether the two sides' rankings are
   byte-identical (same uids, bit-equal scores — compaction must never
   change an answer).

The report carries query-latency quantiles (p50/p95/p99), ingest
metrics (appends/s, fsyncs, flush count, replayed records), the
compaction comparison and the workload seed;
``validate_ingest_bench_report`` is the schema gate CI runs against
the committed ``BENCH_ingest.json`` and fresh smoke output.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import obs
from ..compaction import CompactionConfig
from ..core.model import Semantics
from ..data.generator import generate_corpus
from ..data.queries import QueryWorkload
from ..ingest import IngestConfig, IngestService
from .bench import _quantile

SCHEMA_VERSION = 2

#: Ingest-side metric keys every report must carry.
INGEST_METRIC_KEYS = (
    "appends",
    "fsyncs",
    "rotations",
    "flushes",
    "generations",
    "memtable_posts",
    "memtable_bytes",
    "replayed_records",
)


@dataclass
class IngestBenchConfig:
    """Knobs for one mixed run; defaults match the committed
    ``BENCH_ingest.json``."""

    num_users: int = 300
    num_root_tweets: int = 1500
    seed: int = 42
    preload_fraction: float = 0.5
    queries: int = 24
    appends_per_query: int = 8
    flush_posts: int = 400
    sync_every: int = 1
    radius_km: float = 20.0
    k: int = 10
    keywords_per_query: int = 2
    #: run with the continuous telemetry runtime installed, attaching
    #: its status and the service health verdict to the report
    telemetry: bool = False
    #: compaction long-run phase: posts in the write-heavy stream
    #: (capped at the corpus size), the deliberately small flush
    #: threshold that piles up generations, and the queries measured
    #: against each side of the enabled/disabled pair
    compaction_posts: int = 1000
    compaction_flush_posts: int = 100
    compaction_queries: int = 12

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_users": self.num_users,
            "num_root_tweets": self.num_root_tweets,
            "seed": self.seed,
            "preload_fraction": self.preload_fraction,
            "queries": self.queries,
            "appends_per_query": self.appends_per_query,
            "flush_posts": self.flush_posts,
            "sync_every": self.sync_every,
            "radius_km": self.radius_km,
            "k": self.k,
            "keywords_per_query": self.keywords_per_query,
            "telemetry": self.telemetry,
            "compaction_posts": self.compaction_posts,
            "compaction_flush_posts": self.compaction_flush_posts,
            "compaction_queries": self.compaction_queries,
        }


def _run_compaction_longrun(directory: str, config: IngestBenchConfig,
                            posts, queries) -> Dict[str, object]:
    """Phase 4: ingest the same write-heavy stream twice — background
    compaction off, then on — and query both.

    The small ``compaction_flush_posts`` threshold piles up many tier-0
    generations; the disabled side must probe every one of them on each
    postings lookup, the enabled side reads the merged tiers.  Returns
    the per-side read-amplification summary plus the two headline
    verdicts: ``read_amp_reduction`` (disabled mean ÷ enabled mean,
    target ≥ 2x) and ``results_identical`` (same uids, bit-equal
    scores on every query — compaction must never change an answer).
    """
    stream = list(posts[:config.compaction_posts])
    sides: Dict[str, Dict[str, object]] = {}
    rankings: Dict[str, List[object]] = {}
    for label, enabled in (("disabled", False), ("enabled", True)):
        service = IngestService(
            os.path.join(directory, "compaction-longrun", label),
            ingest_config=IngestConfig(
                flush_posts=config.compaction_flush_posts,
                sync_every=config.sync_every),
            compaction_config=CompactionConfig(enabled=enabled))
        for post in stream:
            service.append(post)
        engine = service.build_query_engine()
        probed: List[int] = []
        answers: List[object] = []
        for query in queries:
            result = engine.search_max(query)
            probed.append(result.profile.generations_probed
                          if result.profile is not None else 0)
            answers.append(result.users)
        status = service.status()
        sides[label] = {
            "generations": len(status["generations"]),
            "tiers": {tier: info["generations"]
                      for tier, info in service.tier_breakdown().items()},
            "compactions": service.compaction.stats.compactions_committed,
            "mean_generations_probed":
                round(sum(probed) / len(probed), 3) if probed else 0.0,
        }
        rankings[label] = answers
        service.close()

    disabled_mean = sides["disabled"]["mean_generations_probed"]
    enabled_mean = sides["enabled"]["mean_generations_probed"]
    reduction = (round(disabled_mean / enabled_mean, 3)
                 if enabled_mean else 0.0)
    identical = rankings["disabled"] == rankings["enabled"]
    return {
        "posts": len(stream),
        "queries": len(queries),
        "disabled": sides["disabled"],
        "enabled": sides["enabled"],
        "read_amp_reduction": reduction,
        "results_identical": identical,
        "meets_target": bool(identical and reduction >= 2.0),
    }


def run_ingest_bench(directory: str,
                     config: Optional[IngestBenchConfig] = None
                     ) -> Dict[str, object]:
    """Run the four phases against ``directory`` (which must be empty
    or absent) and return the report payload."""
    if config is None:
        config = IngestBenchConfig()
    corpus = generate_corpus(num_users=config.num_users,
                             num_root_tweets=config.num_root_tweets,
                             seed=config.seed)
    posts = corpus.posts
    workload = QueryWorkload(corpus, seed=config.seed)
    queries = workload.make_queries(config.keywords_per_query,
                                    config.radius_km, k=config.k,
                                    semantics=Semantics.OR,
                                    limit=config.queries)

    runtime = obs.enable_runtime() if config.telemetry else None

    service = IngestService(
        directory,
        ingest_config=IngestConfig(flush_posts=config.flush_posts,
                                   sync_every=config.sync_every))

    # Phase 1: preload + flush, so the mixed phase reads generations
    # and a memtable, not an empty directory.
    preload = int(len(posts) * config.preload_fraction)
    preload_started = time.perf_counter()
    for post in posts[:preload]:
        service.append(post)
    service.flush()
    preload_seconds = time.perf_counter() - preload_started

    engine = service.build_query_engine()

    # Phase 2: interleave appends with queries.
    stream = iter(posts[preload:])
    exhausted = False
    mixed_appends = 0
    latencies_ms: List[float] = []
    mixed_started = time.perf_counter()
    for query in queries:
        for _ in range(config.appends_per_query):
            post = next(stream, None)
            if post is None:
                exhausted = True
                break
            service.append(post)
            mixed_appends += 1
        started = time.perf_counter()
        engine.search_max(query)
        latencies_ms.append((time.perf_counter() - started) * 1000.0)
    mixed_seconds = time.perf_counter() - mixed_started
    latencies_ms.sort()

    status = service.status()
    total_appends = preload + mixed_appends
    elapsed = preload_seconds + mixed_seconds

    telemetry: Optional[Dict[str, object]] = None
    if runtime is not None:
        telemetry = {
            "status": runtime.status(),
            "health": service.health().as_dict(),
        }
        obs.disable_runtime()

    # Phase 3: close and recover, proving the directory replays.
    service.close()
    recovery_started = time.perf_counter()
    recovered = IngestService(directory)
    recovery_seconds = time.perf_counter() - recovery_started
    recovery = recovered.recovery.as_dict()
    recovered_posts = len(recovered.database)
    recovered.close()

    # Phase 4: the compaction long-run A/B (fresh directories, fresh
    # query set — independent of the phases above).
    compaction_queries = QueryWorkload(corpus, seed=config.seed + 1) \
        .make_queries(config.keywords_per_query, config.radius_km,
                      k=config.k, semantics=Semantics.OR,
                      limit=config.compaction_queries)
    compaction = _run_compaction_longrun(directory, config, posts,
                                         compaction_queries)

    return {
        "schema_version": SCHEMA_VERSION,
        "seed": config.seed,
        "config": config.as_dict(),
        "query_latency_ms": {
            "p50": round(_quantile(latencies_ms, 0.50), 3),
            "p95": round(_quantile(latencies_ms, 0.95), 3),
            "p99": round(_quantile(latencies_ms, 0.99), 3),
            "mean": round(sum(latencies_ms) / len(latencies_ms), 3)
            if latencies_ms else 0.0,
            "queries": len(latencies_ms),
        },
        "ingest": {
            "appends": status["wal"]["appends"],
            "appends_per_second": round(total_appends / elapsed, 1)
            if elapsed > 0 else 0.0,
            "fsyncs": status["wal"]["fsyncs"],
            "rotations": status["wal"]["rotations"],
            "flushes": len(status["generations"]),
            "generations": len(status["generations"]),
            "memtable_posts": status["memtable_posts"],
            "memtable_bytes": status["memtable_bytes"],
            "replayed_records": recovery["records_replayed"],
        },
        "recovery": {
            "seconds": round(recovery_seconds, 3),
            "recovered_posts": recovered_posts,
            "posts_match": recovered_posts == total_appends,
            "generations_loaded": recovery["generations_loaded"],
        },
        "compaction": compaction,
        "stream_exhausted": exhausted,
        **({"telemetry": telemetry} if telemetry is not None else {}),
    }


def validate_ingest_bench_report(payload: object) -> List[str]:
    """Schema gate; returns human-readable problems (empty when valid)."""
    problems: List[str] = []

    def note(message: str) -> None:
        problems.append(message)

    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        note(f"schema_version must be {SCHEMA_VERSION}, "
             f"got {payload.get('schema_version')!r}")
    seed = payload.get("seed")
    if not isinstance(seed, int) or isinstance(seed, bool):
        note("seed must be an integer")
    config = payload.get("config")
    if not isinstance(config, dict):
        note("config must be an object")
    elif isinstance(seed, int) and config.get("seed") != seed:
        note(f"top-level seed {seed!r} disagrees with "
             f"config.seed {config.get('seed')!r}")

    latency = payload.get("query_latency_ms")
    if not isinstance(latency, dict):
        note("query_latency_ms must be an object")
    else:
        for key in ("p50", "p95", "p99", "mean"):
            value = latency.get(key)
            if not (isinstance(value, (int, float)) and value >= 0):
                note(f"query_latency_ms.{key} must be a non-negative number")
        count = latency.get("queries")
        if not (isinstance(count, int) and count > 0):
            note("query_latency_ms.queries must be a positive integer")

    ingest = payload.get("ingest")
    if not isinstance(ingest, dict):
        note("ingest must be an object")
    else:
        for key in INGEST_METRIC_KEYS:
            value = ingest.get(key)
            if not (isinstance(value, int) and value >= 0
                    and not isinstance(value, bool)):
                note(f"ingest.{key} must be a non-negative integer")
        rate = ingest.get("appends_per_second")
        if not (isinstance(rate, (int, float)) and rate >= 0):
            note("ingest.appends_per_second must be a non-negative number")

    recovery = payload.get("recovery")
    if not isinstance(recovery, dict):
        note("recovery must be an object")
    else:
        if recovery.get("posts_match") is not True:
            note("recovery.posts_match must be true — the recovered post "
                 "count disagrees with the appended count")
        for key in ("recovered_posts", "generations_loaded"):
            value = recovery.get(key)
            if not (isinstance(value, int) and value >= 0
                    and not isinstance(value, bool)):
                note(f"recovery.{key} must be a non-negative integer")

    compaction = payload.get("compaction")
    if not isinstance(compaction, dict):
        note("compaction must be an object")
    else:
        for side in ("disabled", "enabled"):
            mode = compaction.get(side)
            if not isinstance(mode, dict):
                note(f"compaction.{side} must be an object")
                continue
            count = mode.get("generations")
            if not (isinstance(count, int) and count >= 0
                    and not isinstance(count, bool)):
                note(f"compaction.{side}.generations must be a "
                     "non-negative integer")
            mean = mode.get("mean_generations_probed")
            if not (isinstance(mean, (int, float)) and mean >= 0):
                note(f"compaction.{side}.mean_generations_probed must be "
                     "a non-negative number")
        reduction = compaction.get("read_amp_reduction")
        if not (isinstance(reduction, (int, float)) and reduction >= 0):
            note("compaction.read_amp_reduction must be a non-negative "
                 "number")
        if compaction.get("results_identical") is not True:
            note("compaction.results_identical must be true — compaction "
                 "changed a query answer")
        if not isinstance(compaction.get("meets_target"), bool):
            note("compaction.meets_target must be a boolean")

    telemetry = payload.get("telemetry")
    if telemetry is not None:
        if not isinstance(telemetry, dict):
            note("telemetry must be an object when present")
        else:
            if not isinstance(telemetry.get("status"), dict):
                note("telemetry.status must be an object")
            health = telemetry.get("health")
            if not isinstance(health, dict):
                note("telemetry.health must be an object")
            elif health.get("verdict") not in ("ok", "degraded", "critical"):
                note("telemetry.health.verdict must be "
                     "ok/degraded/critical")
    return problems


def render_ingest_summary(payload: Dict[str, object]) -> str:
    """Terminal summary of one mixed run."""
    latency = payload["query_latency_ms"]
    ingest = payload["ingest"]
    recovery = payload["recovery"]
    compaction = payload["compaction"]
    return "\n".join([
        f"mixed workload: {latency['queries']} queries over "  # type: ignore[index]
        f"{ingest['appends']} appends",  # type: ignore[index]
        f"  query latency p50={latency['p50']:.2f}ms "  # type: ignore[index]
        f"p95={latency['p95']:.2f}ms "  # type: ignore[index]
        f"p99={latency['p99']:.2f}ms",  # type: ignore[index]
        f"  ingest {ingest['appends_per_second']}/s, "  # type: ignore[index]
        f"{ingest['fsyncs']} fsyncs, "  # type: ignore[index]
        f"{ingest['flushes']} flushes, "  # type: ignore[index]
        f"memtable {ingest['memtable_posts']} posts",  # type: ignore[index]
        f"  recovery replayed {ingest['replayed_records']} records "  # type: ignore[index]
        f"in {recovery['seconds']}s "  # type: ignore[index]
        f"({'ok' if recovery['posts_match'] else 'MISMATCH'})",  # type: ignore[index]
        f"  compaction read amp "
        f"{compaction['disabled']['mean_generations_probed']}"  # type: ignore[index]
        f" -> {compaction['enabled']['mean_generations_probed']}"  # type: ignore[index]
        f" generations/query ({compaction['read_amp_reduction']}x, "  # type: ignore[index]
        f"{'identical' if compaction['results_identical'] else 'DIVERGED'})",  # type: ignore[index]
    ])


def write_ingest_report(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
