"""Serving bench: traffic generation against the ``repro.serve`` pool.

Where the ingest bench interleaves appends and *sequential* queries,
this harness measures the workload the serving subsystem exists for —
concurrent clients with deadlines, overload, and a result cache that
must never change an answer.  The phases:

1. **scaling** — a closed loop (back-to-back clients) at each worker
   count, result cache off, measuring peak sustainable throughput and
   in-service latency per pool size (≥4 runs — the GIL bounds how far
   pure-python workers scale; the committed report records the real
   shape rather than an assumed one);
2. **overload** — an open loop offering a multiple of the measured peak
   rate, once with admission-control shedding on and once off.  The
   shed-on arm rejects the excess at the door and keeps tail latency
   near the queue-delay budget; the shed-off arm queues everything and
   the tail grows with the backlog.  The report records both tails and
   their ratio — the quantitative case for admission control;
3. **bursty** — the open loop again with a square-wave arrival rate
   (same average), exercising the fast/normal priority lanes;
4. **mixed ingest+query** — closed-loop clients with the cache enabled
   while a background thread appends posts; every append moves the
   version token, so this phase measures the hit rate the cache earns
   *between* invalidations, not a frozen-index fantasy;
5. **cache identity** — the headline gate: at several watermarks
   (appends landing between rounds), every query is answered three
   ways — fresh uncached execution, a cache-populating serve, and a
   cache-hit serve — and all three rankings must match exactly (same
   uids, bit-equal scores).  ``cached_results_identical`` in the
   report is the perf contract's MUST_BE_TRUE headline.

``validate_serve_bench_report`` is the schema gate CI runs against the
committed ``BENCH_serve.json`` and fresh smoke output.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.model import Semantics
from ..data.generator import generate_corpus
from ..data.queries import QueryWorkload
from ..ingest import IngestConfig, IngestService
from ..serve import (AdmissionConfig, QueryServer, ServeConfig,
                     run_closed_loop, run_open_loop)

SCHEMA_VERSION = 1

#: latency quantile keys every latency_ms object must carry
LATENCY_KEYS = ("p50", "p95", "p99", "p999")


@dataclass
class ServeBenchConfig:
    """Knobs for one serving bench; defaults match the committed
    ``BENCH_serve.json``."""

    num_users: int = 300
    num_root_tweets: int = 1500
    seed: int = 42
    preload_fraction: float = 0.6
    flush_posts: int = 400
    sync_every: int = 1
    radius_km: float = 20.0
    k: int = 10
    keywords_per_query: int = 2
    query_pool: int = 32
    #: scaling phase — one closed-loop run per worker count
    worker_counts: Sequence[int] = (1, 2, 4, 8)
    closed_clients: int = 8
    closed_duration_seconds: float = 2.0
    #: overload phase — offered rate is peak * multiplier (capped)
    overload_multiplier: float = 3.0
    overload_rate_cap_qps: float = 2000.0
    overload_duration_seconds: float = 2.5
    overload_queue_depth: int = 32
    overload_delay_budget_ms: float = 250.0
    #: bursty phase
    burst_factor: float = 1.8
    burst_period_seconds: float = 1.0
    #: mixed phase
    mixed_duration_seconds: float = 2.5
    mixed_appends_per_second: float = 50.0
    mixed_workers: int = 4
    #: identity phase
    identity_rounds: int = 3
    identity_queries: int = 6
    identity_appends_per_round: int = 25

    @classmethod
    def smoke(cls) -> "ServeBenchConfig":
        """The fast CI path: same phase structure (still ≥4 scaling
        runs), tiny durations and corpus."""
        return cls(num_users=80, num_root_tweets=400,
                   closed_duration_seconds=0.4,
                   overload_duration_seconds=0.6,
                   mixed_duration_seconds=0.6,
                   closed_clients=4,
                   query_pool=12,
                   identity_rounds=2, identity_queries=4,
                   identity_appends_per_round=10)

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_users": self.num_users,
            "num_root_tweets": self.num_root_tweets,
            "seed": self.seed,
            "preload_fraction": self.preload_fraction,
            "flush_posts": self.flush_posts,
            "sync_every": self.sync_every,
            "radius_km": self.radius_km,
            "k": self.k,
            "keywords_per_query": self.keywords_per_query,
            "query_pool": self.query_pool,
            "worker_counts": list(self.worker_counts),
            "closed_clients": self.closed_clients,
            "closed_duration_seconds": self.closed_duration_seconds,
            "overload_multiplier": self.overload_multiplier,
            "overload_rate_cap_qps": self.overload_rate_cap_qps,
            "overload_duration_seconds": self.overload_duration_seconds,
            "overload_queue_depth": self.overload_queue_depth,
            "overload_delay_budget_ms": self.overload_delay_budget_ms,
            "burst_factor": self.burst_factor,
            "burst_period_seconds": self.burst_period_seconds,
            "mixed_duration_seconds": self.mixed_duration_seconds,
            "mixed_appends_per_second": self.mixed_appends_per_second,
            "mixed_workers": self.mixed_workers,
            "identity_rounds": self.identity_rounds,
            "identity_queries": self.identity_queries,
            "identity_appends_per_round": self.identity_appends_per_round,
        }


def _run_summary(result: Any, **extra: object) -> Dict[str, object]:
    payload = result.as_dict()
    payload.update(extra)
    return payload


def _run_scaling(engine: Any, make_query: Callable[[int], Any],
                 config: ServeBenchConfig) -> Dict[str, object]:
    runs: List[Dict[str, object]] = []
    for workers in config.worker_counts:
        server = QueryServer(engine, config=ServeConfig(
            workers=workers, cache_enabled=False,
            default_timeout_seconds=None))
        with server:
            result = run_closed_loop(
                server, make_query, clients=config.closed_clients,
                duration_seconds=config.closed_duration_seconds)
            stats = server.stats()
        runs.append(_run_summary(
            result, workers=workers, clients=config.closed_clients,
            worker_utilization=round(stats["worker_utilization"], 4)))
    peak = max(runs, key=lambda run: run["throughput_qps"])
    return {
        "cache": "off",
        "runs": runs,
        "peak_qps": round(float(peak["throughput_qps"]), 3),
        "peak_workers": peak["workers"],
    }


def _run_overload(engine: Any, make_query: Callable[[int], Any],
                  config: ServeBenchConfig, peak_qps: float
                  ) -> Dict[str, object]:
    offered = min(config.overload_rate_cap_qps,
                  max(20.0, peak_qps * config.overload_multiplier))
    # Deadlines are set far beyond the drain time so the shed-off arm
    # reports its true (unbounded) tail instead of a wall of timeouts.
    timeout = config.overload_duration_seconds * 10.0 + 5.0
    arms: Dict[str, Dict[str, object]] = {}
    for label, shedding in (("shedding_on", True), ("shedding_off", False)):
        server = QueryServer(engine, config=ServeConfig(
            workers=config.mixed_workers, cache_enabled=False,
            default_timeout_seconds=timeout,
            admission=AdmissionConfig(
                max_queue_depth=config.overload_queue_depth,
                queue_delay_budget_ms=config.overload_delay_budget_ms,
                shedding=shedding)))
        with server:
            result = run_open_loop(
                server, make_query, rate_qps=offered,
                duration_seconds=config.overload_duration_seconds)
        arms[label] = _run_summary(result, shedding=shedding)
    p99_on = arms["shedding_on"]["latency_ms"]["p99"]  # type: ignore[index]
    p99_off = arms["shedding_off"]["latency_ms"]["p99"]  # type: ignore[index]
    return {
        "offered_qps": round(offered, 3),
        "duration_seconds": config.overload_duration_seconds,
        "shedding_on": arms["shedding_on"],
        "shedding_off": arms["shedding_off"],
        "tail_amplification_off_vs_on":
            round(p99_off / p99_on, 3) if p99_on else 0.0,
        # The reason admission control exists: under the same overload,
        # shedding keeps the p99 of *served* queries below the arm that
        # queues everything.
        "shed_tail_bounded": bool(p99_on <= p99_off),
    }


def _run_bursty(engine: Any, make_query: Callable[[int], Any],
                config: ServeBenchConfig, peak_qps: float
                ) -> Dict[str, object]:
    rate = min(config.overload_rate_cap_qps, max(10.0, peak_qps * 0.8))
    server = QueryServer(engine, config=ServeConfig(
        workers=config.mixed_workers, cache_enabled=False,
        default_timeout_seconds=config.overload_duration_seconds * 10.0 + 5.0,
        admission=AdmissionConfig(
            max_queue_depth=config.overload_queue_depth,
            queue_delay_budget_ms=config.overload_delay_budget_ms)))
    with server:
        result = run_open_loop(
            server, make_query, rate_qps=rate,
            duration_seconds=config.overload_duration_seconds,
            burst_factor=config.burst_factor,
            burst_period_seconds=config.burst_period_seconds)
        queue_stats = server.queue.stats()
    return _run_summary(
        result, rate_qps=round(rate, 3), burst_factor=config.burst_factor,
        fast_lane_offered=queue_stats["offered"])


def _run_mixed(service: IngestService, engine: Any,
               make_query: Callable[[int], Any], posts: List[Any],
               config: ServeBenchConfig) -> Dict[str, object]:
    server = QueryServer(engine, live=service.live, config=ServeConfig(
        workers=config.mixed_workers, cache_enabled=True))
    appended = 0
    stop = threading.Event()

    def ingest_loop() -> None:
        nonlocal appended
        interval = 1.0 / config.mixed_appends_per_second
        for post in posts:
            if stop.is_set():
                break
            service.append(post)
            appended += 1
            time.sleep(interval)

    ingester = threading.Thread(target=ingest_loop, name="serve-bench-ingest",
                                daemon=True)
    with server:
        ingester.start()
        result = run_closed_loop(
            server, make_query, clients=config.closed_clients,
            duration_seconds=config.mixed_duration_seconds)
        stop.set()
        ingester.join()
        cache_stats = server.cache.stats() if server.cache else {}
    return _run_summary(result, appends=appended,
                        ingest_rate_target=config.mixed_appends_per_second,
                        cache=cache_stats)


def _run_cache_identity(service: IngestService, engine: Any,
                        queries: List[Any], posts: List[Any],
                        config: ServeBenchConfig) -> Dict[str, object]:
    """Phase 5: three-way answer comparison at several watermarks.

    Quiesced (no concurrent ingest): at each round's watermark, for each
    query, ``fresh`` (direct uncached engine search over the live view),
    ``populate`` (serve-path execution against a pinned snapshot, which
    also stores into the cache) and ``hit`` (the cached entry) must be
    exactly equal — same uids, bit-equal float scores.
    """
    server = QueryServer(engine, live=service.live, config=ServeConfig(
        workers=2, cache_enabled=True))
    checks = 0
    mismatches: List[Dict[str, object]] = []
    hits_before = 0
    stream = iter(posts)
    with server:
        for round_index in range(config.identity_rounds):
            for query in queries[:config.identity_queries]:
                fresh = engine.search(query, "max").users
                populate = server.execute(query, "max")
                hit = server.execute(query, "max")
                checks += 1
                if not (fresh == populate == hit):
                    mismatches.append({
                        "round": round_index,
                        "watermark": list(service.live.version_token()),
                        "fresh": fresh[:3],
                        "populate": populate[:3],
                        "hit": hit[:3],
                    })
            for _ in range(config.identity_appends_per_round):
                post = next(stream, None)
                if post is None:
                    break
                service.append(post)
        cache_stats = server.cache.stats() if server.cache else {}
        hits_before = int(cache_stats.get("hits", 0))
    return {
        "rounds": config.identity_rounds,
        "checks": checks,
        "hits_observed": hits_before,
        "identical": not mismatches,
        "mismatches": mismatches,
    }


def run_serve_bench(directory: str,
                    config: Optional[ServeBenchConfig] = None
                    ) -> Dict[str, object]:
    """Run the five phases against ``directory`` (which must be empty or
    absent) and return the report payload."""
    if config is None:
        config = ServeBenchConfig()
    corpus = generate_corpus(num_users=config.num_users,
                             num_root_tweets=config.num_root_tweets,
                             seed=config.seed)
    posts = corpus.posts
    workload = QueryWorkload(corpus, seed=config.seed)
    queries = workload.make_queries(config.keywords_per_query,
                                    config.radius_km, k=config.k,
                                    semantics=Semantics.OR,
                                    limit=config.query_pool)

    def make_query(sequence: int) -> Any:
        return queries[sequence % len(queries)]

    service = IngestService(
        directory,
        ingest_config=IngestConfig(flush_posts=config.flush_posts,
                                   sync_every=config.sync_every))
    preload = int(len(posts) * config.preload_fraction)
    for post in posts[:preload]:
        service.append(post)
    service.flush()
    engine = service.build_query_engine()

    scaling = _run_scaling(engine, make_query, config)
    peak_qps = float(scaling["peak_qps"])
    overload = _run_overload(engine, make_query, config, peak_qps)
    bursty = _run_bursty(engine, make_query, config, peak_qps)

    remaining = list(posts[preload:])
    mixed_budget = remaining[:max(0, len(remaining)
                                  - config.identity_rounds
                                  * config.identity_appends_per_round)]
    identity_budget = remaining[len(mixed_budget):]
    mixed = _run_mixed(service, engine, make_query, mixed_budget, config)
    identity = _run_cache_identity(service, engine, queries, identity_budget,
                                   config)
    service.close()

    return {
        "schema_version": SCHEMA_VERSION,
        "seed": config.seed,
        "config": config.as_dict(),
        "scaling": scaling,
        "overload": overload,
        "bursty": bursty,
        "mixed": mixed,
        "cache_identity": identity,
        "cached_results_identical": bool(identity["identical"]
                                         and identity["checks"] > 0
                                         and identity["hits_observed"] > 0),
    }


def validate_serve_bench_report(payload: object) -> List[str]:
    """Schema gate; returns human-readable problems (empty when valid)."""
    problems: List[str] = []

    def note(message: str) -> None:
        problems.append(message)

    def check_latency(obj: object, where: str) -> None:
        if not isinstance(obj, dict):
            note(f"{where} must be an object")
            return
        for key in LATENCY_KEYS:
            value = obj.get(key)
            if not (isinstance(value, (int, float)) and value >= 0
                    and not isinstance(value, bool)):
                note(f"{where}.{key} must be a non-negative number")

    def check_rate(obj: Dict[str, Any], key: str, where: str,
                   upper: Optional[float] = None) -> None:
        value = obj.get(key)
        if not (isinstance(value, (int, float)) and value >= 0
                and not isinstance(value, bool)):
            note(f"{where}.{key} must be a non-negative number")
        elif upper is not None and value > upper:
            note(f"{where}.{key} must be <= {upper:g}, got {value!r}")

    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        note(f"schema_version must be {SCHEMA_VERSION}, "
             f"got {payload.get('schema_version')!r}")
    seed = payload.get("seed")
    if not isinstance(seed, int) or isinstance(seed, bool):
        note("seed must be an integer")
    if not isinstance(payload.get("config"), dict):
        note("config must be an object")

    scaling = payload.get("scaling")
    if not isinstance(scaling, dict):
        note("scaling must be an object")
    else:
        runs = scaling.get("runs")
        if not isinstance(runs, list) or len(runs) < 4:
            note("scaling.runs must be a list of at least 4 worker-count "
                 "runs")
        else:
            seen_workers = set()
            for index, run in enumerate(runs):
                where = f"scaling.runs[{index}]"
                if not isinstance(run, dict):
                    note(f"{where} must be an object")
                    continue
                workers = run.get("workers")
                if not (isinstance(workers, int) and workers >= 1
                        and not isinstance(workers, bool)):
                    note(f"{where}.workers must be a positive integer")
                else:
                    seen_workers.add(workers)
                check_rate(run, "throughput_qps", where)
                check_latency(run.get("latency_ms"), f"{where}.latency_ms")
            if len(seen_workers) < 4:
                note("scaling.runs must cover at least 4 distinct worker "
                     "counts")
        check_rate(scaling, "peak_qps", "scaling")

    overload = payload.get("overload")
    if not isinstance(overload, dict):
        note("overload must be an object")
    else:
        check_rate(overload, "offered_qps", "overload")
        for arm in ("shedding_on", "shedding_off"):
            entry = overload.get(arm)
            if not isinstance(entry, dict):
                note(f"overload.{arm} must be an object")
                continue
            check_rate(entry, "shed_rate", f"overload.{arm}", upper=1.0)
            check_rate(entry, "throughput_qps", f"overload.{arm}")
            check_latency(entry.get("latency_ms"),
                          f"overload.{arm}.latency_ms")
        if not isinstance(overload.get("shed_tail_bounded"), bool):
            note("overload.shed_tail_bounded must be a boolean")

    bursty = payload.get("bursty")
    if not isinstance(bursty, dict):
        note("bursty must be an object")
    else:
        check_rate(bursty, "throughput_qps", "bursty")
        check_latency(bursty.get("latency_ms"), "bursty.latency_ms")

    mixed = payload.get("mixed")
    if not isinstance(mixed, dict):
        note("mixed must be an object")
    else:
        check_rate(mixed, "throughput_qps", "mixed")
        check_rate(mixed, "cache_hit_rate", "mixed", upper=1.0)
        check_latency(mixed.get("latency_ms"), "mixed.latency_ms")
        appends = mixed.get("appends")
        if not (isinstance(appends, int) and appends >= 0
                and not isinstance(appends, bool)):
            note("mixed.appends must be a non-negative integer")

    identity = payload.get("cache_identity")
    if not isinstance(identity, dict):
        note("cache_identity must be an object")
    else:
        checks = identity.get("checks")
        if not (isinstance(checks, int) and checks > 0):
            note("cache_identity.checks must be a positive integer")
        hits = identity.get("hits_observed")
        if not (isinstance(hits, int) and hits > 0):
            note("cache_identity.hits_observed must be a positive integer — "
                 "the identity phase never exercised a cache hit")
        if identity.get("identical") is not True:
            note("cache_identity.identical must be true — a cached result "
                 "diverged from fresh execution at the same watermark")
    if payload.get("cached_results_identical") is not True:
        note("cached_results_identical must be true")
    return problems


def render_serve_summary(payload: Dict[str, object]) -> str:
    """Terminal summary of one serving bench run."""
    scaling = payload["scaling"]
    overload = payload["overload"]
    mixed = payload["mixed"]
    identity = payload["cache_identity"]
    lines = [
        "serve bench:",
        "  scaling (cache off, closed loop):",
    ]
    for run in scaling["runs"]:  # type: ignore[index]
        lines.append(
            f"    workers={run['workers']:<2} "
            f"{run['throughput_qps']:>8.1f} qps  "
            f"p50={run['latency_ms']['p50']:.2f}ms "
            f"p99={run['latency_ms']['p99']:.2f}ms "
            f"util={run['worker_utilization']:.0%}")
    on = overload["shedding_on"]  # type: ignore[index]
    off = overload["shedding_off"]  # type: ignore[index]
    lines.extend([
        f"  overload at {overload['offered_qps']:.0f} qps offered:",  # type: ignore[index]
        f"    shed on : {on['throughput_qps']:.1f} qps served, "
        f"shed {on['shed_rate']:.0%}, p99={on['latency_ms']['p99']:.1f}ms "
        f"p999={on['latency_ms']['p999']:.1f}ms",
        f"    shed off: {off['throughput_qps']:.1f} qps served, "
        f"shed {off['shed_rate']:.0%}, p99={off['latency_ms']['p99']:.1f}ms "
        f"p999={off['latency_ms']['p999']:.1f}ms",
        f"    tail amplification without shedding: "
        f"{overload['tail_amplification_off_vs_on']}x",  # type: ignore[index]
        f"  mixed ingest+query: {mixed['completed']} queries over "  # type: ignore[index]
        f"{mixed['appends']} appends, "  # type: ignore[index]
        f"cache hit rate {mixed['cache_hit_rate']:.0%}, "  # type: ignore[index]
        f"p95={mixed['latency_ms']['p95']:.2f}ms",  # type: ignore[index]
        f"  cache identity: {identity['checks']} checks over "  # type: ignore[index]
        f"{identity['rounds']} watermarks, "  # type: ignore[index]
        f"{identity['hits_observed']} hits "  # type: ignore[index]
        f"({'identical' if identity['identical'] else 'DIVERGED'})",  # type: ignore[index]
    ])
    return "\n".join(lines)


def write_serve_report(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
