"""The perf contract: committed bench headlines checked against a
committed baseline.

The bench harnesses write ``BENCH_query.json`` / ``BENCH_ingest.json``;
this module distils them into *headline* metrics (each with a
direction and a relative tolerance), persists them as
``benchmarks/baselines/perf_contract.json``, and checks a fresh pair of
reports against that baseline.  CI fails when a headline regresses
beyond its tolerance — the T²K²-style idea of recorded performance as
an enforced contract rather than a graph someone eyeballs.

Both the reports and the baseline are committed from the same machine,
so the comparison is deterministic in CI (no re-measuring latency on
unknown runner hardware); correctness headlines (result parity,
recovery fidelity, telemetry overhead within budget) are additionally
asserted absolutely, baseline or not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

CONTRACT_SCHEMA_VERSION = 1
BASELINE_PATH = "benchmarks/baselines/perf_contract.json"

#: default relative tolerances by headline kind
LATENCY_TOL = 0.25      # wall-clock: noisy even on one machine
THROUGHPUT_TOL = 0.25
RATIO_TOL = 0.10        # deterministic decode/compression ratios
OVERHEAD_TOL = 0.05     # telemetry overhead ratio drift


@dataclass(frozen=True)
class Headline:
    """One contract metric: where it comes from and how it may move."""

    key: str                 # dotted name in the contract file
    source: str              # "query" | "ingest" | "matrix" | "serve"
    extract: Callable[[Dict[str, Any]], Any]
    direction: str           # "higher" | "lower" | "exact"
    rel_tol: float = 0.0     # allowed regression in the bad direction

    def pull(self, payload: Dict[str, Any]) -> Any:
        try:
            return self.extract(payload)
        except (KeyError, IndexError, TypeError):
            return None


def _workload(payload: Dict[str, Any], name: str) -> Dict[str, Any]:
    for workload in payload["workloads"]:
        if workload["name"] == name:
            return workload
    raise KeyError(name)


def _headlines() -> List[Headline]:
    out: List[Headline] = []
    for name in ("fig8_single", "fig8_single_windowed", "fig10_multi"):
        out.append(Headline(
            key=f"query.{name}.results_identical", source="query",
            extract=lambda p, n=name: _workload(p, n)["results_identical"],
            direction="exact"))
        out.append(Headline(
            key=f"query.{name}.decoded_bytes_reduction", source="query",
            extract=lambda p, n=name: _workload(p, n)[
                "decoded_bytes_reduction"],
            direction="higher", rel_tol=RATIO_TOL))
        out.append(Headline(
            key=f"query.{name}.block.latency_p95_ms", source="query",
            extract=lambda p, n=name: _workload(p, n)["formats"]["block"][
                "latency_ms"]["p95"],
            direction="lower", rel_tol=LATENCY_TOL))
    out.append(Headline(
        key="query.telemetry.overhead_ratio", source="query",
        extract=lambda p: p["telemetry_overhead"]["overhead_ratio"],
        direction="lower", rel_tol=OVERHEAD_TOL))
    out.append(Headline(
        key="query.telemetry.within_budget", source="query",
        extract=lambda p: p["telemetry_overhead"]["within_budget"],
        direction="exact"))
    out.append(Headline(
        key="ingest.appends_per_second", source="ingest",
        extract=lambda p: p["ingest"]["appends_per_second"],
        direction="higher", rel_tol=THROUGHPUT_TOL))
    out.append(Headline(
        key="ingest.query_latency_p95_ms", source="ingest",
        extract=lambda p: p["query_latency_ms"]["p95"],
        direction="lower", rel_tol=LATENCY_TOL))
    out.append(Headline(
        key="ingest.recovery_seconds", source="ingest",
        extract=lambda p: p["recovery"]["seconds"],
        direction="lower", rel_tol=LATENCY_TOL))
    out.append(Headline(
        key="ingest.recovery.posts_match", source="ingest",
        extract=lambda p: p["recovery"]["posts_match"],
        direction="exact"))
    out.append(Headline(
        key="ingest.compaction.read_amp_reduction", source="ingest",
        extract=lambda p: p["compaction"]["read_amp_reduction"],
        direction="higher", rel_tol=RATIO_TOL))
    out.append(Headline(
        key="ingest.compaction.results_identical", source="ingest",
        extract=lambda p: p["compaction"]["results_identical"],
        direction="exact"))
    out.append(Headline(
        key="matrix.results_identical", source="matrix",
        extract=lambda p: p["results_identical"],
        direction="exact"))
    out.append(Headline(
        key="matrix.largest.speedup", source="matrix",
        extract=lambda p: p["largest_cell"]["speedup"],
        direction="higher", rel_tol=LATENCY_TOL))
    out.append(Headline(
        key="matrix.largest.batched_mean_ms", source="matrix",
        extract=lambda p: _cell(p, p["largest_cell"]["id"])["batched"][
            "mean_ms"],
        direction="lower", rel_tol=LATENCY_TOL))
    out.append(Headline(
        key="serve.cached_results_identical", source="serve",
        extract=lambda p: p["cached_results_identical"],
        direction="exact"))
    out.append(Headline(
        key="serve.scaling.peak_qps", source="serve",
        extract=lambda p: p["scaling"]["peak_qps"],
        direction="higher", rel_tol=THROUGHPUT_TOL))
    out.append(Headline(
        key="serve.overload.shed_tail_bounded", source="serve",
        extract=lambda p: p["overload"]["shed_tail_bounded"],
        direction="exact"))
    out.append(Headline(
        key="serve.overload.p99_on_ms", source="serve",
        extract=lambda p: p["overload"]["shedding_on"]["latency_ms"]["p99"],
        direction="lower", rel_tol=LATENCY_TOL))
    out.append(Headline(
        key="serve.mixed.cache_hit_rate", source="serve",
        extract=lambda p: p["mixed"]["cache_hit_rate"],
        direction="higher", rel_tol=RATIO_TOL))
    return out


def _cell(payload: Dict[str, Any], identifier: str) -> Dict[str, Any]:
    for cell in payload["cells"]:
        if cell["id"] == identifier:
            return cell
    raise KeyError(identifier)


HEADLINES = _headlines()

#: headlines that must hold absolutely (not merely vs. baseline)
MUST_BE_TRUE = (
    "query.fig8_single.results_identical",
    "query.fig8_single_windowed.results_identical",
    "query.fig10_multi.results_identical",
    "query.telemetry.within_budget",
    "ingest.recovery.posts_match",
    "ingest.compaction.results_identical",
    "matrix.results_identical",
    "serve.cached_results_identical",
)

#: headlines with an absolute floor, enforced regardless of baseline —
#: the batched kernels must stay a real optimisation, not merely not
#: regress relative to whatever the last commit measured.
MUST_BE_AT_LEAST = {
    "matrix.largest.speedup": 2.0,
}


def extract_headlines(query_payload: Optional[Dict[str, Any]],
                      ingest_payload: Optional[Dict[str, Any]],
                      matrix_payload: Optional[Dict[str, Any]] = None,
                      serve_payload: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Dict[str, Any]]:
    """Pull every headline present in the given reports.  A missing
    report just skips its headlines (the checker reports coverage)."""
    payloads = {"query": query_payload, "ingest": ingest_payload,
                "matrix": matrix_payload, "serve": serve_payload}
    out: Dict[str, Dict[str, Any]] = {}
    for headline in HEADLINES:
        payload = payloads[headline.source]
        if payload is None:
            continue
        value = headline.pull(payload)
        if value is None:
            continue
        out[headline.key] = {
            "value": value,
            "direction": headline.direction,
            "rel_tol": headline.rel_tol,
        }
    return out


def build_baseline(query_payload: Optional[Dict[str, Any]],
                   ingest_payload: Optional[Dict[str, Any]],
                   matrix_payload: Optional[Dict[str, Any]] = None,
                   serve_payload: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    return {
        "schema_version": CONTRACT_SCHEMA_VERSION,
        "headlines": extract_headlines(query_payload, ingest_payload,
                                       matrix_payload, serve_payload),
    }


def write_baseline(baseline: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    version = baseline.get("schema_version")
    if version != CONTRACT_SCHEMA_VERSION:
        raise ValueError(f"unsupported contract schema_version {version!r} "
                         f"(expected {CONTRACT_SCHEMA_VERSION})")
    return baseline


def check_contract(current: Dict[str, Dict[str, Any]],
                   baseline: Dict[str, Any]) -> List[str]:
    """Compare freshly extracted headlines against the baseline; returns
    human-readable violations (empty = contract holds).

    Absolute checks (``MUST_BE_TRUE`` / ``MUST_BE_AT_LEAST``) run
    first; then every baseline headline must be present and must not
    have regressed in its bad direction by more than ``rel_tol``.
    Improvements never fail."""
    problems: List[str] = []
    for key in MUST_BE_TRUE:
        entry = current.get(key)
        if entry is not None and entry["value"] is not True:
            problems.append(f"{key} must be true, got {entry['value']!r}")
    for key, floor in MUST_BE_AT_LEAST.items():
        entry = current.get(key)
        if entry is None:
            continue
        try:
            value = float(entry["value"])
        except (TypeError, ValueError):
            problems.append(f"{key} must be a number >= {floor:g}, "
                            f"got {entry['value']!r}")
            continue
        if value < floor:
            problems.append(f"{key} must be at least {floor:g} "
                            f"(absolute floor), got {value:g}")
    for key, base_entry in sorted(baseline.get("headlines", {}).items()):
        entry = current.get(key)
        if entry is None:
            problems.append(f"{key}: missing from current reports "
                            f"(baseline has {base_entry['value']!r})")
            continue
        direction = base_entry.get("direction", "exact")
        if direction == "exact":
            if entry["value"] != base_entry["value"]:
                problems.append(
                    f"{key}: expected {base_entry['value']!r}, "
                    f"got {entry['value']!r}")
            continue
        base_value = float(base_entry["value"])
        value = float(entry["value"])
        tol = float(base_entry.get("rel_tol", 0.0))
        if direction == "higher":
            floor = base_value * (1.0 - tol)
            if value < floor:
                problems.append(
                    f"{key}: {value:g} regressed below {floor:g} "
                    f"(baseline {base_value:g}, tol {tol:.0%})")
        elif direction == "lower":
            ceiling = base_value * (1.0 + tol)
            if value > ceiling:
                problems.append(
                    f"{key}: {value:g} regressed above {ceiling:g} "
                    f"(baseline {base_value:g}, tol {tol:.0%})")
        else:
            problems.append(f"{key}: unknown direction {direction!r}")
    return problems


def render_contract(current: Dict[str, Dict[str, Any]],
                    baseline: Optional[Dict[str, Any]] = None) -> str:
    """Terminal listing of every headline, with baseline deltas when a
    baseline is supplied."""
    base_headlines = (baseline or {}).get("headlines", {})
    lines: List[str] = []
    for key in sorted(current):
        entry = current[key]
        value = entry["value"]
        text = f"{value:g}" if isinstance(value, (int, float)) \
            and not isinstance(value, bool) else str(value)
        line = f"{key:<44} {text:>10}  ({entry['direction']}"
        if entry["rel_tol"]:
            line += f" ±{entry['rel_tol']:.0%}"
        line += ")"
        base = base_headlines.get(key)
        if base is not None and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            base_value = base["value"]
            if isinstance(base_value, (int, float)) and base_value:
                delta = (value - base_value) / base_value
                line += f"  baseline {base_value:g} ({delta:+.1%})"
        lines.append(line)
    return "\n".join(lines)
