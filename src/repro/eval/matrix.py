"""The perf-regression benchmark matrix: scalar vs batched kernels.

A fixed grid of cells — dataset size × k × radius × keyword count —
each measured under both kernel families (the scalar reference pipeline
and the columnar batched one).  Per cell the report records latency for
both legs, the batched/scalar speedup, and whether the two legs returned
**byte-identical** rankings (scores compared by ``float.hex``, not with
a tolerance).  The committed ``BENCH_matrix.json`` at the repo root is
this module's output; the perf contract pins its headline numbers —
most importantly that the largest cell's batched speedup stays above an
absolute floor and that results stay identical — so a change that
quietly slows the batched path or breaks parity fails CI.

Both legs share one engine per dataset (same corpus, same storage, same
caches): the batched leg is a second ``MaxScoreProcessor`` over the
same backends whose :class:`~repro.core.scoring.ScoringConfig` selects
``kernels="batched"``.  Every leg gets a warmup pass, then the best of
``repeats`` timed passes counts (min-of-rounds discards scheduler
noise).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import columnar
from ..core.model import TkLUSQuery
from ..core.scoring import ScoringConfig
from ..data.generator import generate_corpus
from ..data.queries import QueryWorkload
from ..query.engine import EngineConfig, TkLUSEngine
from ..query.max_ranking import MaxScoreProcessor

MATRIX_SCHEMA_VERSION = 1
KERNELS = ("scalar", "batched")


@dataclass(frozen=True)
class MatrixDataset:
    """One corpus size of the grid."""

    name: str
    num_users: int
    num_root_tweets: int


@dataclass(frozen=True)
class MatrixConfig:
    """The grid definition; the defaults match the committed
    ``BENCH_matrix.json``."""

    datasets: Tuple[MatrixDataset, ...] = (
        MatrixDataset("small", num_users=200, num_root_tweets=1200),
        MatrixDataset("large", num_users=500, num_root_tweets=3200),
    )
    k_values: Tuple[int, ...] = (5, 20)
    radii_km: Tuple[float, ...] = (10.0, 40.0)
    keyword_counts: Tuple[int, ...] = (1, 2)
    queries_per_cell: int = 8
    repeats: int = 3
    seed: int = 42

    @classmethod
    def smoke(cls) -> "MatrixConfig":
        """A fast grid for CI: one small dataset, fewer cells/queries.
        Latency numbers from this config are not comparable to the
        committed report — it exists to validate schema, parity and the
        plumbing on every push."""
        return cls(
            datasets=(MatrixDataset("small", num_users=120,
                                    num_root_tweets=600),),
            k_values=(5,), radii_km=(10.0, 40.0), keyword_counts=(1, 2),
            queries_per_cell=4, repeats=1)

    def as_dict(self) -> Dict[str, object]:
        return {
            "datasets": [{"name": d.name, "num_users": d.num_users,
                          "num_root_tweets": d.num_root_tweets}
                         for d in self.datasets],
            "k_values": list(self.k_values),
            "radii_km": list(self.radii_km),
            "keyword_counts": list(self.keyword_counts),
            "queries_per_cell": self.queries_per_cell,
            "repeats": self.repeats,
            "seed": self.seed,
        }


def cell_id(dataset: str, k: int, radius_km: float, keywords: int) -> str:
    return f"{dataset}-k{k}-r{radius_km:g}-kw{keywords}"


def list_cells(config: Optional[MatrixConfig] = None) -> List[str]:
    """Every cell id of the grid, in run order."""
    if config is None:
        config = MatrixConfig()
    return [cell_id(dataset.name, k, radius, keywords)
            for dataset in config.datasets
            for k in config.k_values
            for radius in config.radii_km
            for keywords in config.keyword_counts]


def _measure(processor: MaxScoreProcessor, queries: Sequence[TkLUSQuery],
             repeats: int) -> Tuple[Dict[str, float], List[List[str]]]:
    """One leg: warmup pass (captures rankings), then the best of
    ``repeats`` timed passes."""
    rankings: List[List[str]] = []
    for query in queries:
        result = processor.search(query)
        # float.hex round-trips exactly: parity between legs is bitwise.
        rankings.append([f"{uid}:{score.hex()}"
                         for uid, score in result.users])
    best_latencies: Optional[List[float]] = None
    for _ in range(repeats):
        latencies: List[float] = []
        for query in queries:
            started = time.perf_counter()
            processor.search(query)
            latencies.append((time.perf_counter() - started) * 1000.0)
        if best_latencies is None or sum(latencies) < sum(best_latencies):
            best_latencies = latencies
    assert best_latencies is not None
    ordered = sorted(best_latencies)
    metrics = {
        "mean_ms": round(sum(ordered) / len(ordered), 4),
        "p50_ms": round(ordered[len(ordered) // 2], 4),
        "max_ms": round(ordered[-1], 4),
        "total_ms": round(sum(ordered), 4),
    }
    return metrics, rankings


def run_matrix(config: Optional[MatrixConfig] = None,
               only_cell: Optional[str] = None) -> Dict[str, object]:
    """Run the grid (or one cell of it) and return the report payload."""
    if config is None:
        config = MatrixConfig()
    wanted = set(list_cells(config))
    if only_cell is not None:
        if only_cell not in wanted:
            raise ValueError(f"unknown cell {only_cell!r}; "
                             f"cells: {', '.join(sorted(wanted))}")
        wanted = {only_cell}

    cells: List[Dict[str, object]] = []
    for dataset in config.datasets:
        dataset_cells = [
            (k, radius, keywords)
            for k in config.k_values
            for radius in config.radii_km
            for keywords in config.keyword_counts
            if cell_id(dataset.name, k, radius, keywords) in wanted]
        if not dataset_cells:
            continue
        corpus = generate_corpus(num_users=dataset.num_users,
                                 num_root_tweets=dataset.num_root_tweets,
                                 seed=config.seed)
        engine = TkLUSEngine.from_posts(corpus.posts, config=EngineConfig())
        scoring = engine.config.scoring
        legs = {
            "scalar": engine.processor("max"),
            # Same index, database, thread builder and bounds — only the
            # kernel selection differs, so the comparison isolates the
            # operator implementations.
            "batched": MaxScoreProcessor(
                engine.index, engine.database, engine.threads, engine.bounds,
                replace(scoring, kernels="batched"), engine.metric),
        }
        workload = QueryWorkload(corpus, seed=config.seed)
        for k, radius, keywords in dataset_cells:
            queries = workload.make_queries(keywords, radius, k=k,
                                            limit=config.queries_per_cell)
            measured: Dict[str, Dict[str, float]] = {}
            rankings: Dict[str, List[List[str]]] = {}
            for leg in KERNELS:
                measured[leg], rankings[leg] = _measure(
                    legs[leg], queries, config.repeats)
            batched_mean = measured["batched"]["mean_ms"]
            speedup = (round(measured["scalar"]["mean_ms"] / batched_mean, 3)
                       if batched_mean > 0 else None)
            cells.append({
                "id": cell_id(dataset.name, k, radius, keywords),
                "dataset": dataset.name,
                "num_posts": len(corpus.posts),
                "k": k,
                "radius_km": radius,
                "keywords": keywords,
                "queries": len(queries),
                "scalar": measured["scalar"],
                "batched": measured["batched"],
                "speedup": speedup,
                "results_identical": rankings["scalar"] == rankings["batched"],
            })

    # The largest cell anchors the contract's absolute speedup floor:
    # most posts, then most keywords, largest k, widest radius.
    largest = max(cells, key=lambda cell: (
        cell["num_posts"], cell["keywords"], cell["k"], cell["radius_km"]))
    return {
        "schema_version": MATRIX_SCHEMA_VERSION,
        "seed": config.seed,
        "config": config.as_dict(),
        "backend": columnar.active_backend(),
        "cells": cells,
        "largest_cell": {"id": largest["id"], "speedup": largest["speedup"]},
        "results_identical": all(cell["results_identical"]
                                 for cell in cells),
    }


def validate_matrix_report(payload: object) -> List[str]:
    """Schema check for a matrix report; returns human-readable problems
    (empty when valid)."""
    problems: List[str] = []

    def note(message: str) -> None:
        problems.append(message)

    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema_version") != MATRIX_SCHEMA_VERSION:
        note(f"schema_version must be {MATRIX_SCHEMA_VERSION}, "
             f"got {payload.get('schema_version')!r}")
    if not isinstance(payload.get("seed"), int) \
            or isinstance(payload.get("seed"), bool):
        note("seed must be an integer")
    if payload.get("backend") not in ("numpy", "python"):
        note("backend must be 'numpy' or 'python'")
    if not isinstance(payload.get("results_identical"), bool):
        note("results_identical must be a boolean")
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        return problems + ["cells must be a non-empty array"]
    seen: set = set()
    for position, cell in enumerate(cells):
        where = f"cells[{position}]"
        if not isinstance(cell, dict):
            note(f"{where} must be an object")
            continue
        identifier = cell.get("id")
        if not isinstance(identifier, str) or not identifier:
            note(f"{where}.id must be a non-empty string")
        elif identifier in seen:
            note(f"{where}.id duplicates {identifier!r}")
        else:
            seen.add(identifier)
        for key in ("num_posts", "k", "keywords", "queries"):
            value = cell.get(key)
            if not (isinstance(value, int) and value > 0
                    and not isinstance(value, bool)):
                note(f"{where}.{key} must be a positive integer")
        radius = cell.get("radius_km")
        if not (isinstance(radius, (int, float)) and radius > 0):
            note(f"{where}.radius_km must be a positive number")
        if not isinstance(cell.get("results_identical"), bool):
            note(f"{where}.results_identical must be a boolean")
        speedup = cell.get("speedup")
        if speedup is not None and not (
                isinstance(speedup, (int, float)) and speedup > 0):
            note(f"{where}.speedup must be null or a positive number")
        for leg in KERNELS:
            metrics = cell.get(leg)
            at = f"{where}.{leg}"
            if not isinstance(metrics, dict):
                note(f"{at} missing")
                continue
            for key in ("mean_ms", "p50_ms", "max_ms", "total_ms"):
                value = metrics.get(key)
                if not (isinstance(value, (int, float)) and value >= 0
                        and not isinstance(value, bool)):
                    note(f"{at}.{key} must be a non-negative number")
    largest = payload.get("largest_cell")
    if not isinstance(largest, dict):
        note("largest_cell must be an object")
    else:
        if not isinstance(largest.get("id"), str) \
                or largest.get("id") not in seen:
            note("largest_cell.id must name a cell in the report")
        speedup = largest.get("speedup")
        if not (isinstance(speedup, (int, float)) and speedup > 0):
            note("largest_cell.speedup must be a positive number")
    return problems


def render_matrix(payload: Dict[str, object]) -> str:
    """Terminal table: one line per cell."""
    lines = [f"kernel matrix (backend={payload.get('backend')}, "
             f"seed={payload.get('seed')})"]
    header = (f"{'cell':<22} {'posts':>6} {'scalar':>10} {'batched':>10} "
              f"{'speedup':>8}  parity")
    lines.append(header)
    for cell in payload["cells"]:  # type: ignore[index]
        speedup = cell["speedup"]
        lines.append(
            f"{cell['id']:<22} {cell['num_posts']:>6} "
            f"{cell['scalar']['mean_ms']:>8.2f}ms "
            f"{cell['batched']['mean_ms']:>8.2f}ms "
            f"{speedup if speedup is not None else 'n/a':>8} "
            f" {'ok' if cell['results_identical'] else 'MISMATCH'}")
    largest = payload.get("largest_cell")
    if isinstance(largest, dict):
        lines.append(f"largest cell {largest['id']}: "
                     f"speedup {largest['speedup']}x")
    parity = "ok" if payload.get("results_identical") else "MISMATCH"
    lines.append(f"overall parity: {parity}")
    return "\n".join(lines)


def diff_matrix(current: Dict[str, object], committed: Dict[str, object],
                speedup_tol: float = 0.25) -> List[str]:
    """Compare a fresh run against the committed report.

    Parity must hold in both; per-cell batched speedups may drift by
    ``speedup_tol`` relative before they are flagged (latency on a
    different machine is expected to move — this diff is advisory,
    the enforced gate is the contract's headline check)."""
    problems: List[str] = []
    if not current.get("results_identical"):
        problems.append("current run: results_identical is false")
    committed_cells = {cell["id"]: cell
                       for cell in committed.get("cells", [])}  # type: ignore[union-attr]
    for cell in current.get("cells", []):  # type: ignore[union-attr]
        base = committed_cells.get(cell["id"])
        if base is None:
            problems.append(f"{cell['id']}: not in committed report")
            continue
        speedup = cell.get("speedup")
        base_speedup = base.get("speedup")
        if speedup is None or base_speedup is None:
            continue
        floor = base_speedup * (1.0 - speedup_tol)
        if speedup < floor:
            problems.append(
                f"{cell['id']}: speedup {speedup:g} below {floor:g} "
                f"(committed {base_speedup:g}, tol {speedup_tol:.0%})")
    return problems


def write_report(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# Re-exported for the CLI's config plumbing.
__all__ = [
    "KERNELS",
    "MATRIX_SCHEMA_VERSION",
    "MatrixConfig",
    "MatrixDataset",
    "ScoringConfig",
    "cell_id",
    "diff_matrix",
    "list_cells",
    "render_matrix",
    "run_matrix",
    "validate_matrix_report",
    "write_report",
]
