"""ASCII rendering of experiment figures.

The paper presents Figs 5-13 as charts; this module renders the same
series as terminal-friendly ASCII so ``run_all_experiments.py`` output
reads like the paper's evaluation section.  Pure string manipulation —
no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def bar_chart(items: Sequence[Tuple[str, float]], width: int = 50,
              title: str = "", unit: str = "") -> str:
    """Horizontal bar chart: one ``(label, value)`` bar per row."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not items:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(value for _label, value in items)
    label_width = max(len(label) for label, _value in items)
    for label, value in items:
        length = 0 if peak <= 0 else int(round(width * value / peak))
        bar = "#" * max(length, 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(x_values: Sequence[float],
               series: Dict[str, Sequence[float]],
               height: int = 12, width: int = 60,
               title: str = "") -> str:
    """Multi-series line chart on a character grid.

    Each series gets a marker (its name's first letter, upper-cased;
    collisions fall back to digits).  Axes show the value range and the
    x extent.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not x_values or not series:
        lines.append("(no data)")
        return "\n".join(lines)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}")

    all_values = [value for values in series.values() for value in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used = set()
    for index, name in enumerate(sorted(series)):
        marker = name[:1].upper() or "?"
        if marker in used:
            marker = str(index % 10)
        used.add(marker)
        markers[name] = marker

    for name in sorted(series):
        values = series[name]
        for x, value in zip(x_values, values):
            column = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][column] = markers[name]

    value_width = max(len(f"{hi:g}"), len(f"{lo:g}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:g}".rjust(value_width)
        elif row_index == height - 1:
            label = f"{lo:g}".rjust(value_width)
        else:
            label = " " * value_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * value_width + " +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * value_width + "  " + x_axis)
    legend = "   ".join(f"{markers[name]}={name}" for name in sorted(series))
    lines.append(" " * value_width + "  " + legend)
    return "\n".join(lines)


def series_from_rows(rows: Sequence[Dict[str, object]], x_key: str,
                     y_key: str, group_key: str = ""
                     ) -> Tuple[List[float], Dict[str, List[float]]]:
    """Pivot experiment row dicts into ``line_chart`` inputs.

    Without ``group_key`` the result has a single series named after
    ``y_key``.  With it, one series per distinct group value (rows must
    share the same x grid per group).
    """
    if not rows:
        return [], {}
    if not group_key:
        xs = [float(row[x_key]) for row in rows]  # type: ignore[arg-type]
        return xs, {y_key: [float(row[y_key]) for row in rows]}  # type: ignore[arg-type]
    grouped: Dict[str, Dict[float, float]] = {}
    x_set: List[float] = []
    for row in rows:
        group = str(row[group_key])
        x = float(row[x_key])  # type: ignore[arg-type]
        grouped.setdefault(group, {})[x] = float(row[y_key])  # type: ignore[arg-type]
        if x not in x_set:
            x_set.append(x)
    x_set.sort()
    series = {}
    for group, points in grouped.items():
        series[group] = [points.get(x, 0.0) for x in x_set]
    return x_set, series
