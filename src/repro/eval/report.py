"""Plain-text table rendering for experiment rows."""

from __future__ import annotations

from typing import Dict, List, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100 or value == int(value):
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.4f}"
        return f"{value:.6f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 title: str = "") -> str:
    """Render row dicts as an aligned text table (column order = key
    order of the first row)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    cells: List[List[str]] = [[_format_value(row.get(col, "")) for col in columns]
                              for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    print(format_table(rows, title))
    print()
