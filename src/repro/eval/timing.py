"""Timing utilities for the experiment harness."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class TimingResult:
    """Aggregate of repeated timings (seconds)."""

    samples: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)


def time_callable(fn: Callable[[], object], repeats: int = 1) -> TimingResult:
    """Run ``fn`` ``repeats`` times, wall-clock timing each run."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(samples)


class Stopwatch:
    """Accumulating stopwatch for instrumenting phases inside a run."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float = -1.0

    def start(self) -> None:
        if self._started >= 0:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started < 0:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self._started = -1.0
        return delta

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
