"""Timing utilities for the experiment harness.

For new code, prefer :mod:`repro.obs` spans over the ad-hoc
:class:`Stopwatch`: spans nest across subsystem boundaries, attach
attributes, and feed the exporters.  ``Stopwatch`` remains as a
backward-compatible shim (now re-entrant, so nested phases no longer
blow up)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class TimingResult:
    """Aggregate of repeated timings (seconds)."""

    samples: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)


def time_callable(fn: Callable[[], object], repeats: int = 1) -> TimingResult:
    """Run ``fn`` ``repeats`` times, wall-clock timing each run."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(samples)


class Stopwatch:
    """Accumulating, re-entrant stopwatch.

    .. deprecated::
        ``Stopwatch`` predates the unified observability layer and is
        kept as a thin backward-compatibility shim.  New instrumentation
        should use :func:`repro.obs.trace` spans, which nest, carry
        attributes, and export to the span tree / JSONL / metrics
        outputs (see ``docs/OBSERVABILITY.md``).

    ``start``/``stop`` calls may nest: only the **outermost** pair
    accrues into :attr:`elapsed` (inner pairs are already covered by the
    outer interval), so a phase that times itself can safely be called
    from a larger timed phase sharing the same watch.  ``stop`` returns
    the elapsed time since the matching ``start``.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._depth = 0
        self._starts: List[float] = []

    @property
    def running(self) -> bool:
        return self._depth > 0

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when idle)."""
        return self._depth

    def start(self) -> None:
        self._depth += 1
        self._starts.append(time.perf_counter())

    def stop(self) -> float:
        if self._depth == 0:
            raise RuntimeError("stopwatch not running")
        started = self._starts.pop()
        self._depth -= 1
        delta = time.perf_counter() - started
        if self._depth == 0:
            self.elapsed += delta
        return delta

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
