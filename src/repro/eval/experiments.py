"""The experiment harness: one function per table/figure of Section VI.

Every function returns a list of row dicts — the same rows the paper's
plot would show — so benchmarks and example scripts can both print and
assert on them.  Absolute times are laptop-scale; EXPERIMENTS.md records
how the *shapes* compare with the paper.

Caching policy: the paper runs with HDFS and database caches off.  The
harness therefore clears the thread-popularity cache before every timed
query and builds indexes with postings caching disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.model import Semantics, TkLUSQuery
from ..data.generator import SyntheticCorpus, generate_corpus
from ..data.queries import QueryWorkload
from ..data.vocabulary import TABLE2_KEYWORDS
from ..dfs.cluster import paper_cluster
from ..geo import geohash as geohash_mod
from ..index.builder import IndexConfig
from ..index.hybrid import HybridIndex
from ..query.bounds import BoundsManager
from ..query.engine import EngineConfig, TkLUSEngine
from ..query.max_ranking import MaxScoreProcessor
from .kendall import kendall_tau
from .userstudy import SimulatedUserStudy, StudyConfig

Row = Dict[str, object]

#: Radii used by the paper's query-processing experiments (km).
SMALL_RADII = (5.0, 10.0, 15.0, 20.0)
LARGE_RADII = (5.0, 10.0, 20.0, 50.0, 100.0)
MULTI_RADII = (5.0, 10.0, 20.0, 50.0)

#: Geohash encoding lengths evaluated (Table IV / Figs 5-7).
GEOHASH_LENGTHS = (1, 2, 3, 4)


@dataclass
class ExperimentContext:
    """Shared setup for the query-processing experiments: the corpus,
    the workload, and a cached engine per geohash length."""

    corpus: SyntheticCorpus
    workload: QueryWorkload
    queries_per_point: int = 10
    _engines: Dict[int, TkLUSEngine] = field(default_factory=dict)

    @classmethod
    def create(cls, num_users: int = 800, num_root_tweets: int = 4000,
               seed: int = 42, queries_per_point: int = 10) -> "ExperimentContext":
        corpus = generate_corpus(num_users=num_users,
                                 num_root_tweets=num_root_tweets, seed=seed)
        return cls(corpus=corpus, workload=QueryWorkload(corpus, seed=seed),
                   queries_per_point=queries_per_point)

    def engine(self, geohash_length: int = 4) -> TkLUSEngine:
        engine = self._engines.get(geohash_length)
        if engine is None:
            config = EngineConfig(
                index=IndexConfig(geohash_length=geohash_length))
            engine = TkLUSEngine.from_posts(self.corpus.posts, config=config,
                                            cluster=paper_cluster())
            self._engines[geohash_length] = engine
        return engine

    def timed_search(self, engine: TkLUSEngine, query: TkLUSQuery,
                     method: str) -> float:
        """One cold-cache query; returns elapsed seconds."""
        engine.threads.clear_cache()
        start = time.perf_counter()
        engine.search(query, method=method)
        return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table2_keyword_frequencies(corpus: SyntheticCorpus, top: int = 10) -> List[Row]:
    """Table II: the top frequent keywords of the corpus."""
    frequencies = corpus.keyword_frequencies()
    ranked = sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
    return [
        {"rank": rank, "keyword": keyword, "frequency": count}
        for rank, (keyword, count) in enumerate(ranked[:top], start=1)
    ]


def table4_geohash_lengths(lat: float = -23.994140625,
                           lon: float = -46.23046875) -> List[Row]:
    """Table IV: the paper's worked geohash example at lengths 1-4."""
    return [
        {"length": length, "geohash": geohash_mod.encode(lat, lon, length)}
        for length in GEOHASH_LENGTHS
    ]


# ---------------------------------------------------------------------------
# Figures 5-6: index construction
# ---------------------------------------------------------------------------

def fig5_index_construction_time(corpus: SyntheticCorpus,
                                 lengths: Sequence[int] = GEOHASH_LENGTHS,
                                 workers: int = 2) -> List[Row]:
    """Fig 5: index construction time vs geohash length.

    Expected shape: roughly flat — construction cost is dominated by
    tokenisation and the shuffle, not the encoding length.
    """
    rows: List[Row] = []
    for length in lengths:
        cluster = paper_cluster()
        config = IndexConfig(geohash_length=length, workers=workers)
        start = time.perf_counter()
        HybridIndex.build(corpus.posts, cluster, config=config)
        elapsed = time.perf_counter() - start
        rows.append({"geohash_length": length,
                     "construction_seconds": elapsed,
                     "tweets": len(corpus.posts)})
    return rows


def fig6_index_size(corpus: SyntheticCorpus,
                    lengths: Sequence[int] = GEOHASH_LENGTHS) -> List[Row]:
    """Fig 6: index size vs geohash length.

    Expected shape: near-flat (every posting exists at every length; only
    key-space fragmentation varies).  Measured over the paper's flat
    12-byte-entry layout: the block format's fixed per-list header makes
    size grow with key fragmentation, which is a property of our
    compression, not of the paper's index.
    """
    rows: List[Row] = []
    for length in lengths:
        cluster = paper_cluster()
        index = HybridIndex.build(corpus.posts, cluster,
                                  config=IndexConfig(geohash_length=length,
                                                     postings_format="flat"))
        rows.append({
            "geohash_length": length,
            "inverted_bytes": index.inverted_size_bytes(),
            "forward_bytes": index.forward_size_bytes(),
            "stored_bytes_with_replication": cluster.total_stored_bytes(),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 7: geohash length vs query time
# ---------------------------------------------------------------------------

def fig7_geohash_length(context: ExperimentContext,
                        lengths: Sequence[int] = GEOHASH_LENGTHS,
                        radii: Sequence[float] = SMALL_RADII,
                        method: str = "max") -> List[Row]:
    """Fig 7: average query time per geohash length and radius.

    Expected shape: longer encodings are faster at the paper's 5-20 km
    radii (fewer non-candidates processed per cell).
    """
    rows: List[Row] = []
    for radius in radii:
        queries = context.workload.random_queries(
            context.queries_per_point, radius_km=radius)
        for length in lengths:
            engine = context.engine(length)
            total = sum(context.timed_search(engine, query, method)
                        for query in queries)
            rows.append({"radius_km": radius, "geohash_length": length,
                         "mean_seconds": total / len(queries)})
    return rows


# ---------------------------------------------------------------------------
# Figures 8-9: single-keyword efficiency and consistency
# ---------------------------------------------------------------------------

def fig8_single_keyword(context: ExperimentContext,
                        radii: Sequence[float] = LARGE_RADII,
                        k: int = 10) -> List[Row]:
    """Fig 8: sum vs max query time on single-keyword queries.

    Expected shape: comparable at <= 20 km; max clearly faster at large
    radii (more candidates -> more pruning opportunity).
    """
    engine = context.engine(4)
    rows: List[Row] = []
    for radius in radii:
        queries = [context.workload.bind(spec, radius_km=radius, k=k)
                   for spec in context.workload.specs(1)[:context.queries_per_point]]
        sum_total = sum(context.timed_search(engine, query, "sum")
                        for query in queries)
        max_total = sum(context.timed_search(engine, query, "max")
                        for query in queries)
        rows.append({"radius_km": radius,
                     "sum_seconds": sum_total / len(queries),
                     "max_seconds": max_total / len(queries)})
    return rows


def fig9_kendall_single(context: ExperimentContext,
                        radii: Sequence[float] = SMALL_RADII,
                        ks: Sequence[int] = (5, 10)) -> List[Row]:
    """Fig 9: Kendall tau between sum and max rankings, single keyword.

    Expected shape: consistently high (paper: > 0.863 everywhere).
    """
    engine = context.engine(4)
    rows: List[Row] = []
    for k in ks:
        for radius in radii:
            queries = [context.workload.bind(spec, radius_km=radius, k=k)
                       for spec in context.workload.specs(1)[:context.queries_per_point]]
            taus = []
            for query in queries:
                rho_b = engine.search_sum(query).ranking()
                rho_d = engine.search_max(query).ranking()
                if not rho_b and not rho_d:
                    continue  # no candidates at this location/radius
                taus.append(kendall_tau(rho_b, rho_d))
            rows.append({"k": k, "radius_km": radius,
                         "mean_tau": sum(taus) / len(taus) if taus else 1.0,
                         "queries_with_results": len(taus)})
    return rows


# ---------------------------------------------------------------------------
# Figures 10-11: multi-keyword queries
# ---------------------------------------------------------------------------

def fig10_multi_keyword(context: ExperimentContext,
                        radii: Sequence[float] = MULTI_RADII,
                        k: int = 10) -> List[Row]:
    """Fig 10: query time by keyword count and semantics.

    Expected shapes: OR time grows with keyword count, AND time shrinks;
    max beats sum most visibly under OR at 20-50 km.
    """
    engine = context.engine(4)
    rows: List[Row] = []
    for num_keywords in (1, 2, 3):
        semantics_options = ([Semantics.OR] if num_keywords == 1
                             else [Semantics.AND, Semantics.OR])
        for semantics in semantics_options:
            for radius in radii:
                specs = context.workload.specs(num_keywords)[:context.queries_per_point]
                queries = [context.workload.bind(spec, radius_km=radius, k=k,
                                                 semantics=semantics)
                           for spec in specs]
                sum_total = sum(context.timed_search(engine, query, "sum")
                                for query in queries)
                max_total = sum(context.timed_search(engine, query, "max")
                                for query in queries)
                rows.append({
                    "keywords": num_keywords,
                    "semantics": semantics.value,
                    "radius_km": radius,
                    "sum_seconds": sum_total / len(queries),
                    "max_seconds": max_total / len(queries),
                })
    return rows


def fig11_kendall_multi(context: ExperimentContext,
                        radii: Sequence[float] = MULTI_RADII,
                        k: int = 10) -> List[Row]:
    """Fig 11: Kendall tau by keyword count and semantics.

    Expected shape: AND taus > 0.95; OR taus lower but >= ~0.8.
    """
    engine = context.engine(4)
    rows: List[Row] = []
    for num_keywords in (1, 2, 3):
        semantics_options = ([Semantics.OR] if num_keywords == 1
                             else [Semantics.AND, Semantics.OR])
        for semantics in semantics_options:
            for radius in radii:
                specs = context.workload.specs(num_keywords)[:context.queries_per_point]
                taus = []
                for spec in specs:
                    query = context.workload.bind(spec, radius_km=radius, k=k,
                                                  semantics=semantics)
                    rho_b = engine.search_sum(query).ranking()
                    rho_d = engine.search_max(query).ranking()
                    if not rho_b and not rho_d:
                        continue
                    taus.append(kendall_tau(rho_b, rho_d))
                rows.append({
                    "keywords": num_keywords,
                    "semantics": semantics.value,
                    "radius_km": radius,
                    "mean_tau": sum(taus) / len(taus) if taus else 1.0,
                    "queries_with_results": len(taus),
                })
    return rows


# ---------------------------------------------------------------------------
# Figure 12: hot-keyword-specific popularity bounds
# ---------------------------------------------------------------------------

def fig12_specific_bounds(context: ExperimentContext,
                          radii: Sequence[float] = MULTI_RADII,
                          k: int = 5) -> List[Row]:
    """Fig 12: max-ranking query time with hot-keyword bounds vs the
    global bound only, on queries containing hot keywords.

    Queries are drawn as single hot keywords and hot-keyword pairs
    ("queries that contain those hot keywords", Section VI-B5); the
    AND semantics uses the smallest per-keyword bound, OR the largest.
    Expected shape: specific bounds prune thread constructions the
    global bound cannot (it is far looser), increasingly so at larger
    radii.  Pruned-thread counts are reported alongside times since at
    laptop scale pruning shows more reliably in work counts than in
    sub-millisecond timings.
    """
    engine = context.engine(4)
    global_only = BoundsManager(engine.bounds.global_bound)
    hot_processor = engine.processor("max")
    global_processor = MaxScoreProcessor(
        engine.index, engine.database, engine.threads, global_only,
        engine.config.scoring, engine.metric)

    # Hot-keyword query pool: every hot keyword alone plus adjacent pairs.
    from ..data.queries import QuerySpec
    hot = list(TABLE2_KEYWORDS)
    specs = [QuerySpec((keyword,)) for keyword in hot]
    specs += [QuerySpec((hot[i], hot[(i + 1) % len(hot)]))
              for i in range(len(hot))]
    specs = specs[:max(context.queries_per_point * 2, 10)]

    rows: List[Row] = []
    for semantics in (Semantics.AND, Semantics.OR):
        for radius in radii:
            hot_time = 0.0
            global_time = 0.0
            hot_pruned = 0
            global_pruned = 0
            for spec in specs:
                query = context.workload.bind(
                    spec, radius_km=radius, k=k, semantics=semantics,
                    location=context.workload.sample_location())
                engine.threads.clear_cache()
                start = time.perf_counter()
                result = hot_processor.search(query)
                hot_time += time.perf_counter() - start
                hot_pruned += result.stats.threads_pruned
                engine.threads.clear_cache()
                start = time.perf_counter()
                result = global_processor.search(query)
                global_time += time.perf_counter() - start
                global_pruned += result.stats.threads_pruned
            rows.append({
                "semantics": semantics.value,
                "radius_km": radius,
                "hot_bound_seconds": hot_time / max(1, len(specs)),
                "global_bound_seconds": global_time / max(1, len(specs)),
                "hot_bound_pruned": hot_pruned,
                "global_bound_pruned": global_pruned,
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 13: user study
# ---------------------------------------------------------------------------

def fig13_user_study(context: ExperimentContext,
                     radii: Sequence[float] = SMALL_RADII,
                     num_queries: int = 30,
                     study_config: Optional[StudyConfig] = None) -> List[Row]:
    """Fig 13: precision of both rankings at top-5 / top-10 per radius.

    Expected shape: 60-80 % precision at <= 10 km, decaying with radius;
    top-5 precision >= top-10 precision.
    """
    engine = context.engine(4)
    study = SimulatedUserStudy(context.corpus.to_dataset(),
                               study_config or StudyConfig())
    # 30 queries with 1-3 keywords, issued at random (paper protocol).
    specs = (context.workload.specs(1)[:10] + context.workload.specs(2)[:10]
             + context.workload.specs(3)[:10])[:num_queries]
    rows: List[Row] = []
    for method in ("sum", "max"):
        for radius in radii:
            precisions_5: List[float] = []
            precisions_10: List[float] = []
            for spec in specs:
                query = context.workload.bind(spec, radius_km=radius, k=10)
                ranking = engine.search(query, method=method).ranking()
                if not ranking:
                    continue
                at = study.precision_at(ranking, query, cutoffs=(5, 10))
                precisions_5.append(at[5])
                precisions_10.append(at[10])
            rows.append({
                "method": method,
                "radius_km": radius,
                "precision_top5": (sum(precisions_5) / len(precisions_5)
                                   if precisions_5 else 0.0),
                "precision_top10": (sum(precisions_10) / len(precisions_10)
                                    if precisions_10 else 0.0),
                "queries_with_results": len(precisions_5),
            })
    return rows
