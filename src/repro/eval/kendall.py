"""The paper's variant Kendall tau rank-correlation coefficient
(Section VI-B3).

Two top-k results from different ranking functions need not contain the
same users.  The paper pads each ranking with the other's missing
elements, all sharing the next rank: for k = 3, rho_b = <A, B, C> and
rho_d = <B, D, E> become <A, B, C, D, E> and <B, D, E, A, C> with D, E
both ranked 4th in rho_b (and A, C both 4th in rho_d).

A pair is *concordant* when one element is "ranked before (after or in
tie with)" the other in both rankings — i.e. ordered the same way, or
tied in both.  Discordant pairs are ordered oppositely.  Pairs tied in
exactly one ranking are neither.  The coefficient is

    tau = (cp - dp) / (0.5 * m * (m - 1))

with ``m`` the padded length (the paper writes ``k``; its own k = 3
example pads to 5 elements, and normalising by the padded pair count is
the reading that keeps tau within [-1, 1]).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def padded_ranks(primary: Sequence[int], other: Sequence[int]) -> Dict[int, int]:
    """Rank map (1-based) of ``primary`` padded with the elements of
    ``other`` it lacks, all at rank ``len(primary) + 1``."""
    ranks: Dict[int, int] = {}
    for position, element in enumerate(primary, start=1):
        if element in ranks:
            raise ValueError(f"duplicate element {element!r} in ranking")
        ranks[element] = position
    pad_rank = len(primary) + 1
    for element in other:
        if element not in ranks:
            ranks[element] = pad_rank
    return ranks


def kendall_tau(rho_b: Sequence[int], rho_d: Sequence[int]) -> float:
    """The paper's variant Kendall tau between two top-k rankings.

    Returns 1.0 for two empty rankings (nothing disagrees).
    """
    ranks_b = padded_ranks(rho_b, rho_d)
    ranks_d = padded_ranks(rho_d, rho_b)
    elements: List[int] = sorted(ranks_b)  # identical key sets by construction
    m = len(elements)
    if m < 2:
        return 1.0
    concordant = 0
    discordant = 0
    for i in range(m):
        for j in range(i + 1, m):
            delta_b = ranks_b[elements[i]] - ranks_b[elements[j]]
            delta_d = ranks_d[elements[i]] - ranks_d[elements[j]]
            if delta_b == 0 and delta_d == 0:
                concordant += 1
            elif delta_b * delta_d > 0:
                concordant += 1
            elif delta_b != 0 and delta_d != 0:
                discordant += 1
            # tied in exactly one ranking: neither concordant nor discordant
    return (concordant - discordant) / (0.5 * m * (m - 1))


def kendall_tau_classic(rho_b: Sequence[int], rho_d: Sequence[int]) -> float:
    """Classic Kendall tau for two permutations of the same element set
    (no padding, no ties).  Raises ValueError when the sets differ —
    use :func:`kendall_tau` for top-k lists from different rankers.
    """
    if set(rho_b) != set(rho_d):
        raise ValueError("classic tau needs identical element sets")
    k = len(rho_b)
    if k < 2:
        return 1.0
    position_d = {element: index for index, element in enumerate(rho_d)}
    concordant = 0
    discordant = 0
    for i in range(k):
        for j in range(i + 1, k):
            if position_d[rho_b[i]] < position_d[rho_b[j]]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (0.5 * k * (k - 1))


def average_tau(pairs: Sequence[Tuple[Sequence[int], Sequence[int]]]) -> float:
    """Mean variant-tau over ranking pairs (one per query)."""
    if not pairs:
        return 1.0
    return sum(kendall_tau(b, d) for b, d in pairs) / len(pairs)
