"""Simulated user study (Section VI-B6 / Fig 13).

The paper invites six Twitter-savvy participants; each top-10 result line
``(userId, tweet content)`` is judged by four raters, and a user judged
relevant at least twice is counted relevant.  Precision is the fraction
of returned users judged relevant.

We replace the human panel with a stochastic relevance oracle whose
judgement mechanism mirrors what drove the paper's numbers:

* **distance decay** — a local user close to the query location is far
  more likely to look relevant than one near the radius edge (this is
  what makes precision fall as the radius grows);
* **topical match** — the more query keywords the user's tweets carry,
  the likelier a "relevant" vote;
* **rater noise** — each of the four votes flips independently with a
  small probability, so judgements are noisy the way human panels are.

Each rater votes 1 with probability ``p(user, query)`` and the >= 2-votes
rule of the paper aggregates them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.model import Dataset, TkLUSQuery
from ..geo.distance import DEFAULT_METRIC, Metric

#: Paper protocol constants.
RATERS_PER_LINE = 4
VOTES_REQUIRED = 2


@dataclass(frozen=True)
class StudyConfig:
    """Oracle parameters (see module docstring)."""

    distance_scale_km: float = 12.0   # e-folding distance of perceived relevance
    base_probability: float = 0.12    # floor: even far users sometimes convince
    topical_weight: float = 0.78      # ceiling added for a perfect nearby match
    noise: float = 0.05               # independent per-rater flip probability
    seed: int = 2015


class SimulatedUserStudy:
    """Runs the Fig 13 protocol against a corpus."""

    def __init__(self, dataset: Dataset, config: StudyConfig = StudyConfig(),
                 metric: Metric = DEFAULT_METRIC) -> None:
        self.dataset = dataset
        self.config = config
        self.metric = metric
        self._rng = random.Random(config.seed)

    def _relevance_probability(self, uid: int, query: TkLUSQuery) -> float:
        """The oracle's probability that one rater marks this user's
        result line relevant."""
        posts = self.dataset.posts_of(uid)
        matching = [post for post in posts
                    if query.keywords.intersection(post.words)]
        if not matching:
            return self.config.base_probability / 2.0
        best_distance = min(self.metric(query.location, post.location)
                            for post in matching)
        distance_factor = math.exp(-best_distance / self.config.distance_scale_km)
        matched_terms = set()
        for post in matching:
            matched_terms |= query.keywords.intersection(post.words)
        topical_factor = len(matched_terms) / len(query.keywords)
        p = (self.config.base_probability
             + self.config.topical_weight * distance_factor * topical_factor)
        return min(0.97, p)

    def _rater_votes(self, probability: float) -> int:
        votes = 0
        for _ in range(RATERS_PER_LINE):
            vote = self._rng.random() < probability
            if self._rng.random() < self.config.noise:
                vote = not vote
            if vote:
                votes += 1
        return votes

    def judge_user(self, uid: int, query: TkLUSQuery) -> bool:
        """Four simulated raters judge this user's result line; >= 2
        relevant votes makes the user relevant (paper protocol)."""
        probability = self._relevance_probability(uid, query)
        return self._rater_votes(probability) >= VOTES_REQUIRED

    def precision(self, ranking: Sequence[int], query: TkLUSQuery) -> float:
        """Fraction of the returned users judged relevant."""
        if not ranking:
            return 0.0
        relevant = sum(1 for uid in ranking if self.judge_user(uid, query))
        return relevant / len(ranking)

    def precision_at(self, ranking: Sequence[int], query: TkLUSQuery,
                     cutoffs: Tuple[int, ...] = (5, 10)) -> Dict[int, float]:
        """Precision at each cutoff (the paper reports top-5 and top-10).

        Judgements are drawn once per user so P@5 and P@10 are consistent
        for the shared prefix.
        """
        judgements: List[bool] = [self.judge_user(uid, query) for uid in ranking]
        result: Dict[int, float] = {}
        for cutoff in cutoffs:
            head = judgements[:cutoff]
            result[cutoff] = (sum(head) / len(head)) if head else 0.0
        return result
