"""The forward index: ``(geohash, term) -> postings-list location``.

Section IV-B1: "Each entry in the forward index is in the format of
``<ge_i, kw_i>`` ... The forward index associates each of its entry to a
postings list in the inverted index that is stored in Hadoop HDFS ...
the forward index size is less than 12 MB ... Therefore, it is kept in
the main memory."

Entries map to a :class:`PostingsRef` — the DFS file, byte offset, length
and entry count of the postings list — following the postings-forward-
index design of Lin et al. [16].  A per-term geohash trie supports
prefix queries (all indexed cells under a coarser prefix).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..geo.trie import GeohashTrie


@dataclass(frozen=True)
class PostingsRef:
    """Location of one postings list inside the DFS-resident inverted
    index."""

    path: str
    offset: int
    length: int
    count: int  # number of postings entries


class ForwardIndex:
    """In-memory map from ``(geohash, term)`` to :class:`PostingsRef`."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], PostingsRef] = {}
        self._term_tries: Dict[str, GeohashTrie] = {}
        self._cell_terms: Dict[str, Set[str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, geohash: str, term: str, ref: PostingsRef) -> None:
        key = (geohash, term)
        if key in self._entries:
            raise ValueError(f"duplicate forward-index entry {key}")
        self._entries[key] = ref
        trie = self._term_tries.get(term)
        if trie is None:
            trie = GeohashTrie()
            self._term_tries[term] = trie
        trie.put(geohash, ref)
        self._cell_terms.setdefault(geohash, set()).add(term)

    def lookup(self, geohash: str, term: str) -> Optional[PostingsRef]:
        """Exact ``(geohash, term)`` lookup — the fetch at line 6 of
        Algorithms 4/5."""
        return self._entries.get((geohash, term))

    def lookup_prefix(self, prefix: str, term: str) -> List[Tuple[str, PostingsRef]]:
        """All indexed cells for ``term`` underneath geohash ``prefix``.

        Lets a coarse-cover query reach an index built at a finer
        encoding length.
        """
        trie = self._term_tries.get(term)
        if trie is None:
            return []
        return list(trie.items_under_prefix(prefix))

    def terms_in_cell(self, geohash: str) -> Set[str]:
        return set(self._cell_terms.get(geohash, set()))

    def cells_for_term(self, term: str) -> List[str]:
        trie = self._term_tries.get(term)
        if trie is None:
            return []
        return list(trie.keys_under_prefix(""))

    def vocabulary(self) -> Set[str]:
        return set(self._term_tries)

    def items(self) -> Iterator[Tuple[Tuple[str, str], PostingsRef]]:
        yield from self._entries.items()

    def size_bytes(self) -> int:
        """Approximate resident size if serialised: the quantity the
        paper keeps under 12 MB to justify holding it in RAM."""
        total = 0
        for (geohash, term), ref in self._entries.items():
            total += len(geohash) + len(term) + 2  # keys + separators
            total += len(ref.path) + 8 + 4 + 4     # path, offset, length, count
        return total

    # -- serialisation (so the forward index can be persisted / shipped) ---

    _HEADER = struct.Struct("<I")

    def serialize(self) -> bytes:
        """Compact binary serialisation."""
        out = bytearray()
        out.extend(self._HEADER.pack(len(self._entries)))
        for (geohash, term), ref in sorted(self._entries.items()):
            for text in (geohash, term, ref.path):
                encoded = text.encode()
                out.extend(struct.pack("<H", len(encoded)))
                out.extend(encoded)
            out.extend(struct.pack("<QII", ref.offset, ref.length, ref.count))
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "ForwardIndex":
        index = cls()
        (count,) = cls._HEADER.unpack_from(data, 0)
        position = cls._HEADER.size
        for _ in range(count):
            fields = []
            for _field in range(3):
                (length,) = struct.unpack_from("<H", data, position)
                position += 2
                fields.append(data[position:position + length].decode())
                position += length
            offset, length, entry_count = struct.unpack_from("<QII", data, position)
            position += struct.calcsize("<QII")
            geohash, term, path = fields
            index.add(geohash, term, PostingsRef(path, offset, length, entry_count))
        return index
