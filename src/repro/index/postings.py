"""Postings lists: ``(tid, tf)`` pairs sorted by tweet id.

"Each entry in a postings list is a pair <TID, TF>. Specifically, TID is
the tweet ID that is essentially the tweet timestamp and TF represents
the term frequency" (Section IV-B1).  Postings are kept sorted by TID
(Algorithm 3 sorts before emitting) so that "the subsequent intersection
operations on the sorted postings can be very efficient".

Binary layout: consecutive 12-byte entries ``<qI`` (int64 tid, uint32 tf).
"""

from __future__ import annotations

import heapq
import struct
from typing import Dict, Iterable, List, Sequence, Tuple

Posting = Tuple[int, int]  # (tid, tf)

_ENTRY = struct.Struct("<qI")

ENTRY_SIZE = _ENTRY.size


def encode_postings(postings: Sequence[Posting]) -> bytes:
    """Serialise a tid-sorted postings list to bytes."""
    out = bytearray()
    previous = None
    for tid, tf in postings:
        if previous is not None and tid < previous:
            raise ValueError(f"postings not sorted: {tid} after {previous}")
        previous = tid
        out.extend(_ENTRY.pack(tid, tf))
    return bytes(out)


def decode_postings(data: bytes) -> List[Posting]:
    """Inverse of :func:`encode_postings`."""
    if len(data) % ENTRY_SIZE != 0:
        raise ValueError(f"postings bytes not a multiple of {ENTRY_SIZE}: {len(data)}")
    return [
        _ENTRY.unpack_from(data, offset)
        for offset in range(0, len(data), ENTRY_SIZE)
    ]


def _gallop(postings: Sequence[Posting], target: int, start: int) -> int:
    """Smallest index >= start with postings[index][0] >= target, found by
    galloping (doubling) search — efficient when list sizes are skewed.

    Lazy block readers (:class:`repro.index.blocks.BlockPostingsReader`)
    expose the same contract as a ``seek`` method that consults the block
    skip table first; delegating keeps every intersection/union caller
    block-aware without changing its code.
    """
    seek = getattr(postings, "seek", None)
    if seek is not None:
        return seek(target, start)
    n = len(postings)
    if start >= n or postings[start][0] >= target:
        return start
    step = 1
    lo = start
    hi = start + step
    while hi < n and postings[hi][0] < target:
        lo = hi
        step *= 2
        hi = start + step
    hi = min(hi, n)
    # Binary search in (lo, hi].
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if postings[mid][0] < target:
            lo = mid
        else:
            hi = mid
    return hi


def intersect_two(a: Sequence[Posting], b: Sequence[Posting]) -> List[Tuple[int, int, int]]:
    """Intersect two sorted postings lists.

    Returns ``(tid, tf_a, tf_b)`` triples.  Uses galloping from the
    smaller list into the larger.
    """
    if len(a) > len(b):
        swapped = intersect_two(b, a)
        return [(tid, tf_b, tf_a) for tid, tf_a, tf_b in swapped]
    result: List[Tuple[int, int, int]] = []
    j = 0
    for tid, tf_a in a:
        j = _gallop(b, tid, j)
        if j >= len(b):
            break
        if b[j][0] == tid:
            result.append((tid, tf_a, b[j][1]))
            j += 1
    return result


def intersect_many(lists: Sequence[Sequence[Posting]]) -> List[Tuple[int, List[int]]]:
    """Intersect k sorted postings lists, smallest-first.

    Returns ``(tid, [tf per input list, in original order])``.
    """
    if not lists:
        return []
    if any(len(lst) == 0 for lst in lists):
        return []
    order = sorted(range(len(lists)), key=lambda i: len(lists[i]))
    base_index = order[0]
    # Accumulate as {tid: {list_index: tf}} seeded from the smallest list.
    survivors: List[Tuple[int, Dict[int, int]]] = [
        (tid, {base_index: tf}) for tid, tf in lists[base_index]
    ]
    for list_index in order[1:]:
        current = lists[list_index]
        next_survivors: List[Tuple[int, Dict[int, int]]] = []
        j = 0
        for tid, tfs in survivors:
            j = _gallop(current, tid, j)
            if j >= len(current):
                break
            if current[j][0] == tid:
                tfs[list_index] = current[j][1]
                next_survivors.append((tid, tfs))
                j += 1
        survivors = next_survivors
        if not survivors:
            return []
    return [(tid, [tfs[i] for i in range(len(lists))]) for tid, tfs in survivors]


def union_many(lists: Sequence[Sequence[Posting]]) -> List[Tuple[int, List[int]]]:
    """Union k sorted postings lists via k-way merge.

    Returns ``(tid, [tf per input list; 0 where absent])`` sorted by tid.
    """
    if not lists:
        return []
    merged: List[Tuple[int, List[int]]] = []
    heap: List[Tuple[int, int, int]] = []  # (tid, list_index, position)
    for list_index, lst in enumerate(lists):
        if lst:
            heapq.heappush(heap, (lst[0][0], list_index, 0))
    current_tid = None
    current_tfs: List[int] = []
    while heap:
        tid, list_index, position = heapq.heappop(heap)
        if tid != current_tid:
            if current_tid is not None:
                merged.append((current_tid, current_tfs))
            current_tid = tid
            current_tfs = [0] * len(lists)
        current_tfs[list_index] += lists[list_index][position][1]
        if position + 1 < len(lists[list_index]):
            heapq.heappush(heap, (lists[list_index][position + 1][0],
                                  list_index, position + 1))
    if current_tid is not None:
        merged.append((current_tid, current_tfs))
    return merged


def merge_postings(lists: Iterable[Sequence[Posting]]) -> List[Posting]:
    """Merge sorted postings lists for the *same* key (e.g. the same term
    across several cover cells), summing term frequencies on tid ties."""
    combined = union_many(list(lists))
    return [(tid, sum(tfs)) for tid, tfs in combined]
