"""Block-compressed postings with skip metadata and lazy decoding.

The flat layout of :mod:`repro.index.postings` stores postings as raw
12-byte ``<TID, TF>`` entries and decodes the whole list on every fetch,
even when the temporal window or intersection galloping discards most of
it.  This module adds a versioned block format (format version 1):

* entries are grouped into fixed-size blocks (default 128);
* each block body is delta-encoded — unsigned varint tid deltas
  interleaved with varint term frequencies;
* a skip table ahead of the bodies carries one header per block with
  ``count``, ``min_tid``, ``max_tid``, ``max_tf`` and the body length,
  so readers can skip whole blocks (temporal clipping, galloping) and
  bound scores (per-block ``max_tf``) without decoding a single entry.

Byte layout::

    [magic 0xB7][version 0x01]
    uvarint total_count
    uvarint block_count
    block_count x ( uvarint count,
                    zigzag min_tid          -- first block; later blocks
                                               store min_tid - prev max_tid
                    uvarint max_tid - min_tid,
                    uvarint max_tf,
                    uvarint body_len )
    concatenated block bodies; each body is count x
                  ( uvarint tid delta from the previous tid
                    -- the running tid starts at the block's min_tid,
                    uvarint tf )

:func:`open_postings` dispatches on the leading version byte and falls
back to the legacy flat codec, so indexes built before this format
remain readable.  :class:`BlockPostingsReader` implements the sequence
protocol over the encoded bytes, decoding blocks on demand through an
optional shared :class:`BlockCache`.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from operator import itemgetter
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from .. import columnar
from .postings import ENTRY_SIZE, Posting, decode_postings

MAGIC = 0xB7
FORMAT_VERSION = 1
DEFAULT_BLOCK_SIZE = 128
DEFAULT_BLOCK_CACHE_SIZE = 256

_TID = itemgetter(0)


class PostingsFormatError(ValueError):
    """A postings payload that cannot be parsed in any known format."""


# -- varint / zigzag primitives ---------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"uvarint value must be >= 0: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    length = len(data)
    while True:
        if pos >= length:
            raise PostingsFormatError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise PostingsFormatError("varint wider than 10 bytes")


def _zigzag_encode(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _zigzag_decode(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value // 2) - 1


# -- encoding ----------------------------------------------------------------


def encode_postings_blocks(postings: Sequence[Posting],
                           block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Serialise a tid-sorted postings list in the block format."""
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1: {block_size}")
    total = len(postings)
    headers: List[Tuple[int, int, int, int, int]] = []
    bodies = bytearray()
    previous: Optional[int] = None
    for start in range(0, total, block_size):
        chunk = postings[start:start + block_size]
        body = bytearray()
        min_tid = chunk[0][0]
        running = min_tid
        max_tf = 0
        for tid, tf in chunk:
            if previous is not None and tid < previous:
                raise ValueError(f"postings not sorted: {tid} after {previous}")
            previous = tid
            if tf < 0:
                raise ValueError(f"negative term frequency: {tf}")
            _write_uvarint(body, tid - running)
            _write_uvarint(body, tf)
            running = tid
            if tf > max_tf:
                max_tf = tf
        headers.append((len(chunk), min_tid, running, max_tf, len(body)))
        bodies.extend(body)
    out = bytearray((MAGIC, FORMAT_VERSION))
    _write_uvarint(out, total)
    _write_uvarint(out, len(headers))
    prev_max: Optional[int] = None
    for count, min_tid, max_tid, max_tf, body_len in headers:
        _write_uvarint(out, count)
        if prev_max is None:
            _write_uvarint(out, _zigzag_encode(min_tid))
        else:
            _write_uvarint(out, min_tid - prev_max)
        _write_uvarint(out, max_tid - min_tid)
        _write_uvarint(out, max_tf)
        _write_uvarint(out, body_len)
        prev_max = max_tid
    out.extend(bodies)
    return bytes(out)


# -- parsed structure --------------------------------------------------------


class BlockHeader:
    """One skip-table entry: everything known about a block without
    decoding its body."""

    __slots__ = ("count", "min_tid", "max_tid", "max_tf", "body_offset",
                 "body_len")

    def __init__(self, count: int, min_tid: int, max_tid: int, max_tf: int,
                 body_offset: int, body_len: int) -> None:
        self.count = count
        self.min_tid = min_tid
        self.max_tid = max_tid
        self.max_tf = max_tf
        self.body_offset = body_offset
        self.body_len = body_len

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BlockHeader(count={self.count}, min_tid={self.min_tid}, "
                f"max_tid={self.max_tid}, max_tf={self.max_tf}, "
                f"body_len={self.body_len})")


class _ParsedBlocks:
    """Immutable parse result shared by every view over one payload."""

    __slots__ = ("data", "headers", "cum", "maxes", "mins", "total")

    def __init__(self, data: bytes, headers: List[BlockHeader],
                 total: int) -> None:
        self.data = data
        self.headers = headers
        self.total = total
        cum = [0]
        for header in headers:
            cum.append(cum[-1] + header.count)
        self.cum = cum
        self.maxes = [header.max_tid for header in headers]
        self.mins = [header.min_tid for header in headers]


def _parse_blocks(data: bytes) -> _ParsedBlocks:
    if len(data) < 2 or data[0] != MAGIC or data[1] != FORMAT_VERSION:
        raise PostingsFormatError("not a block-format postings payload")
    pos = 2
    total, pos = _read_uvarint(data, pos)
    block_count, pos = _read_uvarint(data, pos)
    if (block_count == 0) != (total == 0):
        raise PostingsFormatError(
            f"inconsistent counts: {total} entries in {block_count} blocks")
    headers: List[BlockHeader] = []
    prev_max: Optional[int] = None
    entries_seen = 0
    for _ in range(block_count):
        count, pos = _read_uvarint(data, pos)
        if count < 1:
            raise PostingsFormatError("empty block")
        raw_min, pos = _read_uvarint(data, pos)
        if prev_max is None:
            min_tid = _zigzag_decode(raw_min)
        else:
            min_tid = prev_max + raw_min
        span, pos = _read_uvarint(data, pos)
        max_tf, pos = _read_uvarint(data, pos)
        body_len, pos = _read_uvarint(data, pos)
        max_tid = min_tid + span
        headers.append(BlockHeader(count, min_tid, max_tid, max_tf, 0,
                                   body_len))
        prev_max = max_tid
        entries_seen += count
    if entries_seen != total:
        raise PostingsFormatError(
            f"block counts sum to {entries_seen}, header says {total}")
    offset = pos
    for header in headers:
        header.body_offset = offset
        offset += header.body_len
    if offset != len(data):
        raise PostingsFormatError(
            f"body section is {len(data) - pos} bytes, headers claim "
            f"{offset - pos}")
    return _ParsedBlocks(data, headers, total)


def _decode_block(data: bytes, header: BlockHeader) -> Tuple[Posting, ...]:
    pos = header.body_offset
    end = pos + header.body_len
    tid = header.min_tid
    entries: List[Posting] = []
    for _ in range(header.count):
        delta, pos = _read_uvarint(data, pos)
        tf, pos = _read_uvarint(data, pos)
        tid += delta
        entries.append((tid, tf))
    if pos != end:
        raise PostingsFormatError(
            f"block body decoded to {pos - header.body_offset} bytes, "
            f"header says {header.body_len}")
    if tid != header.max_tid:
        raise PostingsFormatError(
            f"block ends at tid {tid}, header says {header.max_tid}")
    return tuple(entries)


def _decode_block_columns(data: bytes,
                          header: BlockHeader) -> Tuple[array, array]:
    """Decode one block body straight into tid/tf ``array('q')`` columns
    — the same varint walk as :func:`_decode_block` without building a
    tuple per entry."""
    pos = header.body_offset
    end = pos + header.body_len
    tid = header.min_tid
    tids = array("q")
    tfs = array("q")
    append_tid = tids.append
    append_tf = tfs.append
    read = _read_uvarint
    for _ in range(header.count):
        delta, pos = read(data, pos)
        tf, pos = read(data, pos)
        tid += delta
        append_tid(tid)
        append_tf(tf)
    if pos != end:
        raise PostingsFormatError(
            f"block body decoded to {pos - header.body_offset} bytes, "
            f"header says {header.body_len}")
    if tid != header.max_tid:
        raise PostingsFormatError(
            f"block ends at tid {tid}, header says {header.max_tid}")
    return tids, tfs


# -- decoded-block cache -----------------------------------------------------


class BlockCache:
    """Size-bounded, thread-safe LRU cache of decoded blocks.

    Keys are ``(payload key, block number)``; values are immutable entry
    tuples, safe to share between readers and threads.  Hit/miss totals
    feed both the instance counters and the ``index.block_cache.*``
    metrics in :mod:`repro.obs.metrics`.
    """

    def __init__(self, capacity: int = DEFAULT_BLOCK_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0: {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, Tuple[Posting, ...]]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: object) -> Optional[Tuple[Posting, ...]]:
        with self._lock:
            entries = self._entries.get(key)
            if entries is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        return entries

    def put(self, key: object, entries: Tuple[Posting, ...]) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = entries
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0


# -- stats plumbing ----------------------------------------------------------


def _stat_add(stats: Optional[object], name: str, amount: int = 1) -> None:
    """Bump a counter attribute on an ``IndexStats``-shaped object, if
    one was supplied (duck-typed so this module stays import-cycle free)."""
    if stats is not None and amount:
        setattr(stats, name, getattr(stats, name) + amount)


# -- lazy reader -------------------------------------------------------------


class BlockPostingsReader:
    """Sequence view over a block-format payload, decoding lazily.

    Implements ``len``/indexing/iteration/equality so it drops into every
    consumer of a plain postings list, plus three skip-aware operations:

    * :meth:`seek` — the galloping-search primitive used by
      ``repro.index.postings._gallop``, skipping whole blocks through the
      skip table before binary-searching inside one;
    * :meth:`clip` — temporal-window restriction returning a narrowed
      view; interior blocks stay encoded until actually consumed;
    * :meth:`max_tf` — a per-view term-frequency bound straight from the
      block headers, never decoding a body.

    Views are immutable and cheap: narrowing shares the parsed skip table,
    the stats sink and the decoded-block cache with the parent.
    """

    __slots__ = ("_parsed", "_start", "_end", "_stats", "_cache",
                 "_cache_key", "_last_block", "_last_entries",
                 "_last_cols_block", "_last_cols")

    def __init__(self, parsed: _ParsedBlocks, start: int, end: int,
                 stats: Optional[object] = None,
                 cache: Optional[BlockCache] = None,
                 cache_key: Optional[object] = None) -> None:
        self._parsed = parsed
        self._start = start
        self._end = end
        self._stats = stats
        self._cache = cache
        self._cache_key = cache_key
        self._last_block: Optional[int] = None
        self._last_entries: Tuple[Posting, ...] = ()
        self._last_cols_block: Optional[Tuple[int, str]] = None
        self._last_cols: Optional[Tuple[Any, Any]] = None

    # -- block plumbing -----------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._parsed.headers)

    def _block_of(self, global_index: int) -> int:
        cum = self._parsed.cum
        last = self._last_block
        if last is not None and cum[last] <= global_index < cum[last + 1]:
            return last
        return bisect_right(cum, global_index) - 1

    def _entries_for(self, block: int) -> Tuple[Posting, ...]:
        if block == self._last_block:
            return self._last_entries
        key = None
        entries: Optional[Tuple[Posting, ...]] = None
        if self._cache is not None and self._cache_key is not None:
            key = (self._cache_key, block)
            entries = self._cache.get(key)
            if entries is not None:
                _stat_add(self._stats, "block_cache_hits")
        if entries is None:
            if key is not None:
                _stat_add(self._stats, "block_cache_misses")
            header = self._parsed.headers[block]
            entries = _decode_block(self._parsed.data, header)
            _stat_add(self._stats, "blocks_decoded")
            _stat_add(self._stats, "bytes_decoded", header.body_len)
            if key is not None and self._cache is not None:
                self._cache.put(key, entries)
        self._last_block = block
        self._last_entries = entries
        return entries

    def _record_skipped(self, blocks: int) -> None:
        if blocks > 0:
            _stat_add(self._stats, "blocks_skipped", blocks)

    # -- sequence protocol --------------------------------------------------

    def __len__(self) -> int:
        return self._end - self._start

    def __bool__(self) -> bool:
        return self._end > self._start

    def __getitem__(self, index: Union[int, slice]
                    ) -> Union[Posting, List[Posting]]:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        size = len(self)
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError(f"postings index out of range: {index}")
        global_index = self._start + index
        block = self._block_of(global_index)
        entries = self._entries_for(block)
        return entries[global_index - self._parsed.cum[block]]

    def __iter__(self) -> Iterator[Posting]:
        cum = self._parsed.cum
        position = self._start
        while position < self._end:
            block = self._block_of(position)
            entries = self._entries_for(block)
            block_start = cum[block]
            stop = min(cum[block + 1], self._end) - block_start
            for offset in range(position - block_start, stop):
                yield entries[offset]
            position = block_start + stop

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (BlockPostingsReader, list, tuple)):
            if len(self) != len(other):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BlockPostingsReader(entries={len(self)}, "
                f"blocks={self.block_count})")

    # -- skip-aware operations ---------------------------------------------

    def seek(self, target: int, start: int) -> int:
        """Smallest view index >= ``start`` whose tid >= ``target`` (or
        ``len(self)``) — the ``_gallop`` contract, but block-skipping:
        blocks whose ``max_tid`` lies below the target are passed over via
        the skip table without decoding."""
        size = len(self)
        if start < 0:
            start = 0
        if start >= size:
            return start
        parsed = self._parsed
        global_index = self._start + start
        block = self._block_of(global_index)
        if parsed.maxes[block] < target:
            landing = bisect_left(parsed.maxes, target, block + 1)
            self._record_skipped(landing - block - 1)
            if landing >= len(parsed.headers):
                return size
            block = landing
            global_index = parsed.cum[block]
        header = parsed.headers[block]
        if target <= header.min_tid:
            result = max(parsed.cum[block], global_index)
        else:
            entries = self._entries_for(block)
            block_start = parsed.cum[block]
            offset = bisect_left(entries, target,
                                 global_index - block_start, key=_TID)
            result = block_start + offset
        if result >= self._end:
            return size
        return result - self._start

    def clip(self, start_tid: Optional[int],
             end_tid: Optional[int]) -> "BlockPostingsReader":
        """Narrowed view over entries with
        ``start_tid <= tid <= end_tid`` (``None`` = unbounded).

        Whole blocks outside the window are discarded via the skip table;
        only the (at most two) boundary blocks are decoded here, and the
        interior stays encoded until consumed.
        """
        if start_tid is None and end_tid is None:
            return self
        parsed = self._parsed
        cum = parsed.cum
        low = self._start
        high = self._end
        skipped = 0
        if start_tid is not None and low < high:
            first = self._block_of(low)
            landing = bisect_left(parsed.maxes, start_tid, first)
            skipped += landing - first
            if landing >= len(parsed.headers):
                low = high
            else:
                header = parsed.headers[landing]
                if start_tid <= header.min_tid:
                    low = max(cum[landing], low)
                else:
                    entries = self._entries_for(landing)
                    base = max(low - cum[landing], 0)
                    low = cum[landing] + bisect_left(entries, start_tid,
                                                     base, key=_TID)
        if end_tid is not None and low < high:
            top = self._block_of(high - 1)
            last = bisect_right(parsed.mins, end_tid) - 1
            if last < self._block_of(low):
                high = low
            else:
                if last < top:
                    skipped += top - last
                else:
                    last = top
                header = parsed.headers[last]
                if header.max_tid <= end_tid:
                    high = min(cum[last + 1], high)
                else:
                    entries = self._entries_for(last)
                    high = min(cum[last] + bisect_right(entries, end_tid,
                                                        key=_TID), high)
        self._record_skipped(skipped)
        if low > high:
            low = high
        view = BlockPostingsReader(parsed, low, high, self._stats,
                                   self._cache, self._cache_key)
        view._last_block = self._last_block
        view._last_entries = self._last_entries
        return view

    # -- columnar access ----------------------------------------------------

    def decode_block_arrays(self, block: int) -> Tuple[Any, Any]:
        """Whole-block ``(tids, tfs)`` columns, decoded straight from the
        varint body — no per-entry tuples.  Columns are numpy ``int64``
        arrays on the numpy backend and ``array('q')`` otherwise
        (:mod:`repro.columnar` decides).

        Decode accounting (``blocks_decoded``/``bytes_decoded``) matches
        the tuple path; the decoded-tuple :class:`BlockCache` is not
        consulted — column consumers stream a view once, so the reader
        keeps only a last-block memo, keyed by backend so a forced
        backend switch (tests) never serves the wrong representation.
        """
        if not 0 <= block < len(self._parsed.headers):
            raise IndexError(f"block index out of range: {block}")
        memo_key = (block, columnar.active_backend())
        if memo_key == self._last_cols_block and self._last_cols is not None:
            return self._last_cols
        header = self._parsed.headers[block]
        tids, tfs = _decode_block_columns(self._parsed.data, header)
        _stat_add(self._stats, "blocks_decoded")
        _stat_add(self._stats, "bytes_decoded", header.body_len)
        cols = (columnar.int_column(tids), columnar.int_column(tfs))
        self._last_cols_block = memo_key
        self._last_cols = cols
        return cols

    def column_view(self) -> Tuple[Any, Any]:
        """The whole view as ``(tids, tfs)`` columns.

        Full blocks contribute their decoded arrays as-is; the (at most
        two) boundary blocks are sliced.  Equivalent to
        ``zip(*self.materialize())`` but without per-entry tuples.
        """
        if self._start >= self._end:
            empty = columnar.int_column(())
            return empty, empty
        parsed = self._parsed
        cum = parsed.cum
        first = self._block_of(self._start)
        last = self._block_of(self._end - 1)
        tid_parts: List[Any] = []
        tf_parts: List[Any] = []
        for block in range(first, last + 1):
            tids, tfs = self.decode_block_arrays(block)
            lo = max(self._start - cum[block], 0)
            hi = min(self._end, cum[block + 1]) - cum[block]
            if lo != 0 or hi != len(tids):
                tids = tids[lo:hi]
                tfs = tfs[lo:hi]
            tid_parts.append(tids)
            tf_parts.append(tfs)
        if len(tid_parts) == 1:
            return tid_parts[0], tf_parts[0]
        np = columnar.numpy_module()
        if np is not None:
            return np.concatenate(tid_parts), np.concatenate(tf_parts)
        tids_out = array("q")
        tfs_out = array("q")
        for tids, tfs in zip(tid_parts, tf_parts):
            tids_out.extend(tids)
            tfs_out.extend(tfs)
        return tids_out, tfs_out

    def max_tf(self) -> int:
        """Largest per-block ``max_tf`` header over the view's blocks — an
        upper bound on any tf in the view, computed without decoding."""
        if self._start >= self._end:
            return 0
        first = self._block_of(self._start)
        last = self._block_of(self._end - 1)
        return max(header.max_tf
                   for header in self._parsed.headers[first:last + 1])

    def materialize(self) -> List[Posting]:
        """Decode the whole view into a plain list."""
        return list(self)


# -- version dispatch --------------------------------------------------------

PostingsView = Union[BlockPostingsReader, Tuple[Posting, ...]]


def open_postings(data: bytes, *, stats: Optional[object] = None,
                  cache: Optional[BlockCache] = None,
                  cache_key: Optional[object] = None) -> PostingsView:
    """Open a serialised postings payload in whichever format it uses.

    Block-format payloads (leading ``MAGIC``/version bytes) return a lazy
    :class:`BlockPostingsReader`; legacy flat payloads decode eagerly
    into an immutable tuple.  A payload matching neither format raises
    :class:`PostingsFormatError`.
    """
    if len(data) >= 2 and data[0] == MAGIC and data[1] == FORMAT_VERSION:
        try:
            parsed = _parse_blocks(data)
        except PostingsFormatError:
            # A legacy flat payload can open with the magic bytes by
            # coincidence (they would sit inside the first entry's tid);
            # only a clean 12-byte multiple falls back.
            if len(data) % ENTRY_SIZE == 0:
                return _open_flat(data, stats)
            raise
        return BlockPostingsReader(parsed, 0, parsed.total, stats, cache,
                                   cache_key)
    if len(data) % ENTRY_SIZE == 0:
        return _open_flat(data, stats)
    raise PostingsFormatError(
        f"unrecognised postings payload of {len(data)} bytes")


def _open_flat(data: bytes, stats: Optional[object]) -> Tuple[Posting, ...]:
    postings = tuple(decode_postings(data))
    _stat_add(stats, "bytes_decoded", len(data))
    return postings


def decode_any(data: bytes) -> List[Posting]:
    """Fully decode a payload in either format into a plain list."""
    view = open_postings(data)
    return list(view)


__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BLOCK_CACHE_SIZE",
    "PostingsFormatError",
    "encode_postings_blocks",
    "BlockHeader",
    "BlockCache",
    "BlockPostingsReader",
    "open_postings",
    "decode_any",
]
