"""The hybrid spatial-keyword index of Section IV-B.

Forward index in memory, inverted index on the (simulated) DFS, built by
the MapReduce job of Algorithms 2-3.
"""

from .blocks import (
    DEFAULT_BLOCK_SIZE,
    BlockCache,
    BlockPostingsReader,
    PostingsFormatError,
    encode_postings_blocks,
    open_postings,
)
from .builder import (
    IndexConfig,
    IndexMapper,
    IndexReducer,
    build_hybrid_index,
    rebuild_forward_index,
    run_index_job,
    write_partitions,
)
from .forward import ForwardIndex, PostingsRef
from .hybrid import HybridIndex, IndexStats
from .postings import (
    ENTRY_SIZE,
    Posting,
    decode_postings,
    encode_postings,
    intersect_many,
    intersect_two,
    merge_postings,
    union_many,
)

__all__ = [
    "BlockCache",
    "BlockPostingsReader",
    "DEFAULT_BLOCK_SIZE",
    "ENTRY_SIZE",
    "ForwardIndex",
    "PostingsFormatError",
    "encode_postings_blocks",
    "open_postings",
    "HybridIndex",
    "IndexConfig",
    "IndexMapper",
    "IndexReducer",
    "IndexStats",
    "Posting",
    "PostingsRef",
    "build_hybrid_index",
    "decode_postings",
    "encode_postings",
    "intersect_many",
    "intersect_two",
    "merge_postings",
    "rebuild_forward_index",
    "run_index_job",
    "union_many",
    "write_partitions",
]
