"""Periodic batch ingestion: generational hybrid indexes.

Section IV-A: "we can periodically (e.g., one day) collect the spatial
tweets and then build the index for these tweets" — the system is
batch-oriented, so new data arrives as whole batches, not single-tweet
updates (contrast with the real-time systems of Section VII-B).

:class:`GenerationalIndex` implements that lifecycle:

* ``ingest(posts)`` — builds a fresh hybrid-index *generation* for the
  batch (its own MapReduce job and DFS part files under a per-generation
  prefix) and appends the batch's records to the shared metadata
  database;
* ``postings(cell, term)`` — merges the tid-sorted postings of every
  live generation (tweets are globally unique, so the merge is a simple
  sorted union);
* ``compact()`` — rebuilds all live generations into a single one,
  reclaiming per-generation lookup overhead (the paper's daily rebuild);
* ``compaction_scheduler()`` — the incremental alternative: a
  :class:`~repro.compaction.CompactionScheduler` running a size-tiered
  (or leveled) policy over this index, merging a few generations at a
  time instead of rebuilding the world.

Reads resolve through an immutable generation-set snapshot owned by a
:class:`~repro.compaction.GenerationRegistry`: a query pins the set it
starts with, a concurrent compaction commit swaps in the replacement
set atomically, and the superseded generations' DFS files are deleted
only once no pinned reader can still reach them.  Queries through
:class:`GenerationalIndex` are answer-identical to a single monolithic
build over the concatenated batches — a fact the tests verify.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..compaction import (CompactionConfig, CompactionPlan,
                          CompactionScheduler, GenerationInfo,
                          GenerationRegistry, GenerationState)
from ..compaction.lifecycle import advance_state
from ..compaction.scheduler import CompactionExecutor
from ..core.model import Post
from ..dfs.cluster import DFSCluster
from ..geo.cover import circle_cover
from ..geo.distance import DEFAULT_METRIC, Metric
from ..text.analyzer import Analyzer
from .builder import IndexConfig, build_hybrid_index
from .hybrid import HybridIndex, IndexStats
from .postings import Posting, merge_postings


@dataclass
class Generation:
    """One ingested batch (or the merged output of a compaction).

    ``posts`` retains the batch itself (immutable) when the owning
    index runs with ``retain_batches=True`` — what makes ``compact()``
    self-sufficient; ``None`` when retention is off.

    ``tier``/``seq``/``size_bytes`` are the compaction policy's
    planning metadata (flushes land in tier 0; merges promote upward;
    ``seq`` is global creation order).  ``state`` tracks the lifecycle
    (active → compacting → superseded → removed) and
    ``source_generations`` records merge lineage."""

    number: int
    index: HybridIndex
    post_count: int
    posts: Optional[Tuple[Post, ...]] = None
    tier: int = 0
    seq: int = 0
    size_bytes: int = 0
    state: GenerationState = GenerationState.ACTIVE
    source_generations: Tuple[int, ...] = ()

    def advance(self, target: GenerationState) -> None:
        """Move to ``target``, validating the transition."""
        self.state = advance_state(self.state, target)

    def info(self) -> GenerationInfo:
        return GenerationInfo(number=self.number, tier=self.tier,
                              seq=self.seq, size_bytes=self.size_bytes,
                              post_count=self.post_count)


class _BatchExecutor(CompactionExecutor):
    """Adapter exposing a :class:`GenerationalIndex` to the scheduler."""

    def __init__(self, owner: "GenerationalIndex") -> None:
        self.owner = owner

    def generation_infos(self) -> List[GenerationInfo]:
        return [generation.info() for generation in self.owner.registry
                if generation.state is GenerationState.ACTIVE]

    def begin_compaction(self, plan: CompactionPlan) -> None:
        for generation in self.owner._generations_by_number(plan.inputs):
            generation.advance(GenerationState.COMPACTING)

    def abort_compaction(self, plan: CompactionPlan) -> None:
        for generation in self.owner._generations_by_number(plan.inputs):
            generation.advance(GenerationState.ACTIVE)

    def load_generation_posts(self, number: int) -> Sequence[Post]:
        (generation,) = self.owner._generations_by_number([number])
        if generation.posts is None:
            raise ValueError(
                f"compaction needs retained batches, but generation "
                f"{number} was ingested with retain_batches=False")
        return generation.posts

    def commit_compaction(self, plan: CompactionPlan,
                          posts: Sequence[Post]) -> int:
        inputs = self.owner._generations_by_number(plan.inputs)
        output = self.owner._build_generation(
            list(posts), tier=plan.output_tier,
            sources=tuple(plan.inputs))
        self.owner._commit_merge(inputs, output)
        return output.number

    def reclaim(self) -> int:
        return self.owner.registry.drain()

    def ingest_pressure(self) -> float:
        return 0.0  # the batch layer has no memtable to protect


class GenerationalIndex:
    """A stack of hybrid-index generations with merged query access.

    Exposes the same query surface as :class:`HybridIndex`
    (``cover`` / ``postings`` / ``postings_for_query``), so the query
    processors can run against it unchanged.
    """

    def __init__(self, cluster: DFSCluster,
                 analyzer: Optional[Analyzer] = None,
                 config: Optional[IndexConfig] = None,
                 retain_batches: bool = True) -> None:
        self.cluster = cluster
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.base_config = config if config is not None else IndexConfig()
        self.retain_batches = retain_batches
        self.registry = GenerationRegistry()
        self._next_number = 0
        self._next_seq = 0
        self.compactions = 0
        # Read-amplification accounting for lookups through this index
        # (per-generation fetch counters live on the member indexes).
        # Queries may run on several threads at once (scatter-gather,
        # the dashboard), so increments take the stats lock — bare
        # ``+=`` on two threads loses updates.
        self._stats_lock = threading.Lock()
        self._merge_stats = IndexStats()  # guarded-by: _stats_lock

    # -- lifecycle ----------------------------------------------------------

    def _generation_config(self, number: int) -> IndexConfig:
        return IndexConfig(
            geohash_length=self.base_config.geohash_length,
            num_map_tasks=self.base_config.num_map_tasks,
            num_reduce_tasks=self.base_config.num_reduce_tasks,
            workers=self.base_config.workers,
            output_prefix=f"{self.base_config.output_prefix}/gen-{number:05d}",
            partitioning=self.base_config.partitioning,
            postings_format=self.base_config.postings_format,
            block_size=self.base_config.block_size,
        )

    def _build_generation(self, posts: List[Post], tier: int,
                          sources: Tuple[int, ...] = ()) -> Generation:
        """Build a generation's index and metadata without publishing it
        to the registry — the caller decides how it enters the set."""
        if not posts:
            raise ValueError("cannot build an empty generation")
        number = self._next_number
        self._next_number += 1
        seq = self._next_seq
        self._next_seq += 1
        config = self._generation_config(number)
        forward, _result = build_hybrid_index(posts, self.cluster,
                                              self.analyzer, config)
        index = HybridIndex(forward, self.cluster, config, self.analyzer)
        return Generation(
            number=number, index=index, post_count=len(posts),
            posts=tuple(posts) if self.retain_batches else None,
            tier=tier, seq=seq,
            size_bytes=index.inverted_size_bytes() + index.forward_size_bytes(),
            source_generations=sources)

    def ingest(self, posts: Iterable[Post]) -> Generation:
        """Build one new tier-0 generation from a batch of posts."""
        posts = list(posts)
        if not posts:
            raise ValueError("cannot ingest an empty batch")
        generation = self._build_generation(posts, tier=0)
        self.registry.append(generation)
        return generation

    def restore_generation(self, generation: Generation) -> None:
        """Re-publish a generation rebuilt from persisted state (the
        :mod:`repro.query.persistence` load path).  Advances the number
        and seq counters past the restored metadata."""
        self._next_number = max(self._next_number, generation.number + 1)
        self._next_seq = max(self._next_seq, generation.seq + 1)
        self.registry.append(generation)

    @property
    def generations(self) -> List[Generation]:
        return list(self.registry.items)

    @property
    def generation_count(self) -> int:
        return len(self.registry)

    @property
    def post_count(self) -> int:
        return sum(generation.post_count for generation in self.registry)

    def _generations_by_number(self, numbers: Iterable[int]
                               ) -> List[Generation]:
        by_number = {generation.number: generation
                     for generation in self.registry.items}
        try:
            return [by_number[number] for number in numbers]
        except KeyError as exc:
            raise ValueError(
                f"unknown generation number {exc.args[0]}") from None

    # -- queries (HybridIndex-compatible surface) ----------------------------

    @property
    def geohash_length(self) -> int:
        return self.base_config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km,
                            self.base_config.geohash_length, metric)

    def _merged_postings(self, generations: Sequence[Generation],
                         cell: str, term: str) -> Sequence[Posting]:
        per_generation = [generation.index.postings(cell, term)
                          for generation in generations]
        non_empty = [postings for postings in per_generation if postings]
        with self._stats_lock:
            self._merge_stats.generations_probed += len(generations)
            self._merge_stats.postings_sources_merged += len(non_empty)
        if not non_empty:
            return ()
        if len(non_empty) == 1:
            return non_empty[0]
        return merge_postings(non_empty)

    def postings(self, cell: str, term: str) -> Sequence[Posting]:
        """Merged tid-sorted postings across all generations.

        A single live generation hands through its (lazy, immutable)
        view untouched; multiple generations merge into a fresh list."""
        with self.registry.pinned() as generations:
            return self._merged_postings(generations, cell, term)

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        """All (cell, term) postings under **one** pinned generation
        set, so a concurrent compaction commit cannot give different
        lookups of the same query different views."""
        result: Dict[str, Dict[str, Sequence[Posting]]] = {}
        with self.registry.pinned() as generations:
            for cell in cells:
                per_term: Dict[str, Sequence[Posting]] = {}
                for term in terms:
                    postings = self._merged_postings(generations, cell, term)
                    if postings:
                        per_term[term] = postings
                if per_term:
                    result[cell] = per_term
        return result

    def postings_fetch_count(self) -> int:
        """Summed fetch counter across generations (the
        ``PostingsSource`` accounting hook)."""
        return sum(generation.index.stats.postings_fetches
                   for generation in self.registry)

    # -- compaction ---------------------------------------------------------

    def _reclaimer(self, generation: Generation) -> Callable[[], None]:
        def _reclaim() -> None:
            generation.advance(GenerationState.REMOVED)
            prefix = generation.index.config.output_prefix
            for path in self.cluster.list_files(prefix):
                self.cluster.delete(path)
        return _reclaim

    def _commit_merge(self, inputs: Sequence[Generation],
                      output: Generation) -> None:
        """Swap ``inputs -> output`` in the current set and queue the
        inputs for file reclamation once unpinned."""
        for generation in inputs:
            generation.advance(GenerationState.SUPERSEDED)
        superseded = {generation.number for generation in inputs}
        survivors = [generation for generation in self.registry.items
                     if generation.number not in superseded]
        self.registry.swap(
            survivors + [output],
            retired=[(generation, self._reclaimer(generation))
                     for generation in inputs])
        self.compactions += 1

    def compact(self) -> Generation:
        """Merge all generations into one fresh build (the paper's
        daily rebuild).  Old generations' DFS files are reclaimed once
        no pinned reader can still reach them (immediately, when there
        are no outstanding pins).

        The rebuild concatenates the retained per-generation batches,
        so callers do not re-supply every post they ever ingested.
        """
        old = list(self.registry.items)
        missing = [generation.number for generation in old
                   if generation.posts is None]
        if missing:
            raise ValueError(
                "compact() needs retained batches, but generations "
                f"{missing} were ingested with retain_batches=False — "
                "re-ingest with retention enabled or use the ingest "
                "service's durable compaction")
        posts = [post for generation in old
                 for post in generation.posts or ()]
        if not posts:
            raise ValueError("nothing to compact: no posts ingested")
        for generation in old:
            generation.advance(GenerationState.COMPACTING)
        output = self._build_generation(
            posts, tier=max(generation.tier for generation in old) + 1,
            sources=tuple(generation.number for generation in old))
        self._commit_merge(old, output)
        return output

    def compaction_scheduler(self, config: Optional[CompactionConfig] = None
                             ) -> CompactionScheduler:
        """An incremental scheduler bound to this index: size-tiered or
        leveled merges of a few generations at a time, instead of
        ``compact()``'s full rebuild."""
        return CompactionScheduler(_BatchExecutor(self), config)

    def pending_reclaim(self) -> int:
        return self.registry.pending_reclaim()

    # -- reporting ----------------------------------------------------------

    def inverted_size_bytes(self) -> int:
        return sum(generation.index.inverted_size_bytes()
                   for generation in self.registry)

    def forward_size_bytes(self) -> int:
        return sum(generation.index.forward_size_bytes()
                   for generation in self.registry)

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._merge_stats.reset()
        for generation in self.registry:
            generation.index.reset_stats()

    @property
    def stats(self) -> IndexStats:
        """Aggregate per-generation fetch statistics plus this index's
        own merge accounting (read amplification).

        Returned as an :class:`~repro.index.hybrid.IndexStats` so callers
        (e.g. the query profiler) can use ``snapshot()``/``diff()``
        exactly as with a monolithic index.
        """
        total = IndexStats()
        snapshots = [generation.index.stats.snapshot()
                     for generation in self.registry]
        with self._stats_lock:
            snapshots.append(self._merge_stats.snapshot())
        for snapshot in snapshots:
            for field_name, value in snapshot.items():
                setattr(total, field_name,
                        getattr(total, field_name) + value)
        return total
