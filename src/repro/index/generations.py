"""Periodic batch ingestion: generational hybrid indexes.

Section IV-A: "we can periodically (e.g., one day) collect the spatial
tweets and then build the index for these tweets" — the system is
batch-oriented, so new data arrives as whole batches, not single-tweet
updates (contrast with the real-time systems of Section VII-B).

:class:`GenerationalIndex` implements that lifecycle:

* ``ingest(posts)`` — builds a fresh hybrid-index *generation* for the
  batch (its own MapReduce job and DFS part files under a per-generation
  prefix) and appends the batch's records to the shared metadata
  database;
* ``postings(cell, term)`` — merges the tid-sorted postings of every
  live generation (tweets are globally unique, so the merge is a simple
  sorted union);
* ``compact()`` — rebuilds all live generations into a single one,
  reclaiming per-generation lookup overhead (the paper's daily rebuild).

Queries through :class:`GenerationalIndex` are answer-identical to a
single monolithic build over the concatenated batches — a fact the tests
verify.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.model import Post
from ..dfs.cluster import DFSCluster
from ..geo.cover import circle_cover
from ..geo.distance import DEFAULT_METRIC, Metric
from ..text.analyzer import Analyzer
from .builder import IndexConfig, build_hybrid_index
from .hybrid import HybridIndex, IndexStats
from .postings import Posting, merge_postings


@dataclass
class Generation:
    """One ingested batch.

    ``posts`` retains the batch itself (immutable) when the owning
    index runs with ``retain_batches=True`` — what makes ``compact()``
    self-sufficient; ``None`` when retention is off."""

    number: int
    index: HybridIndex
    post_count: int
    posts: Optional[Tuple[Post, ...]] = None


class GenerationalIndex:
    """A stack of hybrid-index generations with merged query access.

    Exposes the same query surface as :class:`HybridIndex`
    (``cover`` / ``postings`` / ``postings_for_query``), so the query
    processors can run against it unchanged.
    """

    def __init__(self, cluster: DFSCluster,
                 analyzer: Optional[Analyzer] = None,
                 config: Optional[IndexConfig] = None,
                 retain_batches: bool = True) -> None:
        self.cluster = cluster
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.base_config = config if config is not None else IndexConfig()
        self.retain_batches = retain_batches
        self._generations: List[Generation] = []
        self._next_number = 0
        self.compactions = 0

    # -- lifecycle ----------------------------------------------------------

    def _generation_config(self, number: int) -> IndexConfig:
        return IndexConfig(
            geohash_length=self.base_config.geohash_length,
            num_map_tasks=self.base_config.num_map_tasks,
            num_reduce_tasks=self.base_config.num_reduce_tasks,
            workers=self.base_config.workers,
            output_prefix=f"{self.base_config.output_prefix}/gen-{number:05d}",
            partitioning=self.base_config.partitioning,
            postings_format=self.base_config.postings_format,
            block_size=self.base_config.block_size,
        )

    def ingest(self, posts: Iterable[Post]) -> Generation:
        """Build one new generation from a batch of posts."""
        posts = list(posts)
        if not posts:
            raise ValueError("cannot ingest an empty batch")
        number = self._next_number
        self._next_number += 1
        config = self._generation_config(number)
        forward, _result = build_hybrid_index(posts, self.cluster,
                                              self.analyzer, config)
        index = HybridIndex(forward, self.cluster, config, self.analyzer)
        generation = Generation(number, index, len(posts),
                                tuple(posts) if self.retain_batches else None)
        self._generations.append(generation)
        return generation

    @property
    def generations(self) -> List[Generation]:
        return list(self._generations)

    @property
    def generation_count(self) -> int:
        return len(self._generations)

    @property
    def post_count(self) -> int:
        return sum(generation.post_count for generation in self._generations)

    # -- queries (HybridIndex-compatible surface) ----------------------------

    @property
    def geohash_length(self) -> int:
        return self.base_config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        return circle_cover(location, radius_km,
                            self.base_config.geohash_length, metric)

    def postings(self, cell: str, term: str) -> Sequence[Posting]:
        """Merged tid-sorted postings across all generations.

        A single live generation hands through its (lazy, immutable)
        view untouched; multiple generations merge into a fresh list."""
        per_generation = [generation.index.postings(cell, term)
                          for generation in self._generations]
        non_empty = [postings for postings in per_generation if postings]
        if not non_empty:
            return ()
        if len(non_empty) == 1:
            return non_empty[0]
        return merge_postings(non_empty)

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        result: Dict[str, Dict[str, Sequence[Posting]]] = {}
        for cell in cells:
            per_term: Dict[str, Sequence[Posting]] = {}
            for term in terms:
                postings = self.postings(cell, term)
                if postings:
                    per_term[term] = postings
            if per_term:
                result[cell] = per_term
        return result

    def postings_fetch_count(self) -> int:
        """Summed fetch counter across generations (the
        ``PostingsSource`` accounting hook)."""
        return sum(generation.index.stats.postings_fetches
                   for generation in self._generations)

    # -- compaction ------------------------------------------------------------

    def compact(self, posts: Optional[Iterable[Post]] = None) -> Generation:
        """Merge all generations into one fresh build (the paper's
        daily rebuild).  Old generations' DFS files are deleted.

        With no argument the rebuild concatenates the retained
        per-generation batches, so callers no longer have to re-supply
        every post they ever ingested.  Passing ``posts`` explicitly is
        deprecated (the historical API, which forced callers to keep
        their own copy of the corpus) but still honoured as an
        override.
        """
        if posts is not None:
            warnings.warn(
                "compact(posts) is deprecated: GenerationalIndex retains "
                "its batches and compact() with no argument rebuilds "
                "from them",
                DeprecationWarning, stacklevel=2)
            posts = list(posts)
        else:
            missing = [generation.number for generation in self._generations
                       if generation.posts is None]
            if missing:
                raise ValueError(
                    "compact() needs retained batches, but generations "
                    f"{missing} were ingested with retain_batches=False — "
                    "pass the posts explicitly")
            posts = [post for generation in self._generations
                     for post in generation.posts or ()]
        if not posts:
            raise ValueError("nothing to compact: no posts ingested")
        old = self._generations
        self._generations = []
        generation = self.ingest(posts)
        for stale in old:
            prefix = stale.index.config.output_prefix
            for path in self.cluster.list_files(prefix):
                self.cluster.delete(path)
        self.compactions += 1
        return generation

    # -- reporting ----------------------------------------------------------

    def inverted_size_bytes(self) -> int:
        return sum(generation.index.inverted_size_bytes()
                   for generation in self._generations)

    def forward_size_bytes(self) -> int:
        return sum(generation.index.forward_size_bytes()
                   for generation in self._generations)

    def reset_stats(self) -> None:
        for generation in self._generations:
            generation.index.reset_stats()

    @property
    def stats(self) -> IndexStats:
        """Aggregate per-generation fetch statistics.

        Returned as an :class:`~repro.index.hybrid.IndexStats` so callers
        (e.g. the query profiler) can use ``snapshot()``/``diff()``
        exactly as with a monolithic index.
        """
        total = IndexStats()
        for generation in self._generations:
            snapshot = generation.index.stats.snapshot()
            for field_name, value in snapshot.items():
                setattr(total, field_name,
                        getattr(total, field_name) + value)
        return total
