"""Geohash range partitioning and the data-locality experiment.

Section IV-B1: "data indexed by geohash will have all points for a given
rectangular area in contiguous slices. In a distributed environment,
data indexed by geohash will have all points for a given rectangular
area in one computer. Such advantage could save I/O and communication
cost in query evaluation."

The default MapReduce partitioner hashes ``(geohash, term)`` keys, which
scatters a query region's postings across every part file (and hence
every datanode).  :class:`GeohashRangePartitioner` instead range-
partitions on the geohash, so one query's cover cells concentrate in
one or two part files — the locality the paper banks on.

:func:`measure_query_locality` quantifies the difference: for a query
workload, it reports how many distinct part files and datanodes each
query touches under a given index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dfs.cluster import DFSCluster
from ..geo.geohash import BASE32
from ..mapreduce.types import Partitioner
from .hybrid import HybridIndex

_CHAR_RANK = {char: rank for rank, char in enumerate(BASE32)}


class GeohashRangePartitioner(Partitioner):
    """Range-partitions composite ``(geohash, term)`` keys on the
    geohash's position in Z-order.

    The geohash string is read as a base-32 fraction in [0, 1); the
    partition is that fraction scaled by the partition count.  Nearby
    cells — sharing prefixes — therefore land in the same partition,
    keeping a query region's postings contiguous.
    """

    def partition(self, key, num_partitions: int) -> int:
        geohash = key[0] if isinstance(key, tuple) else str(key)
        fraction = 0.0
        scale = 1.0 / 32.0
        for char in geohash:
            rank = _CHAR_RANK.get(char)
            if rank is None:
                raise ValueError(f"non-geohash character {char!r} in key {key!r}")
            fraction += rank * scale
            scale /= 32.0
        index = int(fraction * num_partitions)
        return min(index, num_partitions - 1)


@dataclass
class LocalityReport:
    """Per-query locality statistics, averaged over a workload."""

    queries: int
    mean_part_files: float
    mean_datanodes: float
    max_part_files: int
    max_datanodes: int

    def as_row(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "mean_part_files": self.mean_part_files,
            "mean_datanodes": self.mean_datanodes,
            "max_part_files": self.max_part_files,
            "max_datanodes": self.max_datanodes,
        }


def _datanode_read_counts(cluster: DFSCluster) -> Dict[str, int]:
    return {node.node_id: node.stats.blocks_read + node.stats.partial_reads
            for node in cluster.datanodes}


def measure_query_locality(index: HybridIndex,
                           queries: Sequence[Tuple[Tuple[float, float],
                                                   float, List[str]]]
                           ) -> LocalityReport:
    """For each ``(location, radius_km, terms)`` query, fetch all its
    postings and record how many distinct part files and datanodes
    served it."""
    part_file_counts: List[int] = []
    datanode_counts: List[int] = []
    for location, radius_km, terms in queries:
        cells = index.cover(location, radius_km)
        before = _datanode_read_counts(index.cluster)
        paths = set()
        for cell in cells:
            for term in terms:
                ref = index.forward.lookup(cell, term)
                if ref is None:
                    continue
                paths.add(ref.path)
                index.postings(cell, term)
        after = _datanode_read_counts(index.cluster)
        touched = sum(1 for node_id in after
                      if after[node_id] > before.get(node_id, 0))
        part_file_counts.append(len(paths))
        datanode_counts.append(touched)
    count = len(queries)
    if count == 0:
        return LocalityReport(0, 0.0, 0.0, 0, 0)
    return LocalityReport(
        queries=count,
        mean_part_files=sum(part_file_counts) / count,
        mean_datanodes=sum(datanode_counts) / count,
        max_part_files=max(part_file_counts),
        max_datanodes=max(datanode_counts),
    )
