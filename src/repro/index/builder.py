"""MapReduce construction of the hybrid index (Algorithms 2 and 3).

* :class:`IndexMapper` — Algorithm 2: tokenize and stem the post content,
  filter stop words, count term frequencies, geohash the post location,
  and emit ``((geohash, term), (timestamp, tf))``.
* :class:`IndexReducer` — Algorithm 3: gather the postings of each
  ``(geohash, term)`` key, sort them by timestamp, and emit the list.
* :func:`build_hybrid_index` — runs the job, writes each reduce
  partition's (key-sorted) postings into a DFS part file, and builds the
  in-memory forward index recording each list's position, mirroring the
  second MapReduce job of Section IV-B2.

Because reduce output is key-sorted and keys lead with the geohash,
postings for nearby cells with the same prefix land contiguously in the
part files — the locality property the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.model import Post
from ..dfs.cluster import DFSCluster
from ..geo import geohash as geohash_mod
from ..mapreduce import Job, JobResult, Mapper, MapReduceRuntime, Reducer
from ..text.analyzer import Analyzer
from .forward import ForwardIndex, PostingsRef
from .postings import Posting, encode_postings


@dataclass(frozen=True)
class IndexConfig:
    """Knobs of the hybrid index build.

    ``partitioning`` selects how ``(geohash, term)`` keys map to reduce
    partitions (and hence part files): ``"hash"`` scatters keys evenly,
    ``"range"`` keeps nearby cells in the same partition — the locality
    layout Section IV-B1 argues for (see :mod:`repro.index.locality`).

    ``postings_format`` picks the on-DFS payload encoding: ``"block"``
    (the default) writes the versioned block format of
    :mod:`repro.index.blocks`; ``"flat"`` writes the legacy raw 12-byte
    entries.  Readers dispatch per payload, so either format (and a mix,
    across index generations) stays queryable.
    """

    geohash_length: int = 4
    num_map_tasks: int = 4
    num_reduce_tasks: int = 4
    workers: int = 1
    output_prefix: str = "/index"
    partitioning: str = "hash"
    postings_format: str = "block"
    block_size: int = 128

    def __post_init__(self) -> None:
        if not 1 <= self.geohash_length <= geohash_mod.MAX_LENGTH:
            raise ValueError(f"geohash_length out of range: {self.geohash_length}")
        if self.partitioning not in ("hash", "range"):
            raise ValueError(
                f"partitioning must be 'hash' or 'range': {self.partitioning!r}")
        if self.postings_format not in ("block", "flat"):
            raise ValueError(
                f"postings_format must be 'block' or 'flat': "
                f"{self.postings_format!r}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1: {self.block_size}")

    def encode_payload(self, postings: List[Posting]) -> bytes:
        """Serialise one postings list under the configured format."""
        if self.postings_format == "flat":
            return encode_postings(postings)
        from .blocks import encode_postings_blocks
        return encode_postings_blocks(postings, self.block_size)


class IndexMapper(Mapper):
    """Algorithm 2.  Input records are ``(sid, Post)``; emits
    ``((geohash, term), (timestamp, tf))``."""

    def __init__(self, analyzer: Analyzer, geohash_length: int) -> None:
        self._analyzer = analyzer
        self._length = geohash_length

    def map(self, key, value, emit, context) -> None:
        post: Post = value
        # Posts may arrive pre-analysed (words already normalised) or raw.
        if post.words:
            frequencies = post.word_bag()
        else:
            frequencies = self._analyzer.term_frequencies(post.text)
        if not frequencies:
            return
        lat, lon = post.location
        cell = geohash_mod.encode(lat, lon, self._length)
        for term, tf in frequencies.items():
            emit((cell, term), (post.timestamp, tf))


class IndexReducer(Reducer):
    """Algorithm 3: sort each key's postings by timestamp and emit the
    final list."""

    def reduce(self, key, values, emit, context) -> None:
        postings: List[Posting] = sorted(values)
        emit(key, postings)


def run_index_job(posts: Iterable[Post], analyzer: Analyzer,
                  config: IndexConfig) -> JobResult:
    """Run the Algorithm 2/3 MapReduce job and return its raw result."""
    inputs = [(post.sid, post) for post in posts]
    if config.partitioning == "range":
        from .locality import GeohashRangePartitioner
        partitioner = GeohashRangePartitioner()
    else:
        from ..mapreduce.types import HashPartitioner
        partitioner = HashPartitioner()
    job = Job(
        name="hybrid-index-build",
        mapper_factory=lambda: IndexMapper(analyzer, config.geohash_length),
        reducer_factory=IndexReducer,
        inputs=inputs,
        num_map_tasks=config.num_map_tasks,
        num_reduce_tasks=config.num_reduce_tasks,
        partitioner=partitioner,
    )
    return MapReduceRuntime(workers=config.workers).run(job)


def write_partitions(result: JobResult, cluster: DFSCluster,
                     config: IndexConfig) -> ForwardIndex:
    """Write each reduce partition to a DFS part file and build the
    forward index of postings-list positions (the second MapReduce job
    of Section IV-B2, which "keeps track of the position of each
    postings list in HDFS")."""
    forward = ForwardIndex()
    for partition_no, pairs in enumerate(result.outputs):
        path = f"{config.output_prefix}/part-{partition_no:05d}"
        with cluster.create(path) as writer:
            for (cell, term), postings in pairs:
                data = config.encode_payload(postings)
                offset = writer.write(data)
                forward.add(cell, term,
                            PostingsRef(path, offset, len(data), len(postings)))
    return forward


def build_hybrid_index(posts: Iterable[Post], cluster: DFSCluster,
                       analyzer: Optional[Analyzer] = None,
                       config: Optional[IndexConfig] = None
                       ) -> Tuple[ForwardIndex, JobResult]:
    """End-to-end index construction: MapReduce build + DFS write +
    forward index.  Returns ``(forward_index, job_result)`` — the job
    result carries the counters experiments report."""
    if analyzer is None:
        analyzer = Analyzer()
    if config is None:
        config = IndexConfig()
    result = run_index_job(posts, analyzer, config)
    forward = write_partitions(result, cluster, config)
    return forward, result


def rebuild_forward_index(cluster: DFSCluster, result: JobResult,
                          config: IndexConfig) -> ForwardIndex:
    """Reconstruct the forward index by re-scanning the part files'
    logical layout.  Exercises the recovery path: positions are recomputed
    from list lengths in partition order, then verified against the DFS
    file sizes."""
    forward = ForwardIndex()
    for partition_no, pairs in enumerate(result.outputs):
        path = f"{config.output_prefix}/part-{partition_no:05d}"
        offset = 0
        for (cell, term), postings in pairs:
            data_length = len(config.encode_payload(postings))
            forward.add(cell, term,
                        PostingsRef(path, offset, data_length, len(postings)))
            offset += data_length
        actual = cluster.file_size(path)
        if actual != offset:
            raise RuntimeError(
                f"forward-index rebuild mismatch for {path}: "
                f"computed {offset} bytes, file has {actual}")
    return forward
