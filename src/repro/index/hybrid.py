"""The hybrid index facade used by query processing.

Bundles the in-memory forward index, the DFS cluster holding the inverted
index, and the build configuration.  Query algorithms call
:meth:`HybridIndex.postings` per ``(cell, keyword)`` pair (Algorithms 4/5,
line 6); reads go through DFS positional reads, with an optional
postings cache (the paper switches HDFS caches *off* for its experiments,
so the cache defaults to disabled).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..core.model import Post
from ..dfs.cluster import DFSCluster
from ..geo.cover import circle_cover
from ..geo.distance import DEFAULT_METRIC, Metric
from ..text.analyzer import Analyzer
from .blocks import DEFAULT_BLOCK_CACHE_SIZE, BlockCache, open_postings
from .builder import IndexConfig, build_hybrid_index
from .forward import ForwardIndex
from .postings import Posting


@dataclass
class IndexStats:
    """Counters for one index instance's query-time behaviour."""

    postings_fetches: int = 0
    postings_entries_read: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    bytes_decoded: int = 0
    blocks_decoded: int = 0
    blocks_skipped: int = 0
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    # Read amplification — incremented by the multi-source indexes
    # (GenerationalIndex, LiveIndex) that merge per-generation postings.
    generations_probed: int = 0
    postings_sources_merged: int = 0

    def reset(self) -> None:
        self.postings_fetches = 0
        self.postings_entries_read = 0
        self.bytes_read = 0
        self.cache_hits = 0
        self.bytes_decoded = 0
        self.blocks_decoded = 0
        self.blocks_skipped = 0
        self.block_cache_hits = 0
        self.block_cache_misses = 0
        self.generations_probed = 0
        self.postings_sources_merged = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "postings_fetches": self.postings_fetches,
            "postings_entries_read": self.postings_entries_read,
            "bytes_read": self.bytes_read,
            "cache_hits": self.cache_hits,
            "bytes_decoded": self.bytes_decoded,
            "blocks_decoded": self.blocks_decoded,
            "blocks_skipped": self.blocks_skipped,
            "block_cache_hits": self.block_cache_hits,
            "block_cache_misses": self.block_cache_misses,
            "generations_probed": self.generations_probed,
            "postings_sources_merged": self.postings_sources_merged,
        }

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since an earlier :meth:`snapshot` (per-query
        accounting without resetting session totals)."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}


class HybridIndex:
    """Forward index (RAM) + inverted index (DFS)."""

    def __init__(self, forward: ForwardIndex, cluster: DFSCluster,
                 config: IndexConfig, analyzer: Analyzer,
                 cache_size: int = 0,
                 block_cache_size: int = DEFAULT_BLOCK_CACHE_SIZE) -> None:
        self.forward = forward
        self.cluster = cluster
        self.config = config
        self.analyzer = analyzer
        self.stats = IndexStats()
        self._readers: Dict[str, object] = {}
        self._cache: "OrderedDict[Tuple[str, str], Sequence[Posting]]" = OrderedDict()
        self._cache_size = cache_size
        self.block_cache: Optional[BlockCache] = (
            BlockCache(block_cache_size) if block_cache_size > 0 else None)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, posts: Iterable[Post], cluster: Optional[DFSCluster] = None,
              analyzer: Optional[Analyzer] = None,
              config: Optional[IndexConfig] = None,
              cache_size: int = 0,
              block_cache_size: int = DEFAULT_BLOCK_CACHE_SIZE
              ) -> "HybridIndex":
        """Build the full hybrid index over ``posts``."""
        if cluster is None:
            from ..dfs.cluster import paper_cluster
            cluster = paper_cluster()
        if analyzer is None:
            analyzer = Analyzer()
        if config is None:
            config = IndexConfig()
        forward, _result = build_hybrid_index(posts, cluster, analyzer, config)
        return cls(forward, cluster, config, analyzer, cache_size,
                   block_cache_size)

    # -- lookups ----------------------------------------------------------

    @property
    def geohash_length(self) -> int:
        return self.config.geohash_length

    def cover(self, location: Tuple[float, float], radius_km: float,
              metric: Metric = DEFAULT_METRIC) -> List[str]:
        """``GeoHashCircleQuery(q, r)`` at this index's encoding length."""
        return circle_cover(location, radius_km, self.config.geohash_length, metric)

    def postings(self, cell: str, term: str) -> Sequence[Posting]:
        """Fetch the postings view for ``(cell, term)``; empty when the
        pair is unindexed.

        Returns an **immutable** sequence — a lazy
        :class:`~repro.index.blocks.BlockPostingsReader` for block-format
        payloads, an entry tuple for legacy flat payloads — so cache hits
        hand out the cached object by reference with no defensive copy;
        consumers that restrict postings (temporal clipping, merging)
        build narrowed views or new lists instead of mutating.
        """
        if self._cache_size > 0:
            cached = self._cache.get((cell, term))
            if cached is not None:
                self._cache.move_to_end((cell, term))
                self.stats.cache_hits += 1
                return cached
        ref = self.forward.lookup(cell, term)
        if ref is None:
            return ()
        reader = self._readers.get(ref.path)
        if reader is None:
            reader = self.cluster.open(ref.path)
            self._readers[ref.path] = reader
        data = reader.pread(ref.offset, ref.length)  # type: ignore[attr-defined]
        postings = open_postings(data, stats=self.stats,
                                 cache=self.block_cache,
                                 cache_key=(ref.path, ref.offset))
        self.stats.postings_fetches += 1
        self.stats.postings_entries_read += len(postings)
        self.stats.bytes_read += len(data)
        if self._cache_size > 0:
            self._cache[(cell, term)] = postings
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return postings

    def owner_of(self, cell: str, term: str) -> Optional[str]:
        """The part file (distributed "query server") owning the
        postings of ``(cell, term)``; ``None`` when unindexed.  Makes the
        index a ``PartitionedPostingsSource`` for scatter-gather plans."""
        ref = self.forward.lookup(cell, term)
        return None if ref is None else ref.path

    def postings_fetch_count(self) -> int:
        """Monotonic count of postings lists fetched from DFS (cache
        hits excluded) — the ``PostingsSource`` accounting hook."""
        return self.stats.postings_fetches

    def postings_for_query(self, cells: List[str], terms: List[str]
                           ) -> Dict[str, Dict[str, Sequence[Posting]]]:
        """Lines 4-7 of Algorithms 4/5: fetch the postings view for every
        ``(cell, term)`` pair, grouped by cell then term."""
        with obs.trace("query.postings_scan", cells=len(cells),
                       terms=len(terms)) as span:
            before = self.stats.snapshot()
            result: Dict[str, Dict[str, Sequence[Posting]]] = {}
            for cell in cells:
                per_term: Dict[str, Sequence[Posting]] = {}
                for term in terms:
                    postings = self.postings(cell, term)
                    if postings:
                        per_term[term] = postings
                if per_term:
                    result[cell] = per_term
            delta = self.stats.diff(before)
            span.set(fetches=delta["postings_fetches"],
                     entries=delta["postings_entries_read"],
                     bytes=delta["bytes_read"])
        return result

    # -- reporting ----------------------------------------------------------

    def inverted_size_bytes(self) -> int:
        """Logical size of the inverted index on DFS (Fig 6's quantity)."""
        return sum(self.cluster.file_size(path)
                   for path in self.cluster.list_files(self.config.output_prefix))

    def forward_size_bytes(self) -> int:
        return self.forward.size_bytes()

    def reset_stats(self) -> None:
        self.stats.reset()

    def clear_caches(self) -> None:
        """Drop the postings cache and the decoded-block cache (the bench
        harness calls this between workloads for cold-cache runs)."""
        self._cache.clear()
        if self.block_cache is not None:
            self.block_cache.clear()
