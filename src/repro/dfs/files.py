"""Streaming writers and positional readers for DFS files."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import DFSCluster


class DFSWriter:
    """Sequential writer: buffers bytes and cuts blocks at the cluster's
    block size, replicating each block as it is sealed.

    Use as a context manager; the final partial block is sealed on close.
    """

    def __init__(self, cluster: "DFSCluster", path: str) -> None:
        self._cluster = cluster
        self._path = path
        self._buffer = bytearray()
        self._written = 0
        self._closed = False

    @property
    def bytes_written(self) -> int:
        """Total bytes accepted so far (including the unsealed buffer)."""
        return self._written + len(self._buffer)

    def write(self, data: bytes) -> int:
        """Append bytes; returns the file offset the data starts at."""
        if self._closed:
            raise RuntimeError(f"writer for {self._path} is closed")
        offset = self.bytes_written
        self._buffer.extend(data)
        block_size = self._cluster.block_size
        while len(self._buffer) >= block_size:
            self._seal(bytes(self._buffer[:block_size]))
            del self._buffer[:block_size]
        return offset

    def _seal(self, data: bytes) -> None:
        self._cluster._store_block(self._path, data)
        self._written += len(data)

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer:
            self._seal(bytes(self._buffer))
            self._buffer.clear()
        self._closed = True

    def __enter__(self) -> "DFSWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DFSReader:
    """Positional reader over a DFS file.

    ``pread(offset, length)`` locates the covering block(s) via the
    namenode, picks an alive replica for each and serves the byte range —
    the "random access to inverted index in HDFS" of Section VI-B1.
    """

    def __init__(self, cluster: "DFSCluster", path: str) -> None:
        self._cluster = cluster
        self._path = path
        self._size = cluster.file_size(path)
        self._position = 0

    @property
    def size(self) -> int:
        return self._size

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= self._size:
            raise ValueError(f"seek offset {offset} outside [0, {self._size}]")
        self._position = offset

    def tell(self) -> int:
        return self._position

    def read(self, length: int = -1) -> bytes:
        """Sequential read from the current position."""
        if length < 0:
            length = self._size - self._position
        data = self.pread(self._position, length)
        self._position += len(data)
        return data

    def pread(self, offset: int, length: int) -> bytes:
        """Positional read of up to ``length`` bytes at ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        end = min(offset + length, self._size)
        chunks = []
        position = offset
        while position < end:
            chunk = self._cluster._read_at(self._path, position, end - position)
            if not chunk:
                break
            chunks.append(chunk)
            position += len(chunk)
        return b"".join(chunks)
