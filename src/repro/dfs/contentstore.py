"""Tweet-content storage on the DFS.

Figure 3: "The tweet contents/texts are stored in HDFS as well ... the
system collects the tweet contents according to the postings lists for
later user study" — result lines shown to raters are ``(userId, tweet
content)`` pairs, so the serving path needs random access from tweet id
to raw text.

:class:`ContentStore` writes contents as sorted runs of length-prefixed
``(sid, uid, utf-8 text)`` records in DFS files, one file per batch,
with an in-memory sparse offset index (every ``index_stride``-th sid) —
the classic sorted-run + sparse-index layout.  Lookup seeks to the
preceding indexed offset and scans forward at most ``index_stride``
records.
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.model import Post
from .cluster import DFSCluster

_HEADER = struct.Struct("<qqI")  # sid, uid, text byte length


class ContentStoreError(RuntimeError):
    """Raised on malformed content files or unsorted writes."""


class ContentStore:
    """Sorted-run tweet-content files with sparse in-memory indexes."""

    def __init__(self, cluster: DFSCluster, prefix: str = "/contents",
                 index_stride: int = 32) -> None:
        if index_stride < 1:
            raise ValueError(f"index_stride must be >= 1: {index_stride}")
        self.cluster = cluster
        self.prefix = prefix
        self.index_stride = index_stride
        # Per run: (sorted sid anchors, their offsets, path, max sid).
        self._runs: List[Tuple[List[int], List[int], str, int]] = []
        self._next_run = 0
        self._record_count = 0

    def __len__(self) -> int:
        return self._record_count

    @property
    def run_count(self) -> int:
        return len(self._runs)

    # -- writes ----------------------------------------------------------

    def write_batch(self, posts: Iterable[Post]) -> str:
        """Write one batch (must be sid-sorted, the ingestion order) as a
        new run; returns the DFS path."""
        ordered = list(posts)
        if not ordered:
            raise ValueError("cannot write an empty batch")
        previous = None
        for post in ordered:
            if previous is not None and post.sid <= previous:
                raise ContentStoreError(
                    f"batch not sid-sorted: {post.sid} after {previous}")
            previous = post.sid
        path = f"{self.prefix}/run-{self._next_run:05d}"
        self._next_run += 1
        anchors: List[int] = []
        offsets: List[int] = []
        with self.cluster.create(path) as writer:
            for position, post in enumerate(ordered):
                encoded = post.text.encode()
                offset = writer.write(_HEADER.pack(post.sid, post.uid,
                                                   len(encoded)))
                writer.write(encoded)
                if position % self.index_stride == 0:
                    anchors.append(post.sid)
                    offsets.append(offset)
        self._runs.append((anchors, offsets, path, ordered[-1].sid))
        self._record_count += len(ordered)
        return path

    # -- reads ----------------------------------------------------------

    def get(self, sid: int) -> Optional[Tuple[int, str]]:
        """Fetch ``(uid, text)`` for a tweet id, or None if absent."""
        for anchors, offsets, path, max_sid in self._runs:
            if sid < anchors[0] or sid > max_sid:
                continue
            position = bisect.bisect_right(anchors, sid) - 1
            found = self._scan_run(path, offsets[position], sid)
            if found is not None:
                return found
        return None

    def _scan_run(self, path: str, offset: int,
                  wanted: int) -> Optional[Tuple[int, str]]:
        reader = self.cluster.open(path)
        for _ in range(self.index_stride):
            header = reader.pread(offset, _HEADER.size)
            if len(header) < _HEADER.size:
                return None
            sid, uid, length = _HEADER.unpack(header)
            if sid == wanted:
                text = reader.pread(offset + _HEADER.size, length)
                if len(text) != length:
                    raise ContentStoreError(
                        f"truncated record for sid {sid} in {path}")
                return (uid, text.decode())
            if sid > wanted:
                return None
            offset += _HEADER.size + length
        return None

    def collect(self, sids: Iterable[int]) -> Dict[int, Tuple[int, str]]:
        """Batch fetch: the "collect the tweet contents according to the
        postings lists" step feeding the user study."""
        result: Dict[int, Tuple[int, str]] = {}
        for sid in sids:
            found = self.get(sid)
            if found is not None:
                result[sid] = found
        return result

    def result_lines(self, ranking: Iterable[Tuple[int, int]]) -> List[str]:
        """Format the user-study lines: each ``(uid, sid)`` pair becomes
        the "(userId, tweet content)" line the raters judge."""
        lines = []
        for uid, sid in ranking:
            found = self.get(sid)
            text = found[1] if found is not None else "<content missing>"
            lines.append(f"(u{uid}, {text})")
        return lines

    def total_bytes(self) -> int:
        return sum(self.cluster.file_size(path)
                   for _a, _o, path, _m in self._runs)
