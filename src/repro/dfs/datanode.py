"""Datanodes: block storage servers in the simulated DFS.

Each datanode stores block replicas and accounts for the I/O it serves,
so experiments can observe the data-locality effect the paper relies on
("data indexed by geohash will have all points for a given rectangular
area in one computer. Such advantage could save I/O and communication
cost").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .. import obs
from .block import BlockId


class DataNodeError(RuntimeError):
    """Raised on missing blocks or writes to dead nodes."""


@dataclass
class DataNodeStats:
    blocks_written: int = 0
    blocks_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    partial_reads: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "blocks_written": self.blocks_written,
            "blocks_read": self.blocks_read,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "partial_reads": self.partial_reads,
        }


@dataclass
class DataNode:
    """One storage node.

    Blocks live in memory (this is a simulation of a remote disk, and the
    interesting quantity is the I/O accounting, not durability).  A node
    can be marked dead to exercise replica failover.
    """

    node_id: str
    alive: bool = True
    _blocks: Dict[BlockId, bytes] = field(default_factory=dict)
    stats: DataNodeStats = field(default_factory=DataNodeStats)

    def store(self, block_id: BlockId, data: bytes) -> None:
        if not self.alive:
            raise DataNodeError(f"datanode {self.node_id} is dead")
        self._blocks[block_id] = data
        self.stats.blocks_written += 1
        self.stats.bytes_written += len(data)
        obs.inc("dfs.blocks_written")
        obs.inc("dfs.bytes_written", len(data))

    def read(self, block_id: BlockId) -> bytes:
        if not self.alive:
            raise DataNodeError(f"datanode {self.node_id} is dead")
        data = self._blocks.get(block_id)
        if data is None:
            raise DataNodeError(f"datanode {self.node_id} has no block {block_id}")
        self.stats.blocks_read += 1
        self.stats.bytes_read += len(data)
        obs.inc("dfs.blocks_read")
        obs.inc("dfs.bytes_read", len(data))
        return data

    def read_range(self, block_id: BlockId, offset: int, length: int) -> bytes:
        """Read a byte range within a block (HDFS positional read)."""
        if not self.alive:
            raise DataNodeError(f"datanode {self.node_id} is dead")
        data = self._blocks.get(block_id)
        if data is None:
            raise DataNodeError(f"datanode {self.node_id} has no block {block_id}")
        if offset < 0 or offset > len(data):
            raise DataNodeError(
                f"offset {offset} out of range for block {block_id} (len {len(data)})")
        read = min(length, len(data) - offset)
        self.stats.partial_reads += 1
        self.stats.bytes_read += read
        obs.inc("dfs.partial_reads")
        obs.inc("dfs.bytes_read", read)
        return data[offset:offset + length]

    def has_block(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def drop_block(self, block_id: BlockId) -> None:
        self._blocks.pop(block_id, None)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def bytes_stored(self) -> int:
        return sum(len(data) for data in self._blocks.values())

    def kill(self) -> None:
        """Simulate node failure; stored replicas become unreachable."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True
