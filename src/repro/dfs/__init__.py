"""Simulated distributed file system (HDFS stand-in).

Files are sequences of fixed-size blocks replicated across datanodes; a
namenode owns the namespace and placement.  See DESIGN.md for why this
substitution preserves the behaviour the paper's experiments depend on.
"""

from .block import DEFAULT_BLOCK_SIZE, DEFAULT_REPLICATION, BlockId, BlockInfo
from .cluster import DFSCluster, paper_cluster
from .contentstore import ContentStore, ContentStoreError
from .datanode import DataNode, DataNodeError
from .files import DFSReader, DFSWriter
from .namenode import DFSError, NameNode

__all__ = [
    "BlockId",
    "BlockInfo",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_REPLICATION",
    "ContentStore",
    "ContentStoreError",
    "DFSCluster",
    "DFSError",
    "DFSReader",
    "DFSWriter",
    "DataNode",
    "DataNodeError",
    "NameNode",
    "paper_cluster",
]
