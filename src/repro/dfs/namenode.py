"""The namenode: file-system namespace and block placement.

Maps file paths to ordered block lists and each block to its replica set,
mirroring HDFS's master metadata service (the paper's cluster runs one
master and two slaves, Table III).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .block import BlockId, BlockInfo


class DFSError(RuntimeError):
    """Namespace-level errors: missing files, duplicate creation, etc."""


@dataclass
class FileEntry:
    path: str
    blocks: List[BlockInfo] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(block.length for block in self.blocks)


class NameNode:
    """Namespace plus block-placement policy.

    Placement picks ``replication`` distinct alive datanodes for each
    block.  Consecutive blocks of the same file start their replica
    pipeline on consecutive nodes (round-robin), which spreads load the
    way HDFS's default policy does in a small homogeneous cluster.
    """

    def __init__(self, datanode_ids: List[str], replication: int,
                 seed: int = 0) -> None:
        if not datanode_ids:
            raise DFSError("cluster needs at least one datanode")
        self._datanode_ids = list(datanode_ids)
        self.replication = min(replication, len(datanode_ids))
        self._files: Dict[str, FileEntry] = {}
        self._next_block = 0
        self._cursor = 0
        self._rng = random.Random(seed)

    # -- namespace ---------------------------------------------------------

    def create_file(self, path: str) -> FileEntry:
        if path in self._files:
            raise DFSError(f"file exists: {path}")
        entry = FileEntry(path)
        self._files[path] = entry
        return entry

    def get_file(self, path: str) -> FileEntry:
        entry = self._files.get(path)
        if entry is None:
            raise DFSError(f"no such file: {path}")
        return entry

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete_file(self, path: str) -> List[BlockInfo]:
        """Remove a file from the namespace, returning its blocks so the
        cluster can reclaim replicas."""
        entry = self._files.pop(path, None)
        if entry is None:
            raise DFSError(f"no such file: {path}")
        return entry.blocks

    def list_files(self, prefix: str = "") -> List[str]:
        return sorted(path for path in self._files if path.startswith(prefix))

    def total_bytes(self) -> int:
        """Logical namespace size (one copy of each block)."""
        return sum(entry.size for entry in self._files.values())

    def total_stored_bytes(self) -> int:
        """Physical size including replication."""
        return sum(block.length * len(block.replicas)
                   for entry in self._files.values()
                   for block in entry.blocks)

    # -- placement ----------------------------------------------------------

    def allocate_block(self, path: str, length: int,
                       alive_nodes: List[str]) -> BlockInfo:
        """Allocate a block for ``path`` and choose its replica targets."""
        entry = self.get_file(path)
        if not alive_nodes:
            raise DFSError("no alive datanodes for block placement")
        block_id = BlockId(self._next_block)
        self._next_block += 1
        targets = self._pick_targets(alive_nodes)
        info = BlockInfo(block_id, length, targets)
        entry.blocks.append(info)
        return info

    def _pick_targets(self, alive_nodes: List[str]) -> List[str]:
        count = min(self.replication, len(alive_nodes))
        start = self._cursor % len(alive_nodes)
        self._cursor += 1
        ordered = alive_nodes[start:] + alive_nodes[:start]
        return ordered[:count]

    def locate(self, path: str, offset: int) -> Optional[BlockInfo]:
        """Find the block containing byte ``offset`` of ``path``."""
        entry = self.get_file(path)
        position = 0
        for block in entry.blocks:
            if position <= offset < position + block.length:
                return block
            position += block.length
        return None
