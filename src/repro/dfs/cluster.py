"""The DFS cluster facade: one namenode plus N datanodes.

The paper's evaluation cluster is one master and two slaves (Table III);
:func:`paper_cluster` builds that topology.  The client API mirrors the
small slice of HDFS the system needs: create/append, positional read,
list, delete, and size accounting for the index-size experiment (Fig 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .block import DEFAULT_BLOCK_SIZE, DEFAULT_REPLICATION, BlockInfo
from .datanode import DataNode, DataNodeError
from .files import DFSReader, DFSWriter
from .namenode import DFSError, NameNode


class DFSCluster:
    """A simulated HDFS deployment."""

    def __init__(self, num_datanodes: int = 3,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = DEFAULT_REPLICATION,
                 seed: int = 0) -> None:
        if num_datanodes < 1:
            raise DFSError("cluster needs at least one datanode")
        if block_size < 1:
            raise DFSError(f"block size must be positive: {block_size}")
        self.block_size = block_size
        self._datanodes: Dict[str, DataNode] = {
            f"dn{i}": DataNode(f"dn{i}") for i in range(num_datanodes)
        }
        self.namenode = NameNode(sorted(self._datanodes), replication, seed)

    # -- topology ----------------------------------------------------------

    @property
    def datanodes(self) -> List[DataNode]:
        return [self._datanodes[node_id] for node_id in sorted(self._datanodes)]

    def datanode(self, node_id: str) -> DataNode:
        node = self._datanodes.get(node_id)
        if node is None:
            raise DFSError(f"no such datanode: {node_id}")
        return node

    def _alive_node_ids(self) -> List[str]:
        return [node_id for node_id in sorted(self._datanodes)
                if self._datanodes[node_id].alive]

    # -- client API ----------------------------------------------------------

    def create(self, path: str) -> DFSWriter:
        """Create a file and return a sequential writer for it."""
        self.namenode.create_file(path)
        return DFSWriter(self, path)

    def open(self, path: str) -> DFSReader:
        """Open a file for positional reads."""
        self.namenode.get_file(path)  # raises if missing
        return DFSReader(self, path)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        for block in self.namenode.delete_file(path):
            for node_id in block.replicas:
                node = self._datanodes.get(node_id)
                if node is not None:
                    node.drop_block(block.block_id)

    def list_files(self, prefix: str = "") -> List[str]:
        return self.namenode.list_files(prefix)

    def file_size(self, path: str) -> int:
        return self.namenode.get_file(path).size

    def total_bytes(self) -> int:
        """Logical bytes stored (single copy)."""
        return self.namenode.total_bytes()

    def total_stored_bytes(self) -> int:
        """Physical bytes across all replicas (what ``du`` on the cluster
        would report, the basis of the paper's Fig 6)."""
        return self.namenode.total_stored_bytes()

    # -- internal block I/O (used by DFSWriter / DFSReader) -----------------

    def _store_block(self, path: str, data: bytes) -> BlockInfo:
        alive = self._alive_node_ids()
        info = self.namenode.allocate_block(path, len(data), alive)
        for node_id in info.replicas:
            self._datanodes[node_id].store(info.block_id, data)
        return info

    def _read_at(self, path: str, offset: int, length: int) -> bytes:
        info = self.namenode.locate(path, offset)
        if info is None:
            return b""
        entry = self.namenode.get_file(path)
        block_start = 0
        for block in entry.blocks:
            if block.block_id == info.block_id:
                break
            block_start += block.length
        within = offset - block_start
        want = min(length, info.length - within)
        node = self._pick_replica(info)
        if node is None:
            raise DataNodeError(
                f"all replicas of {info.block_id} are unreachable")
        return node.read_range(info.block_id, within, want)

    def _pick_replica(self, info: BlockInfo) -> Optional[DataNode]:
        for node_id in info.replicas:
            node = self._datanodes.get(node_id)
            if node is not None and node.alive:
                return node
        return None

    # -- reporting ----------------------------------------------------------

    def io_report(self) -> Dict[str, Dict[str, int]]:
        return {node_id: self._datanodes[node_id].stats.snapshot()
                for node_id in sorted(self._datanodes)}


def paper_cluster(block_size: int = DEFAULT_BLOCK_SIZE, seed: int = 0) -> DFSCluster:
    """The paper's Table III topology: 1 master + 2 slaves = 3 datanodes
    (the master also stores blocks in small Hadoop deployments), with
    replication capped at cluster size."""
    return DFSCluster(num_datanodes=3, block_size=block_size,
                      replication=DEFAULT_REPLICATION, seed=seed)
