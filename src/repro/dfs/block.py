"""Blocks: the unit of storage and replication in the simulated DFS.

The paper stores its inverted index and tweet contents "in Hadoop
distributed file system (HDFS)".  Our simulation keeps HDFS's essential
shape — files are sequences of fixed-size blocks, each block replicated on
several datanodes — at laptop scale (the default block size is 64 KiB
rather than HDFS's 64 MiB, configurable per cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Default block size (bytes).  Scaled down 1024x from HDFS's classic
#: 64 MiB so small experiments still produce multi-block files.
DEFAULT_BLOCK_SIZE = 64 * 1024

#: Default replication factor, matching HDFS's classic default of 3
#: (capped by the number of datanodes in the cluster).
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class BlockId:
    """Globally unique block identifier."""

    value: int

    def __str__(self) -> str:
        return f"blk_{self.value:012d}"


@dataclass
class BlockInfo:
    """Namenode-side metadata for one block."""

    block_id: BlockId
    length: int
    replicas: List[str] = field(default_factory=list)  # datanode ids

    def is_replicated(self, target: int) -> bool:
        return len(self.replicas) >= target
