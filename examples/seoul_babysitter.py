#!/usr/bin/env python3
"""The paper's motivating scenario (Section I): "A couple with kids
moving to Seoul may ask: Are there any good babysitters in Seoul?"

The right answer, the paper argues, is not a pile of raw tweets but a
short list of *local users* who are demonstrably engaged on the topic —
people the couple can contact directly.  This example:

1. generates a world-wide corpus and plants a handful of Seoul-local
   "babysitter" users with different engagement levels (tweet counts
   and reply cascades), plus decoys in other cities;
2. runs the TkLUS query at Seoul city hall with both ranking methods
   and radii, and shows that the planted local experts surface while
   the out-of-town decoys do not;
3. demonstrates the AND/OR semantics on "babysitter recommendation".

Usage:  python examples/seoul_babysitter.py
"""

from repro import TkLUSEngine, generate_corpus
from repro.core.model import EdgeKind, Post, Semantics
from repro.text import Analyzer

SEOUL = (37.5665, 126.9780)
LONDON = (51.5074, -0.1278)


def plant_babysitter_scene(base_posts):
    """Append planted users on top of the organic corpus.

    * uids 9001-9003: Seoul locals tweeting about babysitting, with
      increasing engagement (9003 runs a popular thread);
    * uid 9100: a London user tweeting about babysitters (wrong city);
    * uid 9200: a Seoul user tweeting about unrelated topics.
    """
    analyzer = Analyzer()
    posts = list(base_posts)
    sid = posts[-1].sid + 1
    uid_of = {}

    def add(uid, lat, lon, text, rsid=None, ruid=None, kind=None):
        nonlocal sid
        posts.append(Post(sid=sid, uid=uid, location=(lat, lon),
                          words=tuple(analyzer.analyze(text)), text=text,
                          rsid=rsid, ruid=ruid, kind=kind))
        uid_of[sid] = uid
        sid += 1
        return sid - 1

    # Casual local: one mention.
    add(9001, 37.561, 126.975, "looking for a babysitter near city hall")
    # Engaged local: three on-topic tweets.
    for text in ("our babysitter recommendation: weekday evenings work best",
                 "babysitter tips for new parents in seoul",
                 "great babysitter co-op meeting today"):
        add(9002, 37.570, 126.982, text)
    # The local authority: a babysitter tweet with a real cascade.
    root = add(9003, 37.565, 126.976,
               "I run a vetted babysitter network in Seoul - "
               "babysitter recommendation thread, ask me anything")
    children = []
    for i in range(5):
        child = add(9300 + i, 37.56 + i * 0.002, 126.97,
                    "can you recommend a sitter for jongno-gu?",
                    rsid=root, ruid=9003, kind=EdgeKind.REPLY)
        children.append(child)
    for i in range(4):
        add(9350 + i, 37.558, 126.968, "following this thread",
            rsid=children[i % 5], ruid=uid_of[children[i % 5]],
            kind=EdgeKind.FORWARD)
    # Decoys.
    add(9100, LONDON[0], LONDON[1],
        "babysitter wanted in camden, babysitter please")
    for text in ("seoul traffic is wild today", "great coffee in seoul"):
        add(9200, 37.567, 126.979, text)
    return posts


def show(title, result):
    print(f"\n{title}")
    if not result.users:
        print("  (no local users found)")
    for rank, (uid, score) in enumerate(result.users, start=1):
        tag = {9001: "casual local", 9002: "engaged local",
               9003: "local authority", 9100: "LONDON DECOY",
               9200: "off-topic local"}.get(uid, "organic user")
        print(f"  #{rank}  user {uid:5d}  score {score:.4f}  [{tag}]")


def main() -> None:
    print("Generating organic corpus and planting the Seoul scene...")
    corpus = generate_corpus(num_users=600, num_root_tweets=3000, seed=7)
    posts = plant_babysitter_scene(corpus.posts)
    engine = TkLUSEngine.from_posts(posts)

    query = engine.make_query(SEOUL, radius_km=10.0,
                              keywords=["babysitter"], k=5)
    result_sum = engine.search_sum(query)
    result_max = engine.search_max(query)
    show("Top-5 'babysitter' locals within 10 km of Seoul city hall (sum):",
         result_sum)
    show("Same query, max-score ranking:", result_max)

    returned = {uid for uid, _ in result_sum.users}
    assert 9100 not in returned, "London decoy must not appear"
    assert 9200 not in returned, "off-topic local must not appear"
    assert {9002, 9003} <= returned, "planted locals must surface"
    print("\nPlanted Seoul locals surfaced; decoys filtered.  ✓")

    # AND vs OR on a two-keyword ask.
    for semantics in (Semantics.AND, Semantics.OR):
        query2 = engine.make_query(SEOUL, radius_km=10.0,
                                   keywords=["babysitter", "recommendation"],
                                   k=5, semantics=semantics)
        result = engine.search_max(query2)
        show(f"'babysitter recommendation' ({semantics.value.upper()}), "
             f"{result.stats.candidates} candidates:", result)

    # Radius effect: at 500 km the London decoy is still out of reach,
    # but scores of distant users drop.
    wide = engine.make_query(SEOUL, radius_km=50.0,
                             keywords=["babysitter"], k=5)
    show("Widening to 50 km:", engine.search_max(wide))


if __name__ == "__main__":
    main()
