#!/usr/bin/env python3
"""The paper's running example (Figure 1 / Table I / Section III-C).

Seven tweets containing "hotel" around Toronto, posted by users u1-u6:

    A (u1)  I'm at Toronto Marriott Bloor Yorkville Hotel
    B (u2)  Finally Toronto (at Clarion Hotel).
    C (u3)  I'm at Four Seasons Hotel Toronto.
    D (u4)  Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto.
    E (u5)  And that was the best massage I've ever had. (@ The Spa at
            Four Seasons Hotel Toronto)
    F (u6)  Saturday night steez #fashion ... @ Four Seasons Hotel Toronto.
    G (u1)  Marriott Bloor Yorkville Hotel is a perfect place to stay.

The paper's analysis (Section III-C): u1 has two relevant tweets (A and
G, with A very close to the query), so the *sum* ranking puts u1 on top;
u5's tweet E "has considerably more replies and forwards than other
tweets", so the *maximum* ranking puts u5 on top.  We reconstruct that
data set — including E's reply cascade — and verify both rankings.

Usage:  python examples/toronto_hotels.py
"""

from repro import TkLUSEngine
from repro.core.model import Post
from repro.text import Analyzer

#: The query of Figure 1.
QUERY_LOCATION = (43.6839128037, -79.37356590)
RADIUS_KM = 10.0

#: Tweet locations eyeballed from the paper's map: A near the query
#: cross, B further out, C-F at the Four Seasons, G at the Marriott.
TWEETS = [
    # (pid, uid, lat, lon, text)
    ("A", 1, 43.6856, -79.3764, "I'm at Toronto Marriott Bloor Yorkville Hotel"),
    ("B", 2, 43.7270, -79.4521, "Finally Toronto (at Clarion Hotel)."),
    ("C", 3, 43.6710, -79.3896, "I'm at Four Seasons Hotel Toronto."),
    ("D", 4, 43.6713, -79.3899,
     "Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto."),
    ("E", 5, 43.6716, -79.3893,
     "And that was the best massage I've ever had."
     "(@ The Spa at Four Seasons Hotel Toronto)"),
    ("F", 6, 43.6709, -79.3901,
     "Saturday night steez #fashion #style #ootd #toronto #saturday "
     "#party #outfit @ Four Seasons Hotel Toronto."),
    ("G", 1, 43.6697, -79.3903,
     "Marriott Bloor Yorkville Hotel is a perfect place to stay."),
]


def build_posts():
    """The seven tweets plus E's reply/forward cascade ("in our data set,
    u5's tweet E has considerably more replies and forwards than other
    tweets")."""
    analyzer = Analyzer()
    posts = []
    sid_of = {}
    sid = 1
    for pid, uid, lat, lon, text in TWEETS:
        posts.append(Post(sid=sid, uid=uid, location=(lat, lon),
                          words=tuple(analyzer.analyze(text)), text=text))
        sid_of[pid] = sid
        sid += 1

    # E's cascade: 4 direct replies, 3 second-level follow-ups on the
    # first reply, and one third-level reply — thread popularity
    # 4/2 + 3/3 + 1/4 = 3.25, "considerably more replies and forwards
    # than other tweets" at this data set's scale.
    responders = 100

    def reply(parent_sid, parent_uid, words, text):
        nonlocal sid, responders
        posts.append(Post(sid=sid, uid=responders,
                          location=(43.6722, -79.3885),
                          words=words, text=text,
                          ruid=parent_uid, rsid=parent_sid))
        responders += 1
        sid += 1
        return posts[-1]

    level2 = [reply(sid_of["E"], 5, ("massag", "spa"), "what a spa!")
              for _ in range(4)]
    level3 = [reply(level2[0].sid, level2[0].uid, ("agre",), "agreed!")
              for _ in range(3)]
    reply(level3[0].sid, level3[0].uid, ("total",), "totally")
    # A modest single reply to A so u1 isn't popularity-free.
    posts.append(Post(sid=sid, uid=responders, location=(43.6850, -79.3760),
                      words=("nice",), text="nice place",
                      ruid=1, rsid=sid_of["A"]))
    return posts


def main() -> None:
    posts = build_posts()
    engine = TkLUSEngine.from_posts(posts)

    query = engine.make_query(QUERY_LOCATION, RADIUS_KM, ["hotel"], k=1)

    top_sum = engine.search_sum(query).users
    top_max = engine.search_max(query).users

    print("TkLUS query: 'hotel', r = 10 km, at", QUERY_LOCATION)
    print(f"\n  sum-score ranking  -> top-1 local user: u{top_sum[0][0]} "
          f"(score {top_sum[0][1]:.4f})")
    print(f"  max-score ranking  -> top-1 local user: u{top_max[0][0]} "
          f"(score {top_max[0][1]:.4f})")

    print("\nPaper's Section III-C expectation: sum favours u1 (two relevant")
    print("tweets, A close to the query); max favours u5 (tweet E leads the")
    print("most popular thread).")

    assert top_sum[0][0] == 1, "sum ranking should return u1"
    assert top_max[0][0] == 5, "max ranking should return u5"
    print("\nReproduced: sum -> u1, max -> u5  ✓")

    # Show the full top-6 under both rankings for context.
    query6 = engine.make_query(QUERY_LOCATION, RADIUS_KM, ["hotel"], k=6)
    print("\nFull rankings (k = 6):")
    print("  sum:", [f"u{uid}" for uid, _ in engine.search_sum(query6).users])
    print("  max:", [f"u{uid}" for uid, _ in engine.search_max(query6).users])


if __name__ == "__main__":
    main()
