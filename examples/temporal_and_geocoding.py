#!/usr/bin/env python3
"""The paper's future-work directions (Section VIII), implemented.

1. **Temporal TkLUS** — restrict a query to a time period, or keep the
   whole history but weight recent tweets higher (recency half-life).
2. **Implicit spatial information** — tweets that lack coordinates but
   mention place names are geocoded against a gazetteer and join the
   normal indexing pipeline.

Usage:  python examples/temporal_and_geocoding.py
"""

from dataclasses import replace

from repro import TkLUSEngine, generate_corpus
from repro.core.temporal import RecencyModel, TemporalSpec, TimeWindow
from repro.data.gazetteer import UNLOCATED, geotag_posts
from repro.core.model import Post, TkLUSQuery
from repro.text import Analyzer

TORONTO = (43.6532, -79.3832)


def temporal_demo(engine, corpus) -> None:
    print("=" * 64)
    print("1. Temporal TkLUS")
    print("=" * 64)
    base = engine.make_query(TORONTO, 15.0, ["restaurant"], k=5)

    sids = [post.sid for post in corpus.posts]
    early = TimeWindow(end=sids[len(sids) // 3])
    late = TimeWindow(start=sids[2 * len(sids) // 3])

    full = engine.search_max(base)
    print(f"\nAll history            -> {full.ranking()} "
          f"({full.stats.candidates} candidates)")

    for label, window in (("First third only  ", early),
                          ("Last third only   ", late)):
        query = TkLUSQuery(location=base.location, radius_km=15.0,
                           keywords=base.keywords, k=5,
                           temporal=TemporalSpec(window=window))
        result = engine.search_max(query)
        print(f"{label}     -> {result.ranking()} "
              f"({result.stats.candidates} candidates)")

    recency = TemporalSpec(recency=RecencyModel(half_life=len(sids) / 10))
    query = TkLUSQuery(location=base.location, radius_km=15.0,
                       keywords=base.keywords, k=5, temporal=recency)
    result = engine.search_max(query)
    print(f"Recency-weighted       -> {result.ranking()} "
          "(older tweets' keyword scores decay)")


def geocoding_demo() -> None:
    print()
    print("=" * 64)
    print("2. Geocoding implicit place mentions")
    print("=" * 64)
    analyzer = Analyzer()

    def unlocated(sid, uid, text):
        return Post(sid=sid, uid=uid, location=UNLOCATED, words=(),
                    text=text)

    raw = [
        Post(1, 100, TORONTO, tuple(analyzer.analyze("hotel downtown")),
             "hotel downtown"),
        unlocated(2, 200, "the CN tower view from my hotel in Toronto!"),
        unlocated(3, 300, "hotel recommendations for New York please"),
        unlocated(4, 400, "rainy day, stuck in the hotel"),  # no place
    ]
    located, geocoded = geotag_posts(raw, min_confidence=0.2)
    print(f"\n{len(raw)} posts in, {geocoded} geocoded from text mentions, "
          f"{len(raw) - len(located)} dropped (no resolvable place):")
    for post in located:
        print(f"  sid {post.sid}: ({post.location[0]:.3f}, "
              f"{post.location[1]:.3f})  '{post.text[:50]}'")

    located = [replace(p, words=tuple(analyzer.analyze(p.text)))
               for p in located]
    engine = TkLUSEngine.from_posts(located, precompute_bounds=False)
    query = engine.make_query(TORONTO, 10.0, ["hotel"], k=5)
    result = engine.search_sum(query)
    print(f"\n'hotel' near Toronto now also finds the geocoded user: "
          f"{result.ranking()}")
    assert 200 in result.ranking()


def main() -> None:
    corpus = generate_corpus(num_users=500, num_root_tweets=2500, seed=13)
    engine = TkLUSEngine.from_posts(corpus.posts)
    temporal_demo(engine, corpus)
    geocoding_demo()


if __name__ == "__main__":
    main()
