#!/usr/bin/env python3
"""Quickstart: build a TkLUS system over a synthetic corpus and query it.

Runs the full pipeline of the paper:

1. generate geo-tagged posts (stand-in for a Twitter crawl),
2. load the metadata database (heap file + B+-trees on sid/rsid/uid),
3. build the hybrid index with MapReduce onto the simulated HDFS,
4. pre-compute hot-keyword popularity bounds,
5. answer top-k local user queries with both ranking methods.

Usage:  python examples/quickstart.py
"""

from repro import TkLUSEngine, generate_corpus
from repro.core.model import Semantics

TORONTO = (43.6532, -79.3832)


def main() -> None:
    print("Generating synthetic geo-tagged corpus...")
    corpus = generate_corpus(num_users=800, num_root_tweets=4000, seed=42)
    print(f"  {len(corpus.posts)} posts by "
          f"{len({p.uid for p in corpus.posts})} users")

    print("Building the TkLUS engine (metadata DB + hybrid index)...")
    engine = TkLUSEngine.from_posts(corpus.posts)
    report = engine.index_report()
    print(f"  forward index: {report['forward_entries']} entries, "
          f"{report['forward_bytes'] / 1024:.1f} KiB (kept in RAM)")
    print(f"  inverted index: {report['inverted_bytes'] / 1024:.1f} KiB on DFS "
          f"({report['dfs_stored_bytes'] / 1024:.1f} KiB with replication)")

    # -- a single-keyword query (the paper's Figure 1 scenario) -----------
    query = engine.make_query(TORONTO, radius_km=10.0, keywords=["hotel"], k=5)
    print(f"\nTop-5 local users for 'hotel' within 10 km of Toronto:")
    for rank, (uid, score) in enumerate(engine.search(query).users, start=1):
        print(f"  #{rank}  user {uid:5d}  score {score:.4f}")

    # -- sum vs max ranking -----------------------------------------------
    result_sum = engine.search_sum(query)
    result_max = engine.search_max(query)
    print("\nSum-ranking favours prolific local users; max-ranking favours")
    print("users with one outstanding (popular) tweet thread:")
    print(f"  sum top-3: {[uid for uid, _ in result_sum.users[:3]]}")
    print(f"  max top-3: {[uid for uid, _ in result_max.users[:3]]}")
    print(f"  max-ranking pruned {result_max.stats.threads_pruned} of "
          f"{result_max.stats.candidates_in_radius} candidate thread builds")

    # -- a multi-keyword AND query -----------------------------------------
    query_and = engine.make_query(TORONTO, radius_km=15.0,
                                  keywords=["italian", "restaurant"], k=5,
                                  semantics=Semantics.AND)
    result = engine.search(query_and)
    print(f"\n'italian restaurant' (AND) within 15 km: "
          f"{len(result.users)} users, "
          f"{result.stats.candidates} candidates scanned")
    for uid, score in result.users:
        print(f"  user {uid:5d}  score {score:.4f}")


if __name__ == "__main__":
    main()
