#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's Section VI.

Runs the full experiment harness on a laptop-scale corpus and prints
one text table per table/figure.  This is the script behind
EXPERIMENTS.md; the benchmark suite (``pytest benchmarks/
--benchmark-only``) wraps the same functions with pytest-benchmark
timing.

Usage:
    python examples/run_all_experiments.py            # default scale
    python examples/run_all_experiments.py --small    # quick pass
"""

import sys
import time

from repro.eval.experiments import (
    ExperimentContext,
    fig5_index_construction_time,
    fig6_index_size,
    fig7_geohash_length,
    fig8_single_keyword,
    fig9_kendall_single,
    fig10_multi_keyword,
    fig11_kendall_multi,
    fig12_specific_bounds,
    fig13_user_study,
    table2_keyword_frequencies,
    table4_geohash_lengths,
)
from repro.eval.plots import line_chart, series_from_rows
from repro.eval.report import print_table


def print_chart(rows, x_key, y_key, group_key, title):
    xs, series = series_from_rows(rows, x_key, y_key, group_key)
    if xs:
        print(line_chart(xs, series, title=title))
        print()


def main() -> None:
    small = "--small" in sys.argv
    if small:
        context = ExperimentContext.create(
            num_users=300, num_root_tweets=1500, queries_per_point=4)
    else:
        context = ExperimentContext.create(
            num_users=800, num_root_tweets=4000, queries_per_point=10)
    print(f"Corpus: {len(context.corpus.posts)} posts "
          f"({'small' if small else 'default'} scale)\n")

    start = time.time()
    print_table(table2_keyword_frequencies(context.corpus),
                "Table II — top-10 frequent keywords")
    print_table(table4_geohash_lengths(),
                "Table IV — geohash encoding length example")
    print_table(fig5_index_construction_time(context.corpus),
                "Fig 5 — index construction time vs geohash length")
    print_table(fig6_index_size(context.corpus),
                "Fig 6 — index size vs geohash length")
    fig7 = fig7_geohash_length(context)
    print_table(fig7, "Fig 7 — query time vs geohash length (radii 5-20 km)")
    print_chart(fig7, "radius_km", "mean_seconds", "geohash_length",
                "Fig 7 chart: seconds vs radius, one series per length")
    fig8 = fig8_single_keyword(context)
    print_table(fig8, "Fig 8 — single-keyword efficiency (sum vs max)")
    xs, sum_series = series_from_rows(fig8, "radius_km", "sum_seconds")
    _xs, max_series = series_from_rows(fig8, "radius_km", "max_seconds")
    print(line_chart(xs, {"sum": sum_series["sum_seconds"],
                          "max": max_series["max_seconds"]},
                     title="Fig 8 chart: mean seconds vs radius"))
    print()
    print_table(fig9_kendall_single(context),
                "Fig 9 — Kendall tau, single keyword")
    print_table(fig10_multi_keyword(context),
                "Fig 10 — multi-keyword efficiency (AND/OR)")
    print_table(fig11_kendall_multi(context),
                "Fig 11 — Kendall tau, multi-keyword (AND/OR)")
    print_table(fig12_specific_bounds(context),
                "Fig 12 — hot-keyword-specific popularity bounds")
    fig13 = fig13_user_study(context)
    print_table(fig13, "Fig 13 — (simulated) user study precision")
    print_chart(fig13, "radius_km", "precision_top10", "method",
                "Fig 13 chart: precision@10 vs radius")
    print(f"All experiments regenerated in {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
