#!/usr/bin/env python3
"""Social influence and cross-platform federation.

Two more extensions the paper motivates:

1. **Social influence** (Section I: "Twitter maintains the social
   relationships among users, which can be exploited to score the
   users") — a PageRank over the reply/forward graph, blended into the
   TkLUS ranking with a weight beta.
2. **Cross-platform search** (Section VIII: "make the search for local
   users across the platform boundary") — one query fanned out over
   several per-platform engines, with normalised score merging.

Usage:  python examples/influence_and_federation.py
"""

from repro import TkLUSEngine, generate_corpus
from repro.core.influence import InfluenceModel, blend_influence
from repro.query.federation import FederatedEngine

TORONTO = (43.6532, -79.3832)


def influence_demo(engine, dataset) -> None:
    print("=" * 64)
    print("1. Blending social influence into the ranking")
    print("=" * 64)
    model = InfluenceModel.from_dataset(dataset)
    print("\nMost influential users (PageRank over replies/forwards):")
    for uid, score in model.top(5):
        print(f"  user {uid:5d}  influence {score:.4f}")

    query = engine.make_query(TORONTO, 15.0, ["restaurant"], k=10)
    result = engine.search_max(query)
    print(f"\nPlain TkLUS top-5:   "
          f"{[uid for uid, _s in result.users[:5]]}")
    for beta in (0.2, 0.5):
        blended = blend_influence(result.users, model, beta=beta)
        print(f"beta = {beta}: top-5 ->  "
              f"{[uid for uid, _s in blended[:5]]}")


def federation_demo() -> None:
    print()
    print("=" * 64)
    print("2. Federated search across two platforms")
    print("=" * 64)
    twitter = TkLUSEngine.from_posts(
        generate_corpus(num_users=400, num_root_tweets=2000, seed=100).posts)
    weibo = TkLUSEngine.from_posts(
        generate_corpus(num_users=400, num_root_tweets=2000, seed=200).posts)
    federation = FederatedEngine({"twitter": twitter, "weibo": weibo})

    query = twitter.make_query(TORONTO, 15.0, ["hotel"], k=8)
    result = federation.search(query)
    print(f"\nMerged top-{len(result.users)} for 'hotel' near Toronto "
          f"({result.elapsed_seconds * 1000:.0f} ms total):")
    for rank, user in enumerate(result.users, start=1):
        print(f"  #{rank}  {user.platform:8s} user {user.uid:5d}  "
              f"score {user.score:.4f}")
    for platform, stats in sorted(result.per_platform_stats.items()):
        print(f"  [{platform}: {stats.candidates} candidates, "
              f"{stats.threads_built} threads]")


def main() -> None:
    corpus = generate_corpus(num_users=500, num_root_tweets=2500, seed=3)
    engine = TkLUSEngine.from_posts(corpus.posts)
    influence_demo(engine, corpus.to_dataset())
    federation_demo()


if __name__ == "__main__":
    main()
